//! Containment of tree patterns.
//!
//! A pattern `q` is *contained* in `p` (written `q ⊑ p`) when every document
//! that matches `q` also matches `p`. The paper's introduction discusses why
//! containment alone is a poor proximity notion for semantic communities (it
//! is asymmetric and boolean); it is nevertheless a useful baseline and the
//! routing crate uses it to build inclusion-based topologies to compare
//! against similarity-based clusters.
//!
//! Deciding containment for patterns with both `*` and `//` is coNP-complete
//! in general. We implement the standard *homomorphism* test, which is sound
//! (a homomorphism from `p` into `q` implies `q ⊑ p`) and complete for the
//! common fragments (patterns without `*`, or without `//`); for the general
//! case it may return `false` for some contained pairs, which we document and
//! accept — exactly like the practical systems the paper builds on
//! (Chan et al., VLDB'02).

use crate::pattern::{PatternLabel, PatternNodeId, TreePattern};

/// Is `q` contained in `p` (`q ⊑ p`), i.e. does every document matching `q`
/// also match `p`?
///
/// Sound, homomorphism-based approximation (see module docs).
pub fn contains(p: &TreePattern, q: &TreePattern) -> bool {
    // A homomorphism maps every node of p to a node of q such that:
    //  * the root of p maps to the root of q,
    //  * labels are compatible: a tag node of p maps to a node of q with the
    //    same tag; a `*` node of p maps to a tag or `*` node of q; a `//`
    //    node of p may map "into an edge" — handled by allowing descendants,
    //  * child edges of p map to child edges of q, descendant edges of p map
    //    to descendant paths of q.
    //
    // We implement the classic recursive formulation: hom(u, v) holds when
    // pattern-node u of p can be embedded at node v of q.
    hom_root(p, q)
}

fn hom_root(p: &TreePattern, q: &TreePattern) -> bool {
    // Each child of p's root must be embeddable at q's root.
    p.children(p.root()).iter().all(|&u| embed_at_root(p, u, q))
}

/// Can root-child `u` of `p` be embedded at the root position of `q`?
fn embed_at_root(p: &TreePattern, u: PatternNodeId, q: &TreePattern) -> bool {
    match p.label(u) {
        PatternLabel::Descendant => {
            let target = p.children(u)[0];
            // `//x` at the root of p: x may embed at q's root position or at
            // any node strictly below it (reached via child or descendant
            // edges of q — every document node reachable there is a
            // descendant of the document root).
            q_root_candidates(q)
                .into_iter()
                .any(|v| embed_at(p, target, q, v, true))
                || q.children(q.root())
                    .iter()
                    .any(|&v| any_descendant_embeds(p, target, q, v))
        }
        _ => q
            .children(q.root())
            .iter()
            .any(|&v| embed_root_child(p, u, q, v)),
    }
}

/// Children of q's root are the candidate images for p's root children.
fn q_root_candidates(q: &TreePattern) -> Vec<PatternNodeId> {
    q.children(q.root()).to_vec()
}

/// Embed root-child `u` of p at root-child `v` of q (both constrain the
/// document root).
fn embed_root_child(p: &TreePattern, u: PatternNodeId, q: &TreePattern, v: PatternNodeId) -> bool {
    let label_ok = match (p.label(u), q.label(v)) {
        (PatternLabel::Tag(a), PatternLabel::Tag(b)) => a == b,
        (PatternLabel::Wildcard, PatternLabel::Tag(_) | PatternLabel::Wildcard) => true,
        (PatternLabel::Tag(_), _) => false,
        (PatternLabel::Wildcard, _) => false,
        _ => false,
    };
    if !label_ok {
        return false;
    }
    p.children(u).iter().all(|&uc| embed_below(p, uc, q, v))
}

/// Can pattern node `u` of p (a non-root node) be embedded at node `v` of q,
/// meaning: every document node that q's node `v` binds also satisfies
/// `Subtree(u, p)` when evaluated *at* that node's parent context?
///
/// `at_self` distinguishes "u constrains the node bound by v itself" (true)
/// from "u constrains a child of the node bound by v" (false is expressed via
/// [`embed_below`]).
fn embed_at(
    p: &TreePattern,
    u: PatternNodeId,
    q: &TreePattern,
    v: PatternNodeId,
    at_self: bool,
) -> bool {
    debug_assert!(at_self);
    let label_ok = match (p.label(u), q.label(v)) {
        (PatternLabel::Tag(a), PatternLabel::Tag(b)) => a == b,
        (PatternLabel::Wildcard, PatternLabel::Tag(_) | PatternLabel::Wildcard) => true,
        _ => false,
    };
    if !label_ok {
        return false;
    }
    p.children(u).iter().all(|&uc| embed_below(p, uc, q, v))
}

/// Can pattern node `u` of p be embedded strictly below node `v` of q,
/// i.e. does every document satisfying `Subtree(v, q)` at some node also
/// satisfy `Subtree(u, p)` at that node?
fn embed_below(p: &TreePattern, u: PatternNodeId, q: &TreePattern, v: PatternNodeId) -> bool {
    match p.label(u) {
        PatternLabel::Descendant => {
            let target = p.children(u)[0];
            // `//target` below v binds a *proper* descendant of the node v
            // binds, so the target must embed strictly inside v's subtree.
            // Mapping it onto v itself would claim a zero-length path: the
            // matcher rejects `/*//media` on `<media>…</media>`, so the
            // homomorphism test must not treat them as related (found by
            // the `analyze` fuzz target's differential check).
            q.children(v)
                .iter()
                .any(|&vc| any_descendant_embeds(p, target, q, vc))
        }
        _ => q.children(v).iter().any(|&vc| child_image_ok(p, u, q, vc)),
    }
}

/// Does `u` (tag or wildcard) embed at child `vc` of q, following q's edge
/// semantics (a `//` child of q guarantees nothing about the next level, so a
/// tag/wildcard node of p cannot be embedded onto it)?
fn child_image_ok(p: &TreePattern, u: PatternNodeId, q: &TreePattern, vc: PatternNodeId) -> bool {
    match q.label(vc) {
        PatternLabel::Descendant => false,
        _ => embed_at(p, u, q, vc, true),
    }
}

/// Does `u` embed at `v` or at any node in the subtree of q rooted at `v`
/// (all of which bind document nodes that are descendants of the context)?
fn any_descendant_embeds(
    p: &TreePattern,
    u: PatternNodeId,
    q: &TreePattern,
    v: PatternNodeId,
) -> bool {
    if !q.label(v).is_descendant() && embed_at(p, u, q, v, true) {
        return true;
    }
    q.children(v)
        .iter()
        .any(|&vc| any_descendant_embeds(p, u, q, vc))
}

/// Are `p` and `q` equivalent under the homomorphism test (each contains the
/// other)?
pub fn equivalent(p: &TreePattern, q: &TreePattern) -> bool {
    contains(p, q) && contains(q, p)
}

/// An external containment decision procedure consulted when the syntactic
/// homomorphism test cannot prove `q ⊑ p`.
///
/// The oracle returns `Some(true)` when it can prove containment by other
/// means (e.g. a DTD-aware expansion check such as
/// `tps_dtd::PatternAnalyzer::dtd_refinement` — under a document type, two
/// patterns with *no* syntactic containment can still have included match
/// sets, the paper's Example 1.1), `Some(false)` when it can prove the
/// opposite, and `None` when it has no opinion. `None` degrades to "not
/// contained", which keeps the combined test sound for callers that prune
/// on a positive answer.
pub type ContainmentOracle<'a> = dyn Fn(&TreePattern, &TreePattern) -> Option<bool> + 'a;

/// Is `q` contained in `p`, consulting `oracle` when the homomorphism test
/// comes back negative? The oracle receives `(p, q)` in the same order as
/// [`contains`].
pub fn contains_with(p: &TreePattern, q: &TreePattern, oracle: &ContainmentOracle<'_>) -> bool {
    contains(p, q) || oracle(p, q).unwrap_or(false)
}

/// Are `p` and `q` equivalent under the oracle-extended containment test?
pub fn equivalent_with(p: &TreePattern, q: &TreePattern, oracle: &ContainmentOracle<'_>) -> bool {
    contains_with(p, q, oracle) && contains_with(q, p, oracle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreePattern;

    fn pat(s: &str) -> TreePattern {
        TreePattern::parse(s).unwrap()
    }

    #[test]
    fn identical_patterns_contain_each_other() {
        let p = pat("/a/b[c][d//e]");
        assert!(contains(&p, &p));
        assert!(equivalent(&p, &p));
    }

    #[test]
    fn bare_root_contains_everything() {
        let top = pat("/.");
        for q in ["/a", "//a/b", "/a[b][c]", "/*/x"] {
            assert!(contains(&top, &pat(q)), "/. should contain {q}");
            assert!(!contains(&pat(q), &top), "{q} should not contain /.");
        }
    }

    #[test]
    fn figure1_pc_contains_pa() {
        // The paper: "it trivially appears that pc contains pa" but not vice
        // versa.
        let pa = pat("/media/CD/*/last/Mozart");
        let pc = pat(".[//CD][//Mozart]");
        assert!(contains(&pc, &pa));
        assert!(!contains(&pa, &pc));
    }

    #[test]
    fn no_containment_between_pa_and_pd() {
        // "Formally, there is no containment relationship between pa and pd."
        let pa = pat("/media/CD/*/last/Mozart");
        let pd = pat("//composer[last/Mozart]");
        assert!(!contains(&pa, &pd));
        assert!(!contains(&pd, &pa));
    }

    #[test]
    fn wildcard_generalises_tag() {
        let specific = pat("/a/b/c");
        let general = pat("/a/*/c");
        assert!(contains(&general, &specific));
        assert!(!contains(&specific, &general));
    }

    #[test]
    fn descendant_generalises_long_paths() {
        let specific = pat("/a/x/y/b");
        let general = pat("/a//b");
        assert!(contains(&general, &specific));
        assert!(!contains(&specific, &general));
    }

    #[test]
    fn descendant_allows_empty_path() {
        let specific = pat("/a/b");
        let general = pat("/a//b");
        assert!(contains(&general, &specific));
    }

    #[test]
    fn branch_superset_is_contained() {
        let more = pat("/a[b][c][d]");
        let fewer = pat("/a[b][c]");
        assert!(contains(&fewer, &more));
        assert!(!contains(&more, &fewer));
    }

    #[test]
    fn different_tags_are_incomparable() {
        let p = pat("/a/b");
        let q = pat("/a/c");
        assert!(!contains(&p, &q));
        assert!(!contains(&q, &p));
    }

    #[test]
    fn leading_descendant_contains_rooted_pattern() {
        let general = pat("//b");
        let specific = pat("/a/b");
        assert!(contains(&general, &specific));
        assert!(!contains(&specific, &general));
        // //a also contains /a (the descendant may be the root itself).
        assert!(contains(&pat("//a"), &pat("/a")));
    }

    #[test]
    fn descendant_below_a_node_requires_a_proper_descendant() {
        // `<media><book><title/></book></media>` matches q but has no media
        // element strictly below the root element, so p must not contain q.
        let p = pat("/*//media");
        let q = pat("/media/book/title");
        assert!(!contains(&p, &q));
        assert!(!contains(&pat("/media//media"), &q));
        // Unlike at the pattern root, where `//media` may bind the document
        // root element itself.
        assert!(contains(&pat("//media"), &pat("/media/book")));
    }

    #[test]
    fn oracle_extends_but_never_overrides_the_syntactic_test() {
        let pa = pat("/media/CD/*/last/Mozart");
        let pd = pat("//composer[last/Mozart]");
        // No syntactic containment either way (Example 1.1) ...
        assert!(!contains(&pa, &pd));
        // ... but an oracle that knows the DTD can supply the answer.
        let always_yes = |_: &TreePattern, _: &TreePattern| Some(true);
        assert!(contains_with(&pa, &pd, &always_yes));
        assert!(equivalent_with(&pa, &pd, &always_yes));
        // A negative or silent oracle cannot take away a syntactic proof.
        let always_no = |_: &TreePattern, _: &TreePattern| Some(false);
        let silent = |_: &TreePattern, _: &TreePattern| None;
        let general = pat("/a//b");
        let specific = pat("/a/x/b");
        assert!(contains_with(&general, &specific, &always_no));
        assert!(contains_with(&general, &specific, &silent));
        assert!(!contains_with(&specific, &general, &silent));
    }

    #[test]
    fn containment_is_sound_on_random_examples() {
        // Spot-check soundness: whenever contains(p, q) holds, every document
        // from a small pool matching q must match p.
        use tps_xml::XmlTree;
        let docs: Vec<XmlTree> = [
            "<a><b><c/></b></a>",
            "<a><b/><c/></a>",
            "<a><x><b/></x><c/></a>",
            "<b><a/></b>",
            "<a><b><c/><d/></b></a>",
        ]
        .iter()
        .map(|s| XmlTree::parse(s).unwrap())
        .collect();
        let pats: Vec<TreePattern> = [
            "/a", "//b", "/a/b", "/a//c", "/a[b][c]", "/a/*/c", "//b/c", "/a/b/c", "/.",
        ]
        .iter()
        .map(|s| pat(s))
        .collect();
        for p in &pats {
            for q in &pats {
                if contains(p, q) {
                    for d in &docs {
                        if q.matches(d) {
                            assert!(
                                p.matches(d),
                                "soundness violated: {q} ⊑ {p} but document {} matches only q",
                                d.to_xml()
                            );
                        }
                    }
                }
            }
        }
    }
}
