//! Parser for the XPath-like concrete syntax of tree patterns.
//!
//! The grammar (whitespace between tokens is ignored):
//!
//! ```text
//! pattern    := root-step | path
//! root-step  := ("/." | ".") predicate* ( ("/" | "//") path )?
//! path       := first-step ( ("/" | "//") step )*
//! first-step := ("/" | "//")? step
//! step       := node-test predicate*
//! node-test  := NAME | QUOTED | "*"
//! predicate  := "[" ("."? ("/" | "//"))? path "]"
//! NAME       := [A-Za-z_][A-Za-z0-9_-]*          (plus non-ASCII letters)
//! QUOTED     := '"' [^"]* '"'
//! ```
//!
//! * `/a/b` — the document root is `a` and has a child `b`.
//! * `//a` — some element (possibly the root) is labelled `a`.
//! * `a//b` — `a` has a descendant `b` (the `//` becomes a descendant *node*
//!   whose single child is `b`, as in the paper's graph representation).
//! * `/a[b][c//d]/e` — branches: `b`, `c//d` and `e` all hang off `a`.
//! * `.[//CD][//Mozart]` — branching at the root (pattern `pc` of Figure 1).
//! * Quoted steps allow labels with spaces or punctuation:
//!   `//interpreter/ensemble/"Berliner Phil."`.

use crate::error::PatternParseError;
use crate::pattern::{PatternLabel, PatternNodeId, TreePattern};

/// Maximum node depth of a parsed pattern (the root is depth 0).
///
/// This bounds two recursions at once: the parser's own predicate nesting
/// (`a[a[a[…`) and the depth of the resulting [`TreePattern`], whose
/// display/equality walks recurse along root-to-leaf paths. Real
/// subscriptions are a handful of levels deep; anything past this limit is
/// adversarial input and is rejected with a positioned error instead of
/// exhausting the stack.
pub const MAX_DEPTH: usize = 256;

/// Parse a tree pattern from its concrete syntax.
pub fn parse_pattern(input: &str) -> Result<TreePattern, PatternParseError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        pattern: TreePattern::new(),
        input_len: input.len(),
    };
    parser.parse()?;
    let pattern = parser.pattern;
    pattern
        .validate()
        .map_err(|msg| PatternParseError::new(msg, input.len()))?;
    Ok(pattern)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Slash,
    DoubleSlash,
    LBracket,
    RBracket,
    Star,
    Dot,
    Name(String),
}

#[derive(Debug, Clone)]
struct Spanned {
    token: Token,
    offset: usize,
}

fn tokenize(input: &str) -> Result<Vec<Spanned>, PatternParseError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'/' => {
                if bytes.get(i + 1) == Some(&b'/') {
                    tokens.push(Spanned {
                        token: Token::DoubleSlash,
                        offset: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Spanned {
                        token: Token::Slash,
                        offset: i,
                    });
                    i += 1;
                }
            }
            b'[' => {
                tokens.push(Spanned {
                    token: Token::LBracket,
                    offset: i,
                });
                i += 1;
            }
            b']' => {
                tokens.push(Spanned {
                    token: Token::RBracket,
                    offset: i,
                });
                i += 1;
            }
            b'*' => {
                tokens.push(Spanned {
                    token: Token::Star,
                    offset: i,
                });
                i += 1;
            }
            b'.' => {
                tokens.push(Spanned {
                    token: Token::Dot,
                    offset: i,
                });
                i += 1;
            }
            b'"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(PatternParseError::new("unterminated quoted label", i));
                }
                // Quoted labels may carry spaces and punctuation ("Berliner
                // Phil."), but an empty label can never match anything and
                // broke the Display round trip — reject it. Found by fuzzing.
                if j == start {
                    return Err(PatternParseError::new("empty quoted label", i));
                }
                tokens.push(Spanned {
                    token: Token::Name(input[start..j].to_string()),
                    offset: i,
                });
                i = j + 1;
            }
            _ if is_name_start(c) => {
                let start = i;
                while i < bytes.len() && is_name_continue(bytes[i]) {
                    i += 1;
                }
                tokens.push(Spanned {
                    token: Token::Name(input[start..i].to_string()),
                    offset: start,
                });
            }
            _ => {
                let message = match input[i..].chars().next() {
                    Some(ch) => format!("unexpected character {ch:?}"),
                    None => "unexpected end of input".to_string(),
                };
                return Err(PatternParseError::new(message, i));
            }
        }
    }
    Ok(tokens)
}

fn is_name_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || !c.is_ascii()
}

fn is_name_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || !c.is_ascii()
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    pattern: TreePattern,
    input_len: usize,
}

/// Axis separating two steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Axis {
    Child,
    Descendant,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|s| s.offset)
            .unwrap_or(self.input_len)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, token: Token) -> Result<(), PatternParseError> {
        if self.peek() == Some(&token) {
            self.pos += 1;
            Ok(())
        } else {
            Err(PatternParseError::new(
                format!("expected {token:?}, found {:?}", self.peek()),
                self.offset(),
            ))
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, PatternParseError> {
        Err(PatternParseError::new(msg, self.offset()))
    }

    fn parse(&mut self) -> Result<(), PatternParseError> {
        let root = self.pattern.root();
        if self.tokens.is_empty() {
            return self.err("empty pattern");
        }
        // Root-step form: "/." or "." optionally followed by predicates and a
        // continuation path.
        let starts_with_root = matches!(
            (self.peek(), self.tokens.get(self.pos + 1).map(|s| &s.token)),
            (Some(Token::Dot), _) | (Some(Token::Slash), Some(Token::Dot))
        );
        if starts_with_root {
            if self.peek() == Some(&Token::Slash) {
                self.pos += 1;
            }
            self.expect(Token::Dot)?;
            self.parse_predicates(root, 0)?;
            if self.peek().is_some() {
                self.parse_path(root, None, 0)?;
            }
        } else {
            self.parse_path(root, None, 0)?;
        }
        if self.pos != self.tokens.len() {
            return self.err("unexpected trailing input");
        }
        Ok(())
    }

    /// Parse a path of one or more steps and attach it under `parent`.
    ///
    /// `leading` forces the axis of the first step; when `None`, an explicit
    /// leading `/` or `//` is consumed if present, otherwise the child axis
    /// is assumed (relative path).
    fn parse_path(
        &mut self,
        parent: PatternNodeId,
        leading: Option<Axis>,
        depth: usize,
    ) -> Result<(), PatternParseError> {
        let mut current = parent;
        let mut depth = depth;
        let mut axis = match leading {
            Some(axis) => axis,
            None => match self.peek() {
                Some(Token::Slash) => {
                    self.pos += 1;
                    Axis::Child
                }
                Some(Token::DoubleSlash) => {
                    self.pos += 1;
                    Axis::Descendant
                }
                _ => Axis::Child,
            },
        };
        loop {
            (current, depth) = self.parse_step(current, axis, depth)?;
            match self.peek() {
                Some(Token::Slash) => {
                    self.pos += 1;
                    axis = Axis::Child;
                }
                Some(Token::DoubleSlash) => {
                    self.pos += 1;
                    axis = Axis::Descendant;
                }
                _ => return Ok(()),
            }
        }
    }

    /// Parse one step (node test plus predicates) and attach it under
    /// `parent` using `axis`. `depth` is the node depth of `parent`; returns
    /// the id of the step's node (predicates and continuations attach to it)
    /// together with its depth.
    fn parse_step(
        &mut self,
        parent: PatternNodeId,
        axis: Axis,
        depth: usize,
    ) -> Result<(PatternNodeId, usize), PatternParseError> {
        let step_depth = depth + if axis == Axis::Descendant { 2 } else { 1 };
        if step_depth > MAX_DEPTH {
            return self.err(format!("pattern depth limit ({MAX_DEPTH}) exceeded"));
        }
        let attach = match axis {
            Axis::Child => parent,
            Axis::Descendant => self.pattern.add_child(parent, PatternLabel::Descendant),
        };
        let label = match self.bump() {
            Some(Token::Name(name)) => PatternLabel::Tag(name.into()),
            Some(Token::Star) => PatternLabel::Wildcard,
            other => return self.err(format!("expected an element name or '*', found {other:?}")),
        };
        let node = self.pattern.add_child(attach, label);
        self.parse_predicates(node, step_depth)?;
        Ok((node, step_depth))
    }

    fn parse_predicates(
        &mut self,
        node: PatternNodeId,
        depth: usize,
    ) -> Result<(), PatternParseError> {
        while self.peek() == Some(&Token::LBracket) {
            self.pos += 1;
            // Allow an optional leading "." (self) inside predicates, as in
            // the common XPath spelling `[.//a]`.
            if self.peek() == Some(&Token::Dot) {
                self.pos += 1;
            }
            self.parse_path(node, None, depth)?;
            self.expect(Token::RBracket)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternLabel as L;

    fn labels_preorder(p: &TreePattern) -> Vec<String> {
        p.preorder()
            .iter()
            .map(|&id| p.label(id).to_string())
            .collect()
    }

    #[test]
    fn parses_simple_linear_path() {
        let p = parse_pattern("/media/CD/last").unwrap();
        assert_eq!(labels_preorder(&p), vec!["/.", "media", "CD", "last"]);
        assert_eq!(p.height(), 3);
    }

    #[test]
    fn relative_path_is_equivalent_to_absolute() {
        let abs = parse_pattern("/a/b").unwrap();
        let rel = parse_pattern("a/b").unwrap();
        assert_eq!(abs, rel);
    }

    #[test]
    fn parses_wildcard_steps() {
        let p = parse_pattern("/media/*/last").unwrap();
        assert_eq!(p.wildcard_count(), 1);
        assert_eq!(labels_preorder(&p), vec!["/.", "media", "*", "last"]);
    }

    #[test]
    fn parses_leading_descendant() {
        let p = parse_pattern("//CD/Mozart").unwrap();
        assert_eq!(labels_preorder(&p), vec!["/.", "//", "CD", "Mozart"]);
        assert_eq!(p.descendant_count(), 1);
    }

    #[test]
    fn parses_inner_descendant() {
        let p = parse_pattern("/a//b/c").unwrap();
        assert_eq!(labels_preorder(&p), vec!["/.", "a", "//", "b", "c"]);
    }

    #[test]
    fn parses_predicates_as_branches() {
        let p = parse_pattern("/a[b][d]").unwrap();
        let root_child = p.children(p.root())[0];
        assert_eq!(*p.label(root_child), L::tag("a"));
        assert_eq!(p.children(root_child).len(), 2);
    }

    #[test]
    fn parses_predicate_with_descendant() {
        let p = parse_pattern("/a[c//o]/b").unwrap();
        // a has children: c (predicate) and b (continuation)
        let a = p.children(p.root())[0];
        assert_eq!(p.children(a).len(), 2);
        let c = p.children(a)[0];
        assert_eq!(*p.label(c), L::tag("c"));
        let desc = p.children(c)[0];
        assert!(p.label(desc).is_descendant());
        assert_eq!(*p.label(p.children(desc)[0]), L::tag("o"));
    }

    #[test]
    fn parses_predicate_with_leading_self_descendant() {
        let a = parse_pattern("/x[.//y]").unwrap();
        let b = parse_pattern("/x[//y]").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parses_root_branching_form() {
        let p = parse_pattern(".[//CD][//Mozart]").unwrap();
        assert_eq!(p.children(p.root()).len(), 2);
        let q = parse_pattern("/.[//CD][//Mozart]").unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn parses_bare_root() {
        let p = parse_pattern("/.").unwrap();
        assert_eq!(p.node_count(), 1);
        let q = parse_pattern(".").unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn parses_root_with_continuation_path() {
        let p = parse_pattern("./a/b").unwrap();
        let q = parse_pattern("/a/b").unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn parses_quoted_labels() {
        let p = parse_pattern("//interpreter/ensemble/\"Berliner Phil.\"").unwrap();
        // The label value is unquoted; its Display form keeps the quotes so
        // the pattern's own Display output re-parses.
        assert!(p
            .preorder()
            .iter()
            .any(|&id| *p.label(id) == L::Tag("Berliner Phil.".into())));
        let labels = labels_preorder(&p);
        assert!(labels.contains(&"\"Berliner Phil.\"".to_string()));
    }

    #[test]
    fn parses_nested_predicates() {
        let p = parse_pattern("/a[b[c][d]]/e").unwrap();
        let a = p.children(p.root())[0];
        assert_eq!(p.children(a).len(), 2); // b and e
        let b = p.children(a)[0];
        assert_eq!(p.children(b).len(), 2); // c and d
    }

    #[test]
    fn figure1_patterns_parse() {
        for expr in [
            "/media/CD/*/last/Mozart",
            "//CD/Mozart",
            ".[//CD][//Mozart]",
            "//composer[last/Mozart]",
        ] {
            let p = parse_pattern(expr).unwrap();
            assert!(p.validate().is_ok(), "{expr} should validate");
        }
    }

    #[test]
    fn rejects_empty_input() {
        assert!(parse_pattern("").is_err());
        assert!(parse_pattern("   ").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_pattern("/a]").is_err());
        assert!(parse_pattern("/a[b]]").is_err());
    }

    #[test]
    fn rejects_missing_step() {
        assert!(parse_pattern("/a/").is_err());
        assert!(parse_pattern("//").is_err());
        assert!(parse_pattern("/a[]").is_err());
    }

    #[test]
    fn rejects_unterminated_predicate_or_quote() {
        assert!(parse_pattern("/a[b").is_err());
        assert!(parse_pattern("/\"abc").is_err());
    }

    #[test]
    fn rejects_double_descendant_step() {
        // `a////b` tokenises as a, //, //, b: the inner descendant would get a
        // descendant child, which validation rejects.
        assert!(parse_pattern("a////b").is_err());
    }

    #[test]
    fn error_reports_offset() {
        let err = parse_pattern("/a[@x]").unwrap_err();
        assert!(err.offset() >= 3);
    }

    #[test]
    fn empty_quoted_labels_are_rejected() {
        // Found by fuzzing: `""` parsed to an empty tag whose bare Display
        // form no longer parsed.
        assert!(parse_pattern("/\"\"").is_err());
        assert!(parse_pattern("\"\"[o]/b").is_err());
        // Ordinary names still work quoted.
        let quoted = parse_pattern("/\"CD\"").unwrap();
        assert_eq!(quoted, parse_pattern("/CD").unwrap());
    }

    #[test]
    fn non_name_labels_round_trip_through_quoting() {
        // Found by fuzzing: labels with punctuation printed bare and the
        // Display output failed to re-parse.
        for expr in ["/\"a>b\"/c", "//ensemble/\"Berliner Phil.\"", "/\"9a\""] {
            let p = parse_pattern(expr).unwrap();
            let display = p.to_string();
            let reparsed = parse_pattern(&display).unwrap();
            assert_eq!(p, reparsed, "round trip failed for {expr} ({display})");
        }
    }

    #[test]
    fn deep_linear_path_is_rejected_not_overflowed() {
        // A long linear path parses without parser recursion, but the
        // resulting pattern's Display/equality walks recurse over its depth,
        // so the parser must bound total depth.
        let deep = "/a".repeat(MAX_DEPTH * 4);
        let err = parse_pattern(&deep).unwrap_err();
        assert!(err.message().contains("depth limit"));

        // Deep predicate nesting hits the same limit.
        let nested = format!(
            "{}{}",
            "a[".repeat(MAX_DEPTH * 4),
            "]".repeat(MAX_DEPTH * 4)
        );
        assert!(parse_pattern(&nested).is_err());

        // Just under the limit still parses (and its recursive walks are
        // safe to run).
        let ok = "/a".repeat(MAX_DEPTH - 1);
        let p = parse_pattern(&ok).unwrap();
        assert_eq!(p.height(), MAX_DEPTH - 1);
        let _ = p.to_string();
        assert_eq!(p, p.clone());
    }

    #[test]
    fn display_parse_round_trip_examples() {
        for expr in [
            "/media/CD/*/last/Mozart",
            "//CD/Mozart",
            "/.[//CD][//Mozart]",
            "//composer[last/Mozart]",
            "/a[b//c][d]",
            "/a/*[b][c]",
        ] {
            let p = parse_pattern(expr).unwrap();
            let reparsed = parse_pattern(&p.to_string()).unwrap();
            assert_eq!(p, reparsed, "round trip failed for {expr}");
        }
    }
}
