//! Tree-pattern aggregation: computing a single pattern that *contains* a set
//! of subscriptions.
//!
//! The paper contrasts its similarity-based communities with summarisation by
//! *subscription aggregation* (Chan et al., "Tree Pattern Aggregation for
//! Scalable XML Data Dissemination", VLDB 2002 — reference 4 of the paper):
//! a router replaces a set of subscriptions by one more general pattern and
//! forwards every document matching the aggregate. This module implements a
//! sound aggregation operator used by the routing crate as the classic
//! baseline (perfect recall, possibly poor precision):
//!
//! * [`aggregate_pair`] computes an upper bound of two patterns: a pattern
//!   whose constraints are implied by *both* inputs, so any document matching
//!   either input matches the aggregate;
//! * [`aggregate_all`] folds a whole subscription set.
//!
//! The construction keeps every root branch of one pattern that (by the
//! homomorphism containment test) is also implied by the other pattern, and
//! vice versa. It is sound but not minimal: when the two patterns share no
//! implied branch it degrades to the universal pattern `/.`, exactly like the
//! "most general aggregate" fallback of aggregation-based routers.

use crate::containment::contains;
use crate::ops::normalize;
use crate::pattern::{PatternNodeId, TreePattern};

/// Build the single-branch pattern consisting of one root-child subtree of
/// `pattern`.
fn branch_pattern(pattern: &TreePattern, branch: PatternNodeId) -> TreePattern {
    let mut single = TreePattern::new();
    let root = single.root();
    single.graft(root, pattern, branch);
    single
}

/// Aggregate two patterns into one that contains both (every document
/// matching `p` *or* `q` matches the result).
pub fn aggregate_pair(p: &TreePattern, q: &TreePattern) -> TreePattern {
    let mut result = TreePattern::new();
    let root = result.root();
    for &branch in p.children(p.root()) {
        if contains(&branch_pattern(p, branch), q) {
            result.graft(root, p, branch);
        }
    }
    for &branch in q.children(q.root()) {
        if contains(&branch_pattern(q, branch), p) {
            result.graft(root, q, branch);
        }
    }
    normalize(&result)
}

/// Aggregate an arbitrary set of patterns. Aggregating an empty set yields
/// the universal pattern `/.` (which matches every document).
pub fn aggregate_all<'a, I>(patterns: I) -> TreePattern
where
    I: IntoIterator<Item = &'a TreePattern>,
{
    let mut iter = patterns.into_iter();
    let first = match iter.next() {
        Some(p) => p.clone(),
        None => return TreePattern::new(),
    };
    iter.fold(normalize(&first), |acc, p| aggregate_pair(&acc, p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_xml::XmlTree;

    fn pat(s: &str) -> TreePattern {
        TreePattern::parse(s).unwrap()
    }

    #[test]
    fn aggregate_of_identical_patterns_is_the_pattern() {
        let p = pat("/a/b[c][d]");
        let agg = aggregate_pair(&p, &p);
        assert_eq!(agg, normalize(&p));
    }

    #[test]
    fn aggregate_contains_both_inputs() {
        let p = pat("/a[b][c]");
        let q = pat("/a[b][d]");
        let agg = aggregate_pair(&p, &q);
        assert!(contains(&agg, &p));
        assert!(contains(&agg, &q));
        // The aggregate is strictly more general than either input.
        assert!(!contains(&p, &agg));
    }

    #[test]
    fn multi_branch_patterns_keep_their_shared_implied_branches() {
        // Both subscriptions require //media; the aggregate keeps it instead
        // of collapsing all the way to the universal pattern.
        let p = pat(".[//media][//CD]");
        let q = pat(".[//media][//book]");
        let agg = aggregate_pair(&p, &q);
        assert!(contains(&agg, &p));
        assert!(contains(&agg, &q));
        assert_eq!(agg, pat("//media"));
    }

    #[test]
    fn unrelated_patterns_aggregate_to_the_universal_pattern() {
        let p = pat("/a/b");
        let q = pat("/x/y");
        let agg = aggregate_pair(&p, &q);
        assert_eq!(agg, TreePattern::new());
    }

    #[test]
    fn descendant_branches_survive_when_implied() {
        let p = pat(".[//CD][//Mozart]");
        let q = pat("/media/CD/*/last/Mozart");
        let agg = aggregate_pair(&p, &q);
        // Both //CD and //Mozart are implied by q, so the aggregate keeps
        // them and equals p (up to normalisation).
        assert_eq!(agg, normalize(&p));
    }

    #[test]
    fn aggregate_never_loses_documents_on_examples() {
        let patterns = [
            pat("/media/CD/composer/last"),
            pat("/media/CD/title"),
            pat("//CD[composer]"),
        ];
        let agg = aggregate_all(&patterns);
        let docs = [
            "<media><CD><composer><last>Mozart</last></composer></CD></media>",
            "<media><CD><title>Requiem</title></CD></media>",
            "<media><CD><composer><first>W</first></composer><x/></CD></media>",
            "<media><book><title>Emma</title></book></media>",
        ];
        for text in docs {
            let doc = XmlTree::parse(text).unwrap();
            let any_member = patterns.iter().any(|p| p.matches(&doc));
            if any_member {
                assert!(
                    agg.matches(&doc),
                    "aggregate {agg} must match every document a member matches ({text})"
                );
            }
        }
    }

    #[test]
    fn aggregate_all_of_empty_set_is_universal() {
        let agg = aggregate_all(std::iter::empty::<&TreePattern>());
        assert_eq!(agg.node_count(), 1);
    }

    #[test]
    fn aggregate_is_commutative_on_these_examples() {
        let p = pat("/a[b][c]");
        let q = pat("/a[b]/d");
        assert_eq!(aggregate_pair(&p, &q), aggregate_pair(&q, &p));
    }

    #[test]
    fn aggregation_is_monotone_in_generality() {
        // Aggregating with a more general pattern keeps the result general.
        let specific = pat("/a/b/c");
        let general = pat("//c");
        let agg = aggregate_pair(&specific, &general);
        assert!(contains(&agg, &specific));
        assert!(contains(&agg, &general));
    }
}
