//! Structural operations on tree patterns.
//!
//! The proximity metrics of Section 4 need the joint probability `P(p ∧ q)`,
//! which the paper computes "by simply merging the root nodes of p and q":
//! the conjunction pattern has a single `/.` root whose children are the
//! union of the root children of `p` and `q`. [`conjunction`] implements this
//! merge, and [`normalize`] removes duplicate sibling subtrees so repeated
//! conjunctions do not grow without bound.

use std::collections::BTreeMap;

use crate::pattern::{PatternNodeId, TreePattern};

/// Build the conjunction `p ∧ q`: a pattern matched exactly by the documents
/// that match both `p` and `q` (root-merge of Section 4).
pub fn conjunction(p: &TreePattern, q: &TreePattern) -> TreePattern {
    let mut merged = TreePattern::new();
    let root = merged.root();
    for &child in p.children(p.root()) {
        merged.graft(root, p, child);
    }
    for &child in q.children(q.root()) {
        merged.graft(root, q, child);
    }
    normalize(&merged)
}

/// Build the conjunction of an arbitrary number of patterns.
pub fn conjunction_all<'a, I>(patterns: I) -> TreePattern
where
    I: IntoIterator<Item = &'a TreePattern>,
{
    let mut merged = TreePattern::new();
    let root = merged.root();
    for p in patterns {
        for &child in p.children(p.root()) {
            merged.graft(root, p, child);
        }
    }
    normalize(&merged)
}

/// Return a copy of `pattern` in which, at every node, duplicate child
/// subtrees (structurally identical modulo sibling order) are collapsed to a
/// single copy, and children are emitted in a canonical (sorted) order.
///
/// Normalisation preserves the matching semantics: requiring the same
/// sub-pattern twice at the same branching point is equivalent to requiring
/// it once.
pub fn normalize(pattern: &TreePattern) -> TreePattern {
    let mut out = TreePattern::new();
    let out_root = out.root();
    copy_normalized(pattern, pattern.root(), &mut out, out_root);
    out
}

fn copy_normalized(
    src: &TreePattern,
    src_node: PatternNodeId,
    dst: &mut TreePattern,
    dst_node: PatternNodeId,
) {
    // Deduplicate children by canonical key and order them deterministically.
    let mut unique: BTreeMap<String, PatternNodeId> = BTreeMap::new();
    for &child in src.children(src_node) {
        unique.entry(subtree_key(src, child)).or_insert(child);
    }
    for (_, child) in unique {
        let new_child = dst.add_child(dst_node, src.label(child).clone());
        copy_normalized(src, child, dst, new_child);
    }
}

/// Canonical key of the subtree rooted at `node` (children sorted).
pub fn subtree_key(pattern: &TreePattern, node: PatternNodeId) -> String {
    let mut child_keys: Vec<String> = pattern
        .children(node)
        .iter()
        .map(|&c| subtree_key(pattern, c))
        .collect();
    child_keys.sort();
    format!("{}({})", pattern.label(node), child_keys.join(","))
}

/// Summary statistics of a pattern, used by the workload generator and the
/// experiment reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternStats {
    /// Total number of nodes including the root.
    pub node_count: usize,
    /// Height (longest root-to-leaf path, excluding the root).
    pub height: usize,
    /// Number of `*` nodes.
    pub wildcards: usize,
    /// Number of `//` nodes.
    pub descendants: usize,
    /// Number of nodes with two or more children.
    pub branches: usize,
}

/// Compute [`PatternStats`] for a pattern.
pub fn stats(pattern: &TreePattern) -> PatternStats {
    PatternStats {
        node_count: pattern.node_count(),
        height: pattern.height(),
        wildcards: pattern.wildcard_count(),
        descendants: pattern.descendant_count(),
        branches: pattern.branching_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreePattern;
    use tps_xml::XmlTree;

    fn pat(s: &str) -> TreePattern {
        TreePattern::parse(s).unwrap()
    }

    #[test]
    fn conjunction_has_all_root_branches() {
        let p = pat("/a/b");
        let q = pat("//c");
        let both = conjunction(&p, &q);
        assert_eq!(both.children(both.root()).len(), 2);
    }

    #[test]
    fn conjunction_matches_iff_both_match() {
        let docs = [
            "<a><b/><c/></a>",
            "<a><b/></a>",
            "<a><c/></a>",
            "<x><c/></x>",
        ];
        let p = pat("/a/b");
        let q = pat("//c");
        let both = conjunction(&p, &q);
        for text in docs {
            let doc = XmlTree::parse(text).unwrap();
            assert_eq!(
                both.matches(&doc),
                p.matches(&doc) && q.matches(&doc),
                "conjunction semantics violated on {text}"
            );
        }
    }

    #[test]
    fn conjunction_with_bare_root_is_identity_up_to_normalisation() {
        let p = pat("/a[b][c]");
        let top = pat("/.");
        let both = conjunction(&p, &top);
        assert_eq!(both, normalize(&p));
    }

    #[test]
    fn conjunction_with_itself_normalises_to_itself() {
        let p = pat("/a[b][c//d]");
        let both = conjunction(&p, &p);
        assert_eq!(both, normalize(&p));
    }

    #[test]
    fn conjunction_all_over_three_patterns() {
        let p = pat("/a/b");
        let q = pat("//c");
        let r = pat("/a/d");
        let all = conjunction_all([&p, &q, &r]);
        let doc = XmlTree::parse("<a><b/><d/><e><c/></e></a>").unwrap();
        assert!(all.matches(&doc));
        let doc2 = XmlTree::parse("<a><b/><d/></a>").unwrap();
        assert!(!all.matches(&doc2));
    }

    #[test]
    fn normalize_removes_duplicate_branches() {
        let p = pat("/a[b][b][c]");
        let n = normalize(&p);
        let a = n.children(n.root())[0];
        assert_eq!(n.children(a).len(), 2);
    }

    #[test]
    fn normalize_is_idempotent() {
        let p = pat("/a[c][b][b//x]");
        let n1 = normalize(&p);
        let n2 = normalize(&n1);
        assert_eq!(n1, n2);
    }

    #[test]
    fn normalize_preserves_matching_on_examples() {
        let p = pat("/a[b][b][c/d]");
        let n = normalize(&p);
        for text in [
            "<a><b/><c><d/></c></a>",
            "<a><b/></a>",
            "<a><c><d/></c></a>",
        ] {
            let doc = XmlTree::parse(text).unwrap();
            assert_eq!(p.matches(&doc), n.matches(&doc));
        }
    }

    #[test]
    fn stats_reports_counts() {
        let p = pat("/a[b//c][*]/d");
        let s = stats(&p);
        assert_eq!(s.wildcards, 1);
        assert_eq!(s.descendants, 1);
        assert_eq!(s.branches, 1);
        assert_eq!(s.node_count, p.node_count());
        assert_eq!(s.height, p.height());
    }

    #[test]
    fn subtree_key_is_order_insensitive() {
        let p = pat("/a[b][c]");
        let q = pat("/a[c][b]");
        assert_eq!(subtree_key(&p, p.root()), subtree_key(&q, q.root()));
    }
}
