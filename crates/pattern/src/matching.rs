//! Exact tree-pattern matching semantics (`T |= p`, Section 2 of the paper).
//!
//! The semantics distinguish the children of the pattern root from all other
//! pattern nodes:
//!
//! * a *non-root* pattern node `v` evaluated at a document node `t`
//!   constrains a **child** of `t` (or a descendant-or-self of `t` when
//!   `label(v) = //`),
//! * a **child of the pattern root** constrains the document **root itself**
//!   (a tag must equal the root's label; `//` may re-root the evaluation at
//!   any descendant-or-self of the document root).
//!
//! This mirrors the special treatment of the `/.` root label: it is what lets
//! the pattern `.[//CD][//Mozart]` (pattern `pc` in Figure 1) require the
//! presence of two elements anywhere in the document without implying an
//! ancestor relationship between them.

use tps_xml::{NodeId, XmlTree};

use crate::pattern::{PatternLabel, PatternNodeId, TreePattern};

/// Does `document` satisfy `pattern`?
pub fn matches(document: &XmlTree, pattern: &TreePattern) -> bool {
    let doc_root = document.root();
    pattern
        .children(pattern.root())
        .iter()
        .all(|&v| match_at_root(document, doc_root, pattern, v))
}

/// Evaluate a child `v` of the pattern root against the document subtree
/// rooted at `t` (rules (1)–(3) of the top-level definition).
fn match_at_root(document: &XmlTree, t: NodeId, pattern: &TreePattern, v: PatternNodeId) -> bool {
    match pattern.label(v) {
        PatternLabel::Tag(tag) => {
            document.label(t) == tag.as_ref()
                && pattern
                    .children(v)
                    .iter()
                    .all(|&v2| match_subtree(document, t, pattern, v2))
        }
        PatternLabel::Wildcard => pattern
            .children(v)
            .iter()
            .all(|&v2| match_subtree(document, t, pattern, v2)),
        PatternLabel::Descendant => {
            // T' |= p' where p' re-roots the children of v at some
            // descendant-or-self t' of t.
            document.descendants_or_self(t).any(|t2| {
                pattern
                    .children(v)
                    .iter()
                    .all(|&v2| match_at_root(document, t2, pattern, v2))
            })
        }
        PatternLabel::Root => false,
    }
}

/// Evaluate a non-root pattern node `v` at document node `t`
/// (`(T, t) |= Subtree(v, p)`, rules (1)–(3) of the subtree definition).
fn match_subtree(document: &XmlTree, t: NodeId, pattern: &TreePattern, v: PatternNodeId) -> bool {
    match pattern.label(v) {
        PatternLabel::Tag(tag) => document.children(t).iter().any(|&t2| {
            document.label(t2) == tag.as_ref()
                && pattern
                    .children(v)
                    .iter()
                    .all(|&v2| match_subtree(document, t2, pattern, v2))
        }),
        PatternLabel::Wildcard => document.children(t).iter().any(|&t2| {
            pattern
                .children(v)
                .iter()
                .all(|&v2| match_subtree(document, t2, pattern, v2))
        }),
        PatternLabel::Descendant => document.descendants_or_self(t).any(|t2| {
            pattern
                .children(v)
                .iter()
                .all(|&v2| match_subtree(document, t2, pattern, v2))
        }),
        PatternLabel::Root => false,
    }
}

/// Count the documents in `documents` that match `pattern`.
pub fn count_matches<'a, I>(documents: I, pattern: &TreePattern) -> usize
where
    I: IntoIterator<Item = &'a XmlTree>,
{
    documents
        .into_iter()
        .filter(|doc| matches(doc, pattern))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreePattern;

    /// The XML document `T` of Figure 1.
    fn figure1_document() -> XmlTree {
        XmlTree::parse(
            "<media>\
               <book>\
                 <author><first>William</first><last>Shakespeare</last></author>\
                 <title>Hamlet</title>\
               </book>\
               <CD>\
                 <composer><first>Wolfgang</first><last>Mozart</last></composer>\
                 <title>Requiem</title>\
                 <interpreter><ensemble>Berliner Phil.</ensemble></interpreter>\
               </CD>\
             </media>",
        )
        .unwrap()
    }

    #[test]
    fn figure1_pa_matches() {
        let t = figure1_document();
        let pa = TreePattern::parse("/media/CD/*/last/Mozart").unwrap();
        assert!(matches(&t, &pa));
    }

    #[test]
    fn figure1_pb_does_not_match() {
        // pb requires a CD element with a *direct* Mozart sub-element.
        let t = figure1_document();
        let pb = TreePattern::parse("//CD/Mozart").unwrap();
        assert!(!matches(&t, &pb));
    }

    #[test]
    fn figure1_pc_matches() {
        // pc requires a CD element and a Mozart element anywhere.
        let t = figure1_document();
        let pc = TreePattern::parse(".[//CD][//Mozart]").unwrap();
        assert!(matches(&t, &pc));
    }

    #[test]
    fn figure1_pd_matches() {
        let t = figure1_document();
        let pd = TreePattern::parse("//composer[last/Mozart]").unwrap();
        assert!(matches(&t, &pd));
    }

    #[test]
    fn bare_root_matches_everything() {
        let t = figure1_document();
        let p = TreePattern::parse("/.").unwrap();
        assert!(matches(&t, &p));
    }

    #[test]
    fn root_tag_must_equal_document_root() {
        let t = figure1_document();
        assert!(matches(&t, &TreePattern::parse("/media").unwrap()));
        assert!(!matches(&t, &TreePattern::parse("/CD").unwrap()));
    }

    #[test]
    fn leading_wildcard_matches_any_root() {
        let t = figure1_document();
        assert!(matches(&t, &TreePattern::parse("/*/CD").unwrap()));
        assert!(!matches(&t, &TreePattern::parse("/*/DVD").unwrap()));
    }

    #[test]
    fn leading_descendant_can_match_the_root_itself() {
        let t = XmlTree::parse("<a><b/></a>").unwrap();
        assert!(matches(&t, &TreePattern::parse("//a").unwrap()));
        assert!(matches(&t, &TreePattern::parse("//b").unwrap()));
        assert!(!matches(&t, &TreePattern::parse("//c").unwrap()));
    }

    #[test]
    fn inner_descendant_can_map_to_the_empty_path() {
        // a//b means a has a descendant-or-self node with a *child* b, so a/b
        // itself qualifies.
        let t = XmlTree::parse("<a><b/></a>").unwrap();
        assert!(matches(&t, &TreePattern::parse("/a//b").unwrap()));
        let deep = XmlTree::parse("<a><x><y><b/></y></x></a>").unwrap();
        assert!(matches(&deep, &TreePattern::parse("/a//b").unwrap()));
    }

    #[test]
    fn branching_requires_all_branches() {
        let t = XmlTree::parse("<a><b/><d/></a>").unwrap();
        assert!(matches(&t, &TreePattern::parse("/a[b][d]").unwrap()));
        assert!(!matches(&t, &TreePattern::parse("/a[b][e]").unwrap()));
    }

    #[test]
    fn branches_may_match_the_same_document_node() {
        // Both branches b and b/c are satisfied by the same child.
        let t = XmlTree::parse("<a><b><c/></b></a>").unwrap();
        assert!(matches(&t, &TreePattern::parse("/a[b][b/c]").unwrap()));
    }

    #[test]
    fn wildcard_in_the_middle_of_a_path() {
        let t = XmlTree::parse("<a><x><c/></x></a>").unwrap();
        assert!(matches(&t, &TreePattern::parse("/a/*/c").unwrap()));
        assert!(!matches(&t, &TreePattern::parse("/a/*/d").unwrap()));
    }

    #[test]
    fn text_leaves_are_matchable_labels() {
        let t = XmlTree::parse("<last>Mozart</last>").unwrap();
        assert!(matches(&t, &TreePattern::parse("/last/Mozart").unwrap()));
        assert!(matches(&t, &TreePattern::parse("//Mozart").unwrap()));
    }

    #[test]
    fn quoted_label_with_space_matches() {
        let t = figure1_document();
        let p = TreePattern::parse("//ensemble/\"Berliner Phil.\"").unwrap();
        assert!(matches(&t, &p));
    }

    #[test]
    fn count_matches_counts_only_matching_documents() {
        let docs = vec![
            XmlTree::parse("<a><b/></a>").unwrap(),
            XmlTree::parse("<a><c/></a>").unwrap(),
            XmlTree::parse("<x><b/></x>").unwrap(),
        ];
        let p = TreePattern::parse("/a/b").unwrap();
        assert_eq!(count_matches(&docs, &p), 1);
        let q = TreePattern::parse("//b").unwrap();
        assert_eq!(count_matches(&docs, &q), 2);
    }

    #[test]
    fn mutually_exclusive_branches_do_not_match() {
        // The counter-representation motivating example of Section 3.2:
        // a[b][d] where b and d never co-occur.
        let t1 = XmlTree::parse("<a><b/></a>").unwrap();
        let t2 = XmlTree::parse("<a><d/></a>").unwrap();
        let p = TreePattern::parse("/a[b][d]").unwrap();
        assert!(!matches(&t1, &p));
        assert!(!matches(&t2, &p));
    }

    #[test]
    fn descendant_under_branching_node() {
        let t = XmlTree::parse("<a><c><f/><o><n/></o></c></a>").unwrap();
        let p = TreePattern::parse("/a[c/f][c/o/n]").unwrap();
        assert!(matches(&t, &p));
        let q = TreePattern::parse("/a[c//n][c/f]").unwrap();
        assert!(matches(&t, &q));
    }
}
