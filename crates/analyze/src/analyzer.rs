//! The multi-pass workload analyzer.
//!
//! [`WorkloadAnalyzer::analyze`] runs four passes over a subscription
//! workload and produces an [`AnalysisReport`]:
//!
//! 1. **Satisfiability** (`E001`): with a DTD, every pattern's concrete
//!    expansion set is enumerated once (bounded by
//!    [`AnalysisConfig`]); a provably empty set — no truncation — is an
//!    error. Truncated enumerations degrade to *unknown* and surface as a
//!    `W004` hazard instead, never as a false error.
//! 2. **Duplicate grouping** (`W003`): patterns with identical expansion
//!    sets are DTD-equivalent even without any syntactic relation (the
//!    paper's Example 1.1); without a DTD, syntactically equivalent
//!    patterns (equal canonical keys) still group.
//! 3. **Coverage** (`W002`): each remaining pattern is checked for a
//!    covering subscription, first by the syntactic homomorphism test
//!    (sound for every document), then by expansion-set inclusion (sound
//!    for DTD-conforming documents). The proof kind is recorded so the
//!    compaction plan can distinguish universally safe drops from
//!    DTD-conditional ones.
//! 4. **Cost hazards** (`W004`): saturated `//`/`*` steps and patterns
//!    sitting at the analyzer's descendant-depth bound.
//!
//! Coverage links always point at a pattern that was uncovered when the
//! link was created, so coverage chains are acyclic by construction (the
//! same argument as `SimilarityEngine`'s analyze-on-register mode).

use std::collections::{BTreeMap, BTreeSet};

use tps_dtd::{AnalysisConfig, DtdSchema, PatternAnalyzer, Trivalent};
use tps_pattern::containment;
use tps_pattern::{PatternParseError, TreePattern};

use crate::compact::{CompactionPlan, CoverageLink};
use crate::diagnostics::{Diagnostic, LintCode, Proof, Span};

/// One subscription of the analysed workload: the pattern plus the source
/// text and provenance needed for diagnostics.
#[derive(Debug, Clone)]
pub struct WorkloadEntry {
    source: String,
    origin: String,
    pattern: TreePattern,
}

impl WorkloadEntry {
    /// Parse a pattern expression into an entry with no provenance label.
    pub fn parse(source: &str) -> Result<Self, PatternParseError> {
        Self::with_origin(source, "")
    }

    /// Parse a pattern expression, attaching a provenance label (e.g.
    /// `workload.patterns:12`) shown in diagnostics.
    pub fn with_origin(source: &str, origin: &str) -> Result<Self, PatternParseError> {
        let pattern = TreePattern::parse(source)?;
        Ok(Self {
            source: source.trim().to_string(),
            origin: origin.to_string(),
            pattern,
        })
    }

    /// Wrap an already-parsed pattern (the source text is its display form).
    pub fn from_pattern(pattern: &TreePattern) -> Self {
        Self {
            source: pattern.to_string(),
            origin: String::new(),
            pattern: pattern.clone(),
        }
    }

    /// The pattern's source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The provenance label (empty when unknown).
    pub fn origin(&self) -> &str {
        &self.origin
    }

    /// The parsed pattern.
    pub fn pattern(&self) -> &TreePattern {
        &self.pattern
    }
}

/// Tunables for the analyzer, mostly the `W004` cost-hazard pass.
#[derive(Debug, Clone)]
pub struct AnalyzerOptions {
    /// Expansion bounds for the DTD passes.
    pub analysis: AnalysisConfig,
    /// Flag a pattern whose fraction of `//`/`*` nodes (over non-root
    /// nodes) reaches this threshold.
    pub density_threshold: f64,
    /// Only apply the density check to patterns with at least this many
    /// non-root nodes (tiny patterns like `//*` are legitimately vague).
    pub density_min_steps: usize,
    /// Flag a descendant-bearing pattern whose height is within this margin
    /// of [`AnalysisConfig::max_descendant_depth`] — its expansions are at
    /// risk of truncation.
    pub depth_margin: usize,
}

impl Default for AnalyzerOptions {
    fn default() -> Self {
        Self {
            analysis: AnalysisConfig::default(),
            density_threshold: 0.5,
            density_min_steps: 4,
            depth_margin: 1,
        }
    }
}

/// The analyzer's cached per-pattern facts, exposed for tooling.
#[derive(Debug, Clone)]
pub struct PatternVerdict {
    /// Three-valued DTD satisfiability; `None` when no schema was supplied.
    pub satisfiability: Option<Trivalent>,
    /// Whether an expansion cap fired while enumerating this pattern.
    pub truncated: bool,
    /// Number of concrete expansions enumerated (schema runs only).
    pub expansions: Option<usize>,
}

/// The outcome of one [`WorkloadAnalyzer::analyze`] run.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Name of the DTD analysed against, if any.
    pub schema_name: Option<String>,
    /// Number of patterns analysed.
    pub pattern_count: usize,
    /// Per-pattern verdicts, parallel to the input workload.
    pub verdicts: Vec<PatternVerdict>,
    /// All findings, sorted by pattern index then code.
    pub diagnostics: Vec<Diagnostic>,
    /// The containment-driven compaction plan derived from the findings.
    pub plan: CompactionPlan,
}

impl AnalysisReport {
    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == crate::diagnostics::Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// Number of diagnostics with the given code.
    pub fn count(&self, code: LintCode) -> usize {
        self.diagnostics.iter().filter(|d| d.code == code).count()
    }

    /// Whether the run passes a lint gate: no errors, and no warnings
    /// either when `deny_warnings` is set.
    pub fn is_clean(&self, deny_warnings: bool) -> bool {
        if deny_warnings {
            self.diagnostics.is_empty()
        } else {
            self.error_count() == 0
        }
    }
}

/// The static subscription-analysis pass.
#[derive(Debug, Clone)]
pub struct WorkloadAnalyzer<'a> {
    schema: Option<&'a DtdSchema>,
    options: AnalyzerOptions,
}

/// Cached per-pattern expansion facts computed once in pass 1.
struct ExpansionFacts {
    /// Canonical keys of the concrete expansions (schema runs only).
    keys: Option<BTreeSet<String>>,
    truncated: bool,
    satisfiability: Option<Trivalent>,
}

impl ExpansionFacts {
    /// Eligible for exact DTD set reasoning: enumerated completely and
    /// non-empty.
    fn exact_keys(&self) -> Option<&BTreeSet<String>> {
        match &self.keys {
            Some(keys) if !self.truncated && !keys.is_empty() => Some(keys),
            _ => None,
        }
    }
}

impl<'a> WorkloadAnalyzer<'a> {
    /// Analyzer with default options; pass `None` for a schema-less run
    /// (syntactic passes only).
    pub fn new(schema: Option<&'a DtdSchema>) -> Self {
        Self::with_options(schema, AnalyzerOptions::default())
    }

    /// Analyzer with explicit options.
    pub fn with_options(schema: Option<&'a DtdSchema>, options: AnalyzerOptions) -> Self {
        Self { schema, options }
    }

    /// Run all passes over `entries` and produce the report.
    pub fn analyze(&self, entries: &[WorkloadEntry]) -> AnalysisReport {
        let analyzer = self
            .schema
            .map(|s| PatternAnalyzer::with_config(s, self.options.analysis));
        let facts: Vec<ExpansionFacts> = entries
            .iter()
            .map(|e| self.expansion_facts(analyzer.as_ref(), e.pattern()))
            .collect();

        let mut diagnostics = Vec::new();
        self.satisfiability_pass(entries, &facts, &mut diagnostics);
        let mut covered = self.duplicate_pass(entries, &facts, &mut diagnostics);
        self.coverage_pass(entries, &facts, &mut covered, &mut diagnostics);
        self.hazard_pass(entries, &mut diagnostics);

        diagnostics.sort_by_key(|d| (d.pattern_index, d.code));

        let unsatisfiable: Vec<usize> = facts
            .iter()
            .enumerate()
            .filter(|(_, f)| f.satisfiability == Some(Trivalent::No))
            .map(|(i, _)| i)
            .collect();
        let plan = CompactionPlan::new(covered, unsatisfiable);

        AnalysisReport {
            schema_name: self.schema.map(|s| s.name().to_string()),
            pattern_count: entries.len(),
            verdicts: facts
                .iter()
                .map(|f| PatternVerdict {
                    satisfiability: f.satisfiability,
                    truncated: f.truncated,
                    expansions: f.keys.as_ref().map(|k| k.len()),
                })
                .collect(),
            diagnostics,
            plan,
        }
    }

    fn expansion_facts(
        &self,
        analyzer: Option<&PatternAnalyzer<'_>>,
        pattern: &TreePattern,
    ) -> ExpansionFacts {
        match analyzer {
            None => ExpansionFacts {
                keys: None,
                truncated: false,
                satisfiability: None,
            },
            Some(analyzer) => {
                let set = analyzer.expansions(pattern);
                let keys: BTreeSet<String> =
                    set.patterns.iter().map(|p| p.canonical_key()).collect();
                let satisfiability = if !keys.is_empty() {
                    Trivalent::Yes
                } else if set.truncated {
                    Trivalent::Unknown
                } else {
                    Trivalent::No
                };
                ExpansionFacts {
                    keys: Some(keys),
                    truncated: set.truncated,
                    satisfiability: Some(satisfiability),
                }
            }
        }
    }

    /// Pass 1: `E001` for proven-unsatisfiable patterns, `W004` for
    /// truncated enumerations (whose verdicts degraded to unknown).
    fn satisfiability_pass(
        &self,
        entries: &[WorkloadEntry],
        facts: &[ExpansionFacts],
        out: &mut Vec<Diagnostic>,
    ) {
        let schema_name = self.schema.map(|s| s.name()).unwrap_or("");
        for (i, (entry, fact)) in entries.iter().zip(facts).enumerate() {
            if fact.satisfiability == Some(Trivalent::No) {
                out.push(
                    self.diagnostic(
                        LintCode::Unsatisfiable,
                        i,
                        entry,
                        Span::whole(entry.source()),
                        format!(
                            "`{}` matches no document conforming to DTD `{}`",
                            entry.source(),
                            schema_name
                        ),
                        "every DTD-conforming expansion of the pattern was enumerated and \
                     none exists; the subscription can never fire on valid documents \
                     and should be removed or fixed"
                            .to_string(),
                        Vec::new(),
                        None,
                    ),
                );
            }
            if fact.truncated {
                out.push(self.diagnostic(
                    LintCode::CostHazard,
                    i,
                    entry,
                    Span::whole(entry.source()),
                    format!(
                        "DTD analysis of `{}` was truncated by an expansion cap",
                        entry.source()
                    ),
                    format!(
                        "enumeration stopped at max_descendant_depth={} / max_expansions={}; \
                         satisfiability and equivalence verdicts for this pattern degrade \
                         to `unknown` instead of firing, so redundancy it participates in \
                         may go undetected",
                        self.options.analysis.max_descendant_depth,
                        self.options.analysis.max_expansions
                    ),
                    Vec::new(),
                    None,
                ));
            }
        }
    }

    /// Pass 2: group DTD-equivalent (or syntactically equivalent) patterns
    /// and emit `W003` for every non-representative member. Returns the
    /// seeded coverage vector mapping group members to their representative.
    fn duplicate_pass(
        &self,
        entries: &[WorkloadEntry],
        facts: &[ExpansionFacts],
        out: &mut Vec<Diagnostic>,
    ) -> Vec<Option<CoverageLink>> {
        let mut covered: Vec<Option<CoverageLink>> = vec![None; entries.len()];
        // Group key: the exact expansion key-set when available, otherwise
        // the syntactic canonical key. Proven-unsatisfiable patterns are
        // excluded — they already carry `E001` and grouping empty match
        // sets is noise.
        let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, fact) in facts.iter().enumerate() {
            if fact.satisfiability == Some(Trivalent::No) {
                continue;
            }
            let key = match fact.exact_keys() {
                Some(keys) => {
                    let mut joined = String::from("dtd:");
                    for k in keys {
                        joined.push_str(k);
                        joined.push('\u{1}');
                    }
                    joined
                }
                None => format!("syn:{}", entries[i].pattern().canonical_key()),
            };
            groups.entry(key).or_default().push(i);
        }

        for members in groups.values() {
            if members.len() < 2 {
                continue;
            }
            let rep = members[0];
            let rep_key = entries[rep].pattern().canonical_key();
            for &i in &members[1..] {
                let proof = if entries[i].pattern().canonical_key() == rep_key {
                    Proof::Syntactic
                } else {
                    Proof::Dtd
                };
                let message = match proof {
                    Proof::Syntactic => format!(
                        "`{}` duplicates subscription #{} (`{}`)",
                        entries[i].source(),
                        rep,
                        entries[rep].source()
                    ),
                    Proof::Dtd => format!(
                        "`{}` is equivalent to subscription #{} (`{}`) under DTD `{}`",
                        entries[i].source(),
                        rep,
                        entries[rep].source(),
                        self.schema.map(|s| s.name()).unwrap_or("")
                    ),
                };
                let explanation = match proof {
                    Proof::Syntactic => "the two patterns are the same subscription up to \
                                         canonical form; registering both doubles routing \
                                         state for identical traffic"
                        .to_string(),
                    Proof::Dtd => "the patterns have identical sets of DTD-conforming \
                                   expansions, so they match exactly the same conforming \
                                   documents even though neither contains the other \
                                   syntactically (the paper's Example 1.1)"
                        .to_string(),
                };
                let related: Vec<usize> = members.iter().copied().filter(|&m| m != i).collect();
                out.push(self.diagnostic(
                    LintCode::DtdEquivalentDuplicate,
                    i,
                    &entries[i],
                    Span::whole(entries[i].source()),
                    message,
                    explanation,
                    related,
                    Some(proof),
                ));
                covered[i] = Some(CoverageLink {
                    coverer: rep,
                    proof,
                });
            }
        }
        covered
    }

    /// Pass 3: find a covering subscription for each still-uncovered
    /// pattern (`W002`), extending the coverage vector in place.
    fn coverage_pass(
        &self,
        entries: &[WorkloadEntry],
        facts: &[ExpansionFacts],
        covered: &mut [Option<CoverageLink>],
        out: &mut Vec<Diagnostic>,
    ) {
        let n = entries.len();
        for i in 0..n {
            if covered[i].is_some() || facts[i].satisfiability == Some(Trivalent::No) {
                continue;
            }
            let found = (0..n).find_map(|j| {
                if j == i || covered[j].is_some() || facts[j].satisfiability == Some(Trivalent::No)
                {
                    return None;
                }
                let (p_i, p_j) = (entries[i].pattern(), entries[j].pattern());
                if containment::contains(p_j, p_i) {
                    // Mutually contained patterns are equivalent; keep the
                    // earlier one as the representative.
                    if containment::contains(p_i, p_j) && j > i {
                        return None;
                    }
                    return Some((j, Proof::Syntactic));
                }
                // Exact expansion-set inclusion: sound on conforming
                // documents. Equal sets were already grouped in pass 2, so
                // any inclusion found here is strict.
                if let (Some(keys_i), Some(keys_j)) = (facts[i].exact_keys(), facts[j].exact_keys())
                {
                    if keys_i.is_subset(keys_j) {
                        return Some((j, Proof::Dtd));
                    }
                }
                None
            });
            if let Some((j, proof)) = found {
                let message = match proof {
                    Proof::Syntactic => format!(
                        "`{}` is contained in subscription #{} (`{}`)",
                        entries[i].source(),
                        j,
                        entries[j].source()
                    ),
                    Proof::Dtd => format!(
                        "`{}` is contained in subscription #{} (`{}`) under DTD `{}`",
                        entries[i].source(),
                        j,
                        entries[j].source(),
                        self.schema.map(|s| s.name()).unwrap_or("")
                    ),
                };
                let explanation = match proof {
                    Proof::Syntactic => "every document this pattern matches also matches the \
                                         covering subscription, for any document whatsoever; \
                                         routing the covering subscription alone delivers \
                                         identical traffic"
                        .to_string(),
                    Proof::Dtd => "every DTD-conforming document this pattern matches also \
                                   matches the covering subscription; dropping it is safe \
                                   only on streams validated against this DTD"
                        .to_string(),
                };
                out.push(self.diagnostic(
                    LintCode::ContainedRedundant,
                    i,
                    &entries[i],
                    Span::whole(entries[i].source()),
                    message,
                    explanation,
                    vec![j],
                    Some(proof),
                ));
                covered[i] = Some(CoverageLink { coverer: j, proof });
            }
        }
    }

    /// Pass 4: per-pattern cost hazards — `//`/`*` saturation and
    /// patterns at the descendant-depth bound.
    fn hazard_pass(&self, entries: &[WorkloadEntry], out: &mut Vec<Diagnostic>) {
        for (i, entry) in entries.iter().enumerate() {
            let pattern = entry.pattern();
            let steps = pattern.node_count().saturating_sub(1);
            let vague = pattern.wildcard_count() + pattern.descendant_count();
            if steps >= self.options.density_min_steps
                && vague > 0
                && (vague as f64) >= self.options.density_threshold * (steps as f64)
            {
                out.push(
                    self.diagnostic(
                        LintCode::CostHazard,
                        i,
                        entry,
                        vague_span(entry.source()),
                        format!(
                            "{vague} of {steps} steps in `{}` are `//` or `*`",
                            entry.source()
                        ),
                        "wildcard-saturated patterns force broad synopsis traversal and \
                     expand combinatorially under DTD analysis; anchor more steps to \
                     concrete tags if possible"
                            .to_string(),
                        Vec::new(),
                        None,
                    ),
                );
            }
            if pattern.descendant_count() > 0
                && pattern.height() + self.options.depth_margin
                    >= self.options.analysis.max_descendant_depth
            {
                out.push(
                    self.diagnostic(
                        LintCode::CostHazard,
                        i,
                        entry,
                        Span::whole(entry.source()),
                        format!(
                            "`{}` has height {} at the analyzer's descendant-depth bound {}",
                            entry.source(),
                            pattern.height(),
                            self.options.analysis.max_descendant_depth
                        ),
                        "descendant expansion for this pattern has little or no depth \
                     budget left, so DTD verdicts are likely to truncate; raise \
                     max_descendant_depth or shorten the pattern"
                            .to_string(),
                        Vec::new(),
                        None,
                    ),
                );
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // invariant: plain constructor fan-in, every field is distinct
    fn diagnostic(
        &self,
        code: LintCode,
        index: usize,
        entry: &WorkloadEntry,
        span: Span,
        message: String,
        explanation: String,
        related: Vec<usize>,
        proof: Option<Proof>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            pattern_index: index,
            source: entry.source().to_string(),
            span,
            origin: entry.origin().to_string(),
            message,
            explanation,
            related,
            proof,
        }
    }
}

/// Span covering the vague (`//`/`*`) region of a pattern's source text:
/// from the first to the last wildcard or descendant marker.
fn vague_span(source: &str) -> Span {
    let first = [source.find("//"), source.find('*')]
        .into_iter()
        .flatten()
        .min();
    let last = [
        source.rfind("//").map(|p| p + 2),
        source.rfind('*').map(|p| p + 1),
    ]
    .into_iter()
    .flatten()
    .max();
    match (first, last) {
        (Some(start), Some(end)) => Span { start, end },
        _ => Span::whole(source),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_dtd::samples::media_schema;

    fn workload(sources: &[&str]) -> Vec<WorkloadEntry> {
        sources
            .iter()
            .enumerate()
            .map(|(i, s)| WorkloadEntry::with_origin(s, &format!("test:{}", i + 1)).unwrap())
            .collect()
    }

    fn codes_for(report: &AnalysisReport, index: usize) -> Vec<LintCode> {
        report
            .diagnostics
            .iter()
            .filter(|d| d.pattern_index == index)
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn example_1_1_duplicates_group_as_w003_under_the_media_dtd() {
        // The paper's Example 1.1: under the media DTD the two patterns
        // match exactly the same documents although neither syntactically
        // contains the other.
        let schema = media_schema();
        let entries = workload(&["/media/CD/*/last/Mozart", "//composer/last/Mozart"]);
        let p = entries[0].pattern();
        let q = entries[1].pattern();
        assert!(!containment::contains(p, q) && !containment::contains(q, p));

        let report = WorkloadAnalyzer::new(Some(&schema)).analyze(&entries);
        let dup: Vec<&Diagnostic> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == LintCode::DtdEquivalentDuplicate)
            .collect();
        assert_eq!(dup.len(), 1, "report: {:#?}", report.diagnostics);
        assert_eq!(dup[0].pattern_index, 1);
        assert_eq!(dup[0].related, vec![0]);
        assert_eq!(dup[0].proof, Some(Proof::Dtd));
        assert!(dup[0].message.contains("media"));
        assert_eq!(report.plan.coverage(1).map(|l| l.coverer), Some(0));
    }

    #[test]
    fn unsatisfiable_patterns_fire_e001_only_when_proven() {
        let schema = media_schema();
        // The paper's `pb`: `CD` has no `Mozart` child and carries no text,
        // so the pattern matches no conforming document.
        let entries = workload(&["//CD/Mozart", "/media/book"]);
        let report = WorkloadAnalyzer::new(Some(&schema)).analyze(&entries);
        assert_eq!(codes_for(&report, 0), vec![LintCode::Unsatisfiable]);
        assert_eq!(codes_for(&report, 1), Vec::<LintCode>::new());
        assert_eq!(report.error_count(), 1);
        assert!(!report.is_clean(false));
        assert_eq!(report.plan.unsatisfiable(), &[0]);
    }

    #[test]
    fn syntactic_containment_fires_w002_without_a_schema() {
        let entries = workload(&["//book", "/media/book", "/other"]);
        let report = WorkloadAnalyzer::new(None).analyze(&entries);
        let contained: Vec<&Diagnostic> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == LintCode::ContainedRedundant)
            .collect();
        assert_eq!(contained.len(), 1);
        assert_eq!(contained[0].pattern_index, 1);
        assert_eq!(contained[0].related, vec![0]);
        assert_eq!(contained[0].proof, Some(Proof::Syntactic));
        assert!(report.plan.coverage(2).is_none());
    }

    #[test]
    fn dtd_refinement_fires_w002_with_dtd_proof() {
        let schema = media_schema();
        // `//CD/title` expands only to `/media/CD/title`, a strict subset of
        // `/media/*/title`'s expansions ({book,CD}); no homomorphism exists
        // in either direction (neither pattern has the other's concrete
        // tags on its spine), so only the DTD proves the containment.
        let entries = workload(&["/media/*/title", "//CD/title"]);
        let p = entries[0].pattern();
        let q = entries[1].pattern();
        assert!(!containment::contains(p, q) && !containment::contains(q, p));
        let report = WorkloadAnalyzer::new(Some(&schema)).analyze(&entries);
        let contained: Vec<&Diagnostic> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == LintCode::ContainedRedundant)
            .collect();
        assert_eq!(contained.len(), 1, "report: {:#?}", report.diagnostics);
        assert_eq!(contained[0].pattern_index, 1);
        assert_eq!(contained[0].related, vec![0]);
        assert_eq!(contained[0].proof, Some(Proof::Dtd));
    }

    #[test]
    fn truncated_analysis_degrades_to_w004_not_e001() {
        let schema = media_schema();
        let options = AnalyzerOptions {
            analysis: AnalysisConfig {
                max_descendant_depth: 1,
                max_expansions: 2,
            },
            ..AnalyzerOptions::default()
        };
        let entries = workload(&["//composer/last/Mozart"]);
        let report = WorkloadAnalyzer::with_options(Some(&schema), options).analyze(&entries);
        assert_eq!(report.count(LintCode::Unsatisfiable), 0);
        assert!(report.count(LintCode::CostHazard) >= 1);
        assert_eq!(report.verdicts[0].satisfiability, Some(Trivalent::Unknown));
        assert!(report.verdicts[0].truncated);
    }

    #[test]
    fn wildcard_saturation_and_depth_limit_fire_w004() {
        let entries = workload(&["/a//*//*/b", "/a/b/c/d"]);
        let options = AnalyzerOptions {
            analysis: AnalysisConfig {
                max_descendant_depth: 4,
                max_expansions: 4096,
            },
            ..AnalyzerOptions::default()
        };
        let report = WorkloadAnalyzer::with_options(None, options).analyze(&entries);
        let hazards: Vec<&Diagnostic> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == LintCode::CostHazard)
            .collect();
        assert!(hazards.iter().any(|d| d.pattern_index == 0));
        assert!(hazards.iter().all(|d| d.pattern_index == 0));
        // The saturation span points at the vague region, not byte 0.
        let sat = hazards
            .iter()
            .find(|d| d.message.contains("steps"))
            .unwrap();
        assert!(sat.span.start > 0 && sat.span.end <= entries[0].source().len());
    }

    #[test]
    fn exact_duplicates_group_syntactically_without_a_schema() {
        let entries = workload(&["/media/book/title", "/media/book/title"]);
        let report = WorkloadAnalyzer::new(None).analyze(&entries);
        let dup: Vec<&Diagnostic> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == LintCode::DtdEquivalentDuplicate)
            .collect();
        assert_eq!(dup.len(), 1);
        assert_eq!(dup[0].proof, Some(Proof::Syntactic));
    }

    #[test]
    fn diagnostics_are_sorted_and_carry_origins() {
        let entries = workload(&["//book", "/media/book", "/media/book"]);
        let report = WorkloadAnalyzer::new(None).analyze(&entries);
        let indices: Vec<usize> = report.diagnostics.iter().map(|d| d.pattern_index).collect();
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        assert_eq!(indices, sorted);
        assert!(report
            .diagnostics
            .iter()
            .all(|d| d.origin.starts_with("test:")));
    }
}
