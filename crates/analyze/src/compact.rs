//! Containment-driven routing-table compaction.
//!
//! The analyzer's coverage pass produces, for every pattern, an optional
//! link to a subscription that covers it plus the [`Proof`] kind behind the
//! link. A [`CompactionPlan`] turns those links into concrete keep/drop
//! decisions under two soundness regimes:
//!
//! * [`CompactionMode::Universal`] honours only syntactic links — the drop
//!   is delivery-identical for *every* document, conforming or not.
//! * [`CompactionMode::DtdAware`] additionally honours DTD links and drops
//!   proven-unsatisfiable patterns — delivery-identical only on streams
//!   that conform to the analysed DTD.
//!
//! Coverage links are acyclic by construction (a link always points at a
//! pattern that was uncovered when the link was created), so following
//! them terminates.

use crate::diagnostics::Proof;

/// A coverage edge: the pattern is subsumed by `coverer` under `proof`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverageLink {
    /// Workload index of the covering subscription.
    pub coverer: usize,
    /// How the subsumption was proven.
    pub proof: Proof,
}

/// Which redundancy proofs a compaction is allowed to act on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactionMode {
    /// Drop only syntactically proven redundancy — safe for arbitrary
    /// documents.
    Universal,
    /// Also drop DTD-proven redundancy and unsatisfiable patterns — safe
    /// only for DTD-conforming streams.
    DtdAware,
}

impl CompactionMode {
    /// Stable lowercase name (`"universal"` / `"dtd-aware"`).
    pub fn as_str(self) -> &'static str {
        match self {
            CompactionMode::Universal => "universal",
            CompactionMode::DtdAware => "dtd-aware",
        }
    }

    fn accepts(self, proof: Proof) -> bool {
        match self {
            CompactionMode::Universal => proof == Proof::Syntactic,
            CompactionMode::DtdAware => true,
        }
    }
}

/// Headline numbers for one compaction, suitable for routing statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactionStats {
    /// Patterns in the input workload.
    pub input: usize,
    /// Patterns kept in the compacted table.
    pub kept: usize,
    /// Patterns dropped because a kept subscription covers them.
    pub dropped_redundant: usize,
    /// Patterns dropped as DTD-unsatisfiable (DTD-aware mode only).
    pub dropped_unsatisfiable: usize,
}

impl CompactionStats {
    /// Fraction of the workload kept (1.0 for an incompressible workload).
    pub fn keep_ratio(&self) -> f64 {
        if self.input == 0 {
            1.0
        } else {
            self.kept as f64 / self.input as f64
        }
    }
}

/// Keep/drop decisions for one analysed workload.
#[derive(Debug, Clone)]
pub struct CompactionPlan {
    covered: Vec<Option<CoverageLink>>,
    unsatisfiable: Vec<usize>,
}

impl CompactionPlan {
    /// Build a plan from the coverage vector (one slot per workload
    /// pattern) and the sorted indices of proven-unsatisfiable patterns.
    pub fn new(covered: Vec<Option<CoverageLink>>, unsatisfiable: Vec<usize>) -> Self {
        Self {
            covered,
            unsatisfiable,
        }
    }

    /// Number of patterns the plan covers.
    pub fn len(&self) -> usize {
        self.covered.len()
    }

    /// Whether the plan is over an empty workload.
    pub fn is_empty(&self) -> bool {
        self.covered.is_empty()
    }

    /// The coverage link of pattern `i`, if any.
    pub fn coverage(&self, i: usize) -> Option<&CoverageLink> {
        self.covered.get(i).and_then(|c| c.as_ref())
    }

    /// Sorted indices of proven-unsatisfiable patterns.
    pub fn unsatisfiable(&self) -> &[usize] {
        &self.unsatisfiable
    }

    /// Whether pattern `i` survives compaction under `mode`.
    pub fn keeps(&self, i: usize, mode: CompactionMode) -> bool {
        if mode == CompactionMode::DtdAware && self.unsatisfiable.binary_search(&i).is_ok() {
            return false;
        }
        match self.coverage(i) {
            None => true,
            Some(link) => !mode.accepts(link.proof),
        }
    }

    /// Indices kept under `mode`, in workload order.
    pub fn kept(&self, mode: CompactionMode) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.keeps(i, mode)).collect()
    }

    /// The kept subscription that handles pattern `i`'s traffic under
    /// `mode`: `Some(i)` when `i` itself is kept, the root of its coverage
    /// chain when it was dropped as redundant, `None` when it was dropped
    /// as unsatisfiable (its traffic is empty on conforming streams).
    pub fn route_to(&self, i: usize, mode: CompactionMode) -> Option<usize> {
        if self.keeps(i, mode) {
            return Some(i);
        }
        match self.coverage(i) {
            // Dropped without a coverer: proven unsatisfiable.
            None => None,
            Some(link) => self.route_to(link.coverer, mode),
        }
    }

    /// Headline numbers under `mode`.
    pub fn stats(&self, mode: CompactionMode) -> CompactionStats {
        let mut stats = CompactionStats {
            input: self.len(),
            ..CompactionStats::default()
        };
        for i in 0..self.len() {
            if self.keeps(i, mode) {
                stats.kept += 1;
            } else if self.coverage(i).is_some() {
                stats.dropped_redundant += 1;
            } else {
                stats.dropped_unsatisfiable += 1;
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(coverer: usize, proof: Proof) -> Option<CoverageLink> {
        Some(CoverageLink { coverer, proof })
    }

    #[test]
    fn universal_mode_keeps_dtd_proven_redundancy() {
        // 0 kept; 1 syntactically covered by 0; 2 DTD-covered by 0;
        // 3 unsatisfiable.
        let plan = CompactionPlan::new(
            vec![None, link(0, Proof::Syntactic), link(0, Proof::Dtd), None],
            vec![3],
        );
        assert_eq!(plan.kept(CompactionMode::Universal), vec![0, 2, 3]);
        assert_eq!(plan.kept(CompactionMode::DtdAware), vec![0]);

        let universal = plan.stats(CompactionMode::Universal);
        assert_eq!(
            (
                universal.kept,
                universal.dropped_redundant,
                universal.dropped_unsatisfiable
            ),
            (3, 1, 0)
        );
        let dtd = plan.stats(CompactionMode::DtdAware);
        assert_eq!(
            (dtd.kept, dtd.dropped_redundant, dtd.dropped_unsatisfiable),
            (1, 2, 1)
        );
        assert!((dtd.keep_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn route_to_follows_chains_to_a_kept_root() {
        // Chain 2 -> 1 -> 0, mixed proofs.
        let plan = CompactionPlan::new(
            vec![None, link(0, Proof::Dtd), link(1, Proof::Syntactic)],
            Vec::new(),
        );
        // Universal: 1 is kept (its own link is DTD-only), so 2 routes to 1.
        assert_eq!(plan.route_to(2, CompactionMode::Universal), Some(1));
        // DTD-aware: both links are usable; everything routes to 0.
        assert_eq!(plan.route_to(2, CompactionMode::DtdAware), Some(0));
        assert_eq!(plan.route_to(0, CompactionMode::DtdAware), Some(0));
    }

    #[test]
    fn unsatisfiable_patterns_route_nowhere_in_dtd_mode() {
        let plan = CompactionPlan::new(vec![None, None], vec![1]);
        assert_eq!(plan.route_to(1, CompactionMode::Universal), Some(1));
        assert_eq!(plan.route_to(1, CompactionMode::DtdAware), None);
        assert_eq!(
            plan.stats(CompactionMode::DtdAware).dropped_unsatisfiable,
            1
        );
    }
}
