//! Corpus replay: drive a line-delimited document corpus through the
//! zero-copy streaming scanner and surface ingest-limit violations as
//! typed [`Diagnostic`]s.
//!
//! The streaming ingest path (`tps_xml::scan`) enforces explicit limits on
//! element nesting depth and per-element attribute counts so that a hostile
//! or corrupt publication cannot blow the stack or the synopsis. A document
//! that trips a limit is rejected *at ingest time* — long after the
//! subscription workload was deployed. `lint_corpus` lets operators replay
//! a captured corpus ahead of time: every document that the scanner would
//! reject for a limit violation becomes a `W005` ([`LintCode::ScannerLimit`])
//! diagnostic carrying the document's line number and the offending byte
//! offset, while plainly malformed documents are tallied separately (they
//! fail both the scanner and the tree parser, so they are corpus noise, not
//! a limit-tuning signal).

use tps_xml::error::XmlErrorKind;
use tps_xml::{scan_document, NullSink, ScanLimits};

use crate::diagnostics::{Diagnostic, LintCode, Span};

/// Outcome of replaying one corpus through the scanner.
#[derive(Debug, Clone)]
pub struct CorpusReport {
    /// Number of documents replayed (non-empty, non-comment lines).
    pub documents: usize,
    /// One `W005` diagnostic per document that exceeded a scanner limit.
    pub diagnostics: Vec<Diagnostic>,
    /// Documents the scanner rejected for reasons other than a limit
    /// (malformed markup, invalid UTF-8, ...). These fail the tree parser
    /// too, so they carry no limit-tuning signal.
    pub malformed: usize,
}

impl CorpusReport {
    /// Whether the replay produced no diagnostics.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Replay a line-delimited XML corpus through the streaming scanner under
/// `limits`, reporting every limit violation as a [`LintCode::ScannerLimit`]
/// diagnostic.
///
/// Corpus format matches `LineStream` and `--patterns-file`: one document
/// per line, blank lines and `#` comment lines skipped. The replay never
/// builds trees or touches a synopsis — each document runs through
/// [`scan_document`] into a [`NullSink`], so a multi-gigabyte corpus
/// replays at scanner speed.
pub fn lint_corpus(corpus: &[u8], limits: &ScanLimits) -> CorpusReport {
    let mut report = CorpusReport {
        documents: 0,
        diagnostics: Vec::new(),
        malformed: 0,
    };
    for (number, line) in corpus.split(|&b| b == b'\n').enumerate() {
        let line = trim_ascii(line);
        if line.is_empty() || line.starts_with(b"#") {
            continue;
        }
        report.documents += 1;
        let index = report.documents - 1;
        match scan_document(line, limits, &mut NullSink) {
            Ok(()) => {}
            Err(err) => match err.kind() {
                XmlErrorKind::LimitExceeded { what, limit } => {
                    report
                        .diagnostics
                        .push(limit_diagnostic(line, number, index, &err, what, *limit));
                }
                _ => report.malformed += 1,
            },
        }
    }
    report
}

/// Build the `W005` diagnostic for one rejected document.
fn limit_diagnostic(
    line: &[u8],
    line_number: usize,
    document_index: usize,
    err: &tps_xml::XmlError,
    what: &str,
    limit: usize,
) -> Diagnostic {
    let offset = err.offset().min(line.len());
    Diagnostic {
        code: LintCode::ScannerLimit,
        pattern_index: document_index,
        source: String::from_utf8_lossy(line).into_owned(),
        span: Span {
            start: offset,
            end: line.len(),
        },
        origin: format!("corpus line {}", line_number + 1),
        message: format!("document exceeds the scanner's {what} limit ({limit})"),
        explanation: format!(
            "The streaming ingest path rejects this document at byte {offset}: \
             its {what} exceeds the configured limit of {limit}. It will never \
             enter the synopsis, so selectivity estimates silently exclude it. \
             Raise the corresponding `ScanLimits` field if the document is \
             legitimate, or drop it from the corpus if it is hostile."
        ),
        related: Vec::new(),
        proof: None,
    }
}

/// `[u8]::trim_ascii` is stable only from Rust 1.80; the workspace MSRV
/// is older, so trim manually.
fn trim_ascii(mut bytes: &[u8]) -> &[u8] {
    while let Some((first, rest)) = bytes.split_first() {
        if first.is_ascii_whitespace() {
            bytes = rest;
        } else {
            break;
        }
    }
    while let Some((last, rest)) = bytes.split_last() {
        if last.is_ascii_whitespace() {
            bytes = rest;
        } else {
            break;
        }
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deep_doc(depth: usize) -> String {
        let mut doc = String::new();
        for _ in 0..depth {
            doc.push_str("<a>");
        }
        for _ in 0..depth {
            doc.push_str("</a>");
        }
        doc
    }

    #[test]
    fn limit_violations_become_w005_diagnostics() {
        let limits = ScanLimits {
            max_depth: 4,
            ..ScanLimits::default()
        };
        let corpus = format!("# header\n<a><b/></a>\n\n{}\n<c/>\n", deep_doc(5));
        let report = lint_corpus(corpus.as_bytes(), &limits);
        assert_eq!(report.documents, 3);
        assert_eq!(report.malformed, 0);
        assert_eq!(report.diagnostics.len(), 1);
        let diag = &report.diagnostics[0];
        assert_eq!(diag.code, LintCode::ScannerLimit);
        assert_eq!(diag.code.as_str(), "W005");
        assert_eq!(diag.pattern_index, 1, "second replayed document");
        assert_eq!(diag.origin, "corpus line 4");
        assert!(
            diag.message.contains("element nesting depth"),
            "{}",
            diag.message
        );
        assert!(diag.span.start <= diag.span.end);
        assert!(!report.is_clean());
    }

    #[test]
    fn attribute_floods_are_reported_with_the_configured_limit() {
        let limits = ScanLimits {
            max_attributes: 2,
            ..ScanLimits::default()
        };
        let report = lint_corpus(b"<a p=\"1\" q=\"2\" r=\"3\"/>\n", &limits);
        assert_eq!(report.diagnostics.len(), 1);
        assert!(report.diagnostics[0].message.contains("(2)"));
    }

    #[test]
    fn malformed_documents_are_tallied_but_not_diagnosed() {
        let report = lint_corpus(b"<a//\nnot xml\n<ok/>\n", &ScanLimits::default());
        assert_eq!(report.documents, 3);
        assert_eq!(report.malformed, 2);
        assert!(report.is_clean());
    }

    #[test]
    fn a_clean_corpus_under_default_limits_is_clean() {
        let corpus = b"<media><CD><title>X</title></CD></media>\n<a/>\n";
        let report = lint_corpus(corpus, &ScanLimits::default());
        assert_eq!(report.documents, 2);
        assert!(report.is_clean());
        assert_eq!(report.malformed, 0);
    }
}
