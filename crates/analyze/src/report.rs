//! Renderers for [`AnalysisReport`]: a human-readable text form and a
//! machine-readable JSON-lines form.
//!
//! Both are hand-rolled (the workspace is registry-free) in the style of
//! the bench tooling: the JSON writer emits one object per line — one per
//! diagnostic plus a trailing `summary` object — so downstream tools can
//! stream-parse without a JSON library.

use std::fmt::Write as _;

use crate::analyzer::AnalysisReport;
use crate::compact::CompactionMode;
use crate::diagnostics::{Diagnostic, LintCode};

/// Render the report as rustc-style text diagnostics plus a summary block.
pub fn render_text(report: &AnalysisReport) -> String {
    let mut out = String::new();
    for diag in &report.diagnostics {
        render_text_diagnostic(&mut out, diag);
    }
    let _ = writeln!(
        out,
        "analysis: {} pattern{}, {} error{}, {} warning{} ({})",
        report.pattern_count,
        plural(report.pattern_count),
        report.error_count(),
        plural(report.error_count()),
        report.warning_count(),
        plural(report.warning_count()),
        code_counts(report),
    );
    let universal = report.plan.stats(CompactionMode::Universal);
    let dtd = report.plan.stats(CompactionMode::DtdAware);
    let _ = writeln!(
        out,
        "compaction: keep {}/{} universal, {}/{} dtd-aware",
        universal.kept, universal.input, dtd.kept, dtd.input,
    );
    out
}

fn render_text_diagnostic(out: &mut String, diag: &Diagnostic) {
    let _ = writeln!(out, "{}[{}]: {}", diag.severity(), diag.code, diag.message);
    if !diag.origin.is_empty() {
        let _ = writeln!(out, "  --> {}", diag.origin);
    }
    let _ = writeln!(out, "   | {}", diag.source);
    let start = diag.span.start.min(diag.source.len());
    let width = diag
        .span
        .len()
        .clamp(1, diag.source.len().saturating_sub(start).max(1));
    let _ = writeln!(out, "   | {}{}", " ".repeat(start), "^".repeat(width));
    let _ = writeln!(out, "   = note: {}", diag.explanation);
    if !diag.related.is_empty() {
        let labels: Vec<String> = diag.related.iter().map(|i| format!("#{i}")).collect();
        let _ = writeln!(out, "   = related: {}", labels.join(", "));
    }
    out.push('\n');
}

/// Render the report as JSON lines: one `diagnostic` object per finding,
/// then one `summary` object.
pub fn render_json_lines(report: &AnalysisReport) -> String {
    let mut out = String::new();
    for diag in &report.diagnostics {
        render_json_diagnostic(&mut out, diag);
    }
    let _ = write!(
        out,
        "{{\"type\":\"summary\",\"patterns\":{},\"errors\":{},\"warnings\":{}",
        report.pattern_count,
        report.error_count(),
        report.warning_count(),
    );
    let _ = write!(out, ",\"counts\":{{");
    for (k, code) in LintCode::all().into_iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", code, report.count(code));
    }
    out.push('}');
    match &report.schema_name {
        Some(name) => {
            let _ = write!(out, ",\"schema\":\"{}\"", json_escape(name));
        }
        None => out.push_str(",\"schema\":null"),
    }
    let _ = write!(out, ",\"compaction\":{{");
    for (k, (label, mode)) in [
        ("universal", CompactionMode::Universal),
        ("dtd_aware", CompactionMode::DtdAware),
    ]
    .into_iter()
    .enumerate()
    {
        if k > 0 {
            out.push(',');
        }
        let stats = report.plan.stats(mode);
        let _ = write!(
            out,
            "\"{}\":{{\"input\":{},\"kept\":{},\"dropped_redundant\":{},\"dropped_unsatisfiable\":{}}}",
            label, stats.input, stats.kept, stats.dropped_redundant, stats.dropped_unsatisfiable,
        );
    }
    out.push_str("}}\n");
    out
}

fn render_json_diagnostic(out: &mut String, diag: &Diagnostic) {
    let _ = write!(
        out,
        "{{\"type\":\"diagnostic\",\"code\":\"{}\",\"severity\":\"{}\",\"pattern\":{}",
        diag.code,
        diag.severity(),
        diag.pattern_index,
    );
    let _ = write!(out, ",\"source\":\"{}\"", json_escape(&diag.source));
    let _ = write!(out, ",\"origin\":\"{}\"", json_escape(&diag.origin));
    let _ = write!(out, ",\"span\":[{},{}]", diag.span.start, diag.span.end);
    let _ = write!(out, ",\"message\":\"{}\"", json_escape(&diag.message));
    let _ = write!(
        out,
        ",\"explanation\":\"{}\"",
        json_escape(&diag.explanation)
    );
    let _ = write!(out, ",\"related\":[");
    for (k, r) in diag.related.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        let _ = write!(out, "{r}");
    }
    out.push(']');
    match diag.proof {
        Some(proof) => {
            let _ = write!(out, ",\"proof\":\"{}\"", proof.as_str());
        }
        None => out.push_str(",\"proof\":null"),
    }
    out.push_str("}\n");
}

fn code_counts(report: &AnalysisReport) -> String {
    LintCode::all()
        .into_iter()
        .map(|code| format!("{}:{}", code, report.count(code)))
        .collect::<Vec<_>>()
        .join(" ")
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::{WorkloadAnalyzer, WorkloadEntry};
    use tps_dtd::samples::media_schema;

    fn report() -> AnalysisReport {
        let schema = media_schema();
        let entries = vec![
            WorkloadEntry::with_origin("/media/CD/*/last/Mozart", "w.patterns:1").unwrap(),
            WorkloadEntry::with_origin("//composer/last/Mozart", "w.patterns:2").unwrap(),
            WorkloadEntry::with_origin("//CD/Mozart", "w.patterns:3").unwrap(),
        ];
        WorkloadAnalyzer::new(Some(&schema)).analyze(&entries)
    }

    #[test]
    fn text_rendering_shows_codes_origins_and_summary() {
        let text = render_text(&report());
        assert!(text.contains("error[E001]"), "{text}");
        assert!(text.contains("warning[W003]"), "{text}");
        assert!(text.contains("--> w.patterns:3"), "{text}");
        assert!(text.contains("^^^"), "{text}");
        assert!(
            text.contains("analysis: 3 patterns, 1 error, 1 warning "),
            "{text}"
        );
        assert!(text.contains("compaction: keep"), "{text}");
    }

    #[test]
    fn json_lines_are_one_object_per_line_with_a_summary_tail() {
        let json = render_json_lines(&report());
        let lines: Vec<&str> = json.lines().collect();
        assert!(lines.len() >= 2);
        assert!(lines
            .iter()
            .take(lines.len() - 1)
            .all(|l| l.starts_with("{\"type\":\"diagnostic\"")));
        let last = lines.last().unwrap();
        assert!(last.starts_with("{\"type\":\"summary\""), "{last}");
        assert!(last.contains("\"schema\":\"media\""), "{last}");
        assert!(last.contains("\"E001\":1"), "{last}");
        assert!(last.contains("\"dtd_aware\""), "{last}");
        for line in &lines {
            assert!(line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn json_escaping_handles_quotes_and_control_bytes() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny\u{1}"), "x\\ny\\u0001");
    }
}
