//! The diagnostic model: stable lint codes, severities, source spans.
//!
//! Every diagnostic the analyzer emits carries a [`LintCode`] with a stable
//! wire name (`E001`, `W002`, ...) so downstream tooling — CI gates, the
//! JSON-lines renderer, editor integrations — can match on codes instead of
//! message text.

use std::fmt;

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: the subscription works but costs more than it should, or
    /// is redundant with another one.
    Warning,
    /// The subscription is broken: it can never match a conforming document.
    Error,
}

impl Severity {
    /// Stable lowercase name (`"warning"` / `"error"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable lint codes of the static subscription analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// `E001`: the pattern matches no document conforming to the DTD.
    Unsatisfiable,
    /// `W002`: the pattern's match set is included in another registered
    /// subscription's — it is redundant for routing.
    ContainedRedundant,
    /// `W003`: the pattern belongs to a group of subscriptions that are
    /// pairwise equivalent with respect to the DTD (the paper's
    /// Example 1.1), even when no syntactic containment holds.
    DtdEquivalentDuplicate,
    /// `W004`: a cost hazard — the analysis was truncated by an expansion
    /// cap (soundness caveat), the pattern is saturated with `//`/`*`
    /// steps, or it sits at the analyzer's descendant-depth limit.
    CostHazard,
    /// `W005`: a document in a replayed corpus exceeded one of the
    /// streaming scanner's ingest limits (element nesting depth, attribute
    /// count, ...) and would be rejected by the zero-copy ingest path.
    ScannerLimit,
}

impl LintCode {
    /// All codes, in code order.
    pub fn all() -> [LintCode; 5] {
        [
            LintCode::Unsatisfiable,
            LintCode::ContainedRedundant,
            LintCode::DtdEquivalentDuplicate,
            LintCode::CostHazard,
            LintCode::ScannerLimit,
        ]
    }

    /// Stable wire name (`"E001"`, `"W002"`, `"W003"`, `"W004"`, `"W005"`).
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::Unsatisfiable => "E001",
            LintCode::ContainedRedundant => "W002",
            LintCode::DtdEquivalentDuplicate => "W003",
            LintCode::CostHazard => "W004",
            LintCode::ScannerLimit => "W005",
        }
    }

    /// Look a code up by its wire name.
    pub fn from_name(name: &str) -> Option<LintCode> {
        LintCode::all().into_iter().find(|c| c.as_str() == name)
    }

    /// The severity class encoded in the code's prefix.
    pub fn severity(self) -> Severity {
        match self {
            LintCode::Unsatisfiable => Severity::Error,
            LintCode::ContainedRedundant
            | LintCode::DtdEquivalentDuplicate
            | LintCode::CostHazard
            | LintCode::ScannerLimit => Severity::Warning,
        }
    }

    /// Short human label used by the text renderer.
    pub fn label(self) -> &'static str {
        match self {
            LintCode::Unsatisfiable => "unsatisfiable under the DTD",
            LintCode::ContainedRedundant => "contained in another subscription",
            LintCode::DtdEquivalentDuplicate => "DTD-equivalent duplicate",
            LintCode::CostHazard => "cost hazard",
            LintCode::ScannerLimit => "exceeds a scanner ingest limit",
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A half-open byte range into a pattern's source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First byte of the span.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Span {
    /// The whole of `source`.
    pub fn whole(source: &str) -> Span {
        Span {
            start: 0,
            end: source.len(),
        }
    }

    /// Span length in bytes.
    pub fn len(self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the span is empty.
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }
}

/// How a redundancy/duplicate claim was proven.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Proof {
    /// Syntactic homomorphism — holds for *every* document.
    Syntactic,
    /// DTD expansion-set reasoning — holds for documents conforming to the
    /// analysed DTD.
    Dtd,
}

impl Proof {
    /// Stable lowercase name (`"syntactic"` / `"dtd"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Proof::Syntactic => "syntactic",
            Proof::Dtd => "dtd",
        }
    }
}

/// One finding about one pattern of the analysed workload.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The stable code.
    pub code: LintCode,
    /// Index of the pattern in the analysed workload.
    pub pattern_index: usize,
    /// The pattern's source text.
    pub source: String,
    /// Byte span of the offending part of `source` (the whole pattern for
    /// whole-pattern findings).
    pub span: Span,
    /// Optional provenance label supplied by the caller (e.g.
    /// `workload.patterns:12`); empty when unknown.
    pub origin: String,
    /// One-line description.
    pub message: String,
    /// Longer explanation of why this fires and what to do about it.
    pub explanation: String,
    /// Workload indices of related patterns (the covering subscription for
    /// `W002`, the other group members for `W003`).
    pub related: Vec<usize>,
    /// Proof obligation behind `W002`/`W003` findings; `None` for the
    /// per-pattern codes.
    pub proof: Option<Proof>,
}

impl Diagnostic {
    /// The diagnostic's severity (derived from its code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_and_have_stable_severities() {
        for code in LintCode::all() {
            assert_eq!(LintCode::from_name(code.as_str()), Some(code));
        }
        assert_eq!(LintCode::from_name("E999"), None);
        assert_eq!(LintCode::Unsatisfiable.severity(), Severity::Error);
        assert_eq!(LintCode::CostHazard.severity(), Severity::Warning);
        assert_eq!(LintCode::Unsatisfiable.as_str(), "E001");
        assert_eq!(LintCode::ContainedRedundant.as_str(), "W002");
        assert_eq!(LintCode::DtdEquivalentDuplicate.as_str(), "W003");
        assert_eq!(LintCode::CostHazard.as_str(), "W004");
        assert_eq!(LintCode::ScannerLimit.as_str(), "W005");
        assert_eq!(LintCode::ScannerLimit.severity(), Severity::Warning);
    }

    #[test]
    fn spans_measure_bytes() {
        let span = Span::whole("/a/b");
        assert_eq!((span.start, span.end, span.len()), (0, 4, 4));
        assert!(!span.is_empty());
        assert!(Span { start: 2, end: 2 }.is_empty());
    }
}
