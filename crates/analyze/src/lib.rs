//! Static analysis of tree-pattern subscription workloads.
//!
//! The paper's routing architecture wins when the broker exploits
//! relationships *between* subscriptions — Example 1.1's four patterns
//! collapse to two once DTD knowledge is applied. This crate makes those
//! relationships visible ahead of time: [`WorkloadAnalyzer`] runs a
//! multi-pass static analysis over a subscription workload and emits
//! structured lint [`Diagnostic`]s with stable codes,
//!
//! * `E001` — the pattern is provably unsatisfiable under the DTD,
//! * `W002` — the pattern is contained in (covered by) another
//!   subscription, syntactically or under the DTD,
//! * `W003` — the pattern belongs to a group of DTD-equivalent duplicates
//!   (Example 1.1), and
//! * `W004` — cost hazards: truncated DTD analysis, `//`/`*` saturation,
//!   patterns at the descendant-depth bound,
//! * `W005` — a replayed corpus document exceeds a streaming-scanner
//!   ingest limit ([`lint_corpus`]) and would be rejected by the
//!   zero-copy ingest path,
//!
//! plus a [`CompactionPlan`] that turns the findings into keep/drop
//! decisions for routing-table construction, at two soundness levels
//! ([`CompactionMode::Universal`] vs [`CompactionMode::DtdAware`]).
//!
//! All verdicts are three-valued at the base ([`tps_dtd::Trivalent`]):
//! expansion caps degrade answers to *unknown*, never to a false `E001` or
//! a false equivalence.
//!
//! [`render_text`] and [`render_json_lines`] serialize reports for humans
//! and for tooling; [`dtd_refinement_oracle`] packages the DTD reasoning
//! as a [`SharedContainmentOracle`] so `SimilarityEngine`'s
//! analyze-on-register mode and the routing compactor can consume it.
//!
//! # Example
//!
//! ```
//! use tps_analyze::{LintCode, WorkloadAnalyzer, WorkloadEntry};
//! use tps_dtd::samples::media_schema;
//!
//! let schema = media_schema();
//! let workload = vec![
//!     WorkloadEntry::parse("/media/CD/*/last/Mozart").unwrap(),
//!     WorkloadEntry::parse("//composer/last/Mozart").unwrap(),
//! ];
//! let report = WorkloadAnalyzer::new(Some(&schema)).analyze(&workload);
//! // The paper's Example 1.1: the two patterns are DTD-equivalent.
//! assert_eq!(report.count(LintCode::DtdEquivalentDuplicate), 1);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyzer;
pub mod compact;
pub mod corpus;
pub mod diagnostics;
pub mod report;

pub use analyzer::{
    AnalysisReport, AnalyzerOptions, PatternVerdict, WorkloadAnalyzer, WorkloadEntry,
};
pub use compact::{CompactionMode, CompactionPlan, CompactionStats, CoverageLink};
pub use corpus::{lint_corpus, CorpusReport};
pub use diagnostics::{Diagnostic, LintCode, Proof, Severity, Span};
pub use report::{render_json_lines, render_text};

use std::sync::Arc;

use tps_core::SharedContainmentOracle;
use tps_dtd::{AnalysisConfig, DtdSchema, PatternAnalyzer, Trivalent};

/// Package DTD expansion reasoning as a shared containment oracle.
///
/// The returned closure answers `oracle(p, q)` — "does `p` contain `q`?" —
/// with `Some(true)` exactly when the DTD proves that every conforming
/// expansion of `q` is also one of `p` ([`PatternAnalyzer::dtd_refinement`]
/// returns [`Trivalent::Yes`]), and `None` otherwise: a `No`/`Unknown`
/// refinement verdict does not disprove containment, so the oracle stays
/// silent and the syntactic test keeps the final word.
///
/// Suitable for [`tps_core::SimilarityEngine`]'s `redundancy_oracle` and
/// for DTD-aware routing-table compaction. The oracle owns its schema.
pub fn dtd_refinement_oracle(schema: DtdSchema, config: AnalysisConfig) -> SharedContainmentOracle {
    Arc::new(move |p, q| {
        let analyzer = PatternAnalyzer::with_config(&schema, config);
        match analyzer.dtd_refinement(q, p) {
            Trivalent::Yes => Some(true),
            Trivalent::No | Trivalent::Unknown => None,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_dtd::samples::media_schema;
    use tps_pattern::{containment, TreePattern};

    #[test]
    fn dtd_refinement_oracle_proves_example_1_1_for_the_engine() {
        let oracle = dtd_refinement_oracle(media_schema(), AnalysisConfig::default());
        let pa = TreePattern::parse("/media/CD/*/last/Mozart").unwrap();
        let pd = TreePattern::parse("//composer/last/Mozart").unwrap();
        assert!(!containment::contains(&pa, &pd));
        assert!(containment::contains_with(&pa, &pd, &|p, q| oracle(p, q)));
        assert!(containment::equivalent_with(&pa, &pd, &|p, q| oracle(p, q)));
        // An unrelated pair stays unproven.
        let other = TreePattern::parse("/media/book").unwrap();
        assert!(!containment::contains_with(&pa, &other, &|p, q| oracle(
            p, q
        )));
    }

    #[test]
    fn oracle_never_answers_false() {
        let oracle = dtd_refinement_oracle(media_schema(), AnalysisConfig::default());
        let p = TreePattern::parse("/media/book/title").unwrap();
        let q = TreePattern::parse("/media/CD/title").unwrap();
        // Refinement fails here, but the oracle must abstain rather than
        // claim a disproof.
        assert_eq!(oracle(&p, &q), None);
    }
}
