//! The discrete-event simulation driver.

use tps_core::LshConfig;
use tps_routing::{BrokerId, BrokerTopology, CommunityConfig, ForwardingMode, TableMode};
use tps_synopsis::SynopsisConfig;
use tps_workload::{ChurnScenario, ScenarioAction};
use tps_xml::XmlTree;

use crate::event::{DocHandle, EventKind, EventQueue};
use crate::network::SimNetwork;
use crate::report::{SimReport, WindowStats};

/// When the simulator refreshes routing tables and semantic communities in
/// response to churn and traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReclusterPolicy {
    /// Rebuild immediately after every subscribe / unsubscribe (maximal
    /// maintenance cost, zero staleness).
    Eager,
    /// Rebuild on a fixed virtual-time period, if anything went stale since
    /// the last rebuild.
    Periodic(u64),
    /// Rebuild once the given number of churn events accumulated since the
    /// last rebuild.
    OnChurn(usize),
    /// Never rebuild after the initial construction (maximal staleness,
    /// zero maintenance cost — the baseline that quantifies what staleness
    /// costs).
    Never,
}

tps_routing::impl_variant_name!(ReclusterPolicy {
    ReclusterPolicy::Eager => "eager",
    ReclusterPolicy::Periodic(_) => "periodic",
    ReclusterPolicy::OnChurn(_) => "on-churn",
    ReclusterPolicy::Never => "never",
});

impl ReclusterPolicy {
    /// `name()` plus the policy parameter (`periodic:100`, `churn:5`) —
    /// the form [`ReclusterPolicy::parse`] accepts back.
    pub fn label(&self) -> String {
        match self {
            ReclusterPolicy::Periodic(interval) => format!("periodic:{interval}"),
            ReclusterPolicy::OnChurn(count) => format!("churn:{count}"),
            _ => self.name().to_string(),
        }
    }

    /// Parse a policy label: `eager`, `never`, `periodic:N` or `churn:N`.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text.split_once(':') {
            None => match text {
                "eager" => Ok(ReclusterPolicy::Eager),
                "never" => Ok(ReclusterPolicy::Never),
                other => Err(format!(
                    "unknown recluster policy {other:?} (expected eager, never, periodic:N or churn:N)"
                )),
            },
            Some((kind, value)) => {
                let number: u64 = value
                    .parse()
                    .map_err(|_| format!("invalid {kind} parameter {value:?}"))?;
                match kind {
                    "periodic" => Ok(ReclusterPolicy::Periodic(number.max(1))),
                    "churn" => Ok(ReclusterPolicy::OnChurn(number.max(1) as usize)),
                    other => Err(format!(
                        "unknown recluster policy {other:?} (expected eager, never, periodic:N or churn:N)"
                    )),
                }
            }
        }
    }
}

/// Configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// How brokers forward documents between themselves.
    pub forwarding: ForwardingMode,
    /// When tables / communities are refreshed.
    pub recluster: ReclusterPolicy,
    /// Community-clustering parameters used at every rebuild.
    pub community: CommunityConfig,
    /// Matching-set representation of the traffic synopsis.
    pub synopsis: SynopsisConfig,
    /// The broker all documents are published at.
    pub producer: BrokerId,
    /// Virtual-time cost of one link traversal.
    pub link_latency: u64,
    /// Virtual-time a broker needs per document (hops queue while the
    /// broker is busy).
    pub service_time: u64,
    /// Report window length in virtual time.
    pub window: u64,
    /// Worker threads for the similarity matrix at rebuilds (1 =
    /// sequential; results are identical either way).
    pub threads: usize,
    /// Record a human-readable event trace in the report (used by the
    /// determinism tests; off by default — traces are large).
    pub record_trace: bool,
    /// Run the static-analysis compaction pre-pass at every table rebuild:
    /// each link's subscription set is containment-pruned before mode
    /// summarisation, so tables shrink while staying delivery-identical
    /// (syntactic proofs only — sound for any document stream).
    pub analyze: bool,
    /// Maintain semantic communities incrementally through the banded
    /// MinHash candidate index with this banding (None = re-cluster from
    /// scratch at every rebuild). Tables, deliveries and link counters are
    /// identical either way; community statistics may differ by the
    /// banding's recall. This is what makes the `eager` policy affordable
    /// under heavy churn.
    pub index: Option<LshConfig>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            forwarding: ForwardingMode::Table(TableMode::Exact),
            recluster: ReclusterPolicy::Eager,
            community: CommunityConfig::default(),
            synopsis: SynopsisConfig::hashes(256),
            producer: 0,
            link_latency: 1,
            service_time: 1,
            window: 100,
            threads: 1,
            record_trace: false,
            analyze: false,
            index: None,
        }
    }
}

/// One in-flight document: ground-truth interest and delivery state are
/// frozen at publication time (consumers arriving later are not owed the
/// document; consumers departing before it reaches them count as missed —
/// exactly the staleness cost a recluster policy trades against).
#[derive(Debug)]
struct DocState {
    document: XmlTree,
    interested: Vec<bool>,
    delivered: Vec<bool>,
    outstanding: usize,
}

/// A deterministic discrete-event simulation of a broker network under
/// subscription churn.
///
/// # Example
///
/// ```
/// use tps_routing::{BrokerTopology, LinkMetrics};
/// use tps_sim::{SimConfig, Simulation};
/// use tps_workload::{ChurnConfig, ChurnScenario, Dtd};
///
/// let dtd = Dtd::media();
/// let scenario = ChurnScenario::generate(
///     &dtd,
///     &ChurnConfig {
///         brokers: 5,
///         initial_subscribers: 4,
///         arrivals: 2,
///         departures: 2,
///         publications: 20,
///         ..ChurnConfig::default()
///     },
/// );
/// let sim = Simulation::new(BrokerTopology::balanced_tree(5, 2), SimConfig::default());
/// let report = sim.run(&scenario);
/// assert_eq!(report.aggregate.documents, 20);
/// assert!(report.aggregate.link_precision() <= 1.0);
/// ```
#[derive(Debug)]
pub struct Simulation {
    config: SimConfig,
    network: SimNetwork,
    queue: EventQueue,
    clock: u64,
    busy_until: Vec<u64>,
    /// Brokers currently failed: hops arriving at them are dropped (the
    /// frozen interest behind them turns into missed deliveries).
    down: Vec<bool>,
    docs: Vec<Option<DocState>>,
    churn_since_rebuild: usize,
    window: WindowStats,
    report: SimReport,
}

impl Simulation {
    /// Create a simulation over `topology`.
    ///
    /// # Panics
    ///
    /// Panics if `config.producer` is not a broker of the topology.
    pub fn new(topology: BrokerTopology, config: SimConfig) -> Self {
        assert!(
            config.producer < topology.broker_count(),
            "producer broker {} does not exist",
            config.producer
        );
        let brokers = topology.broker_count();
        let mut network = SimNetwork::new(
            topology,
            config.forwarding,
            config.community,
            config.synopsis,
        );
        network.set_analyze(config.analyze);
        network.set_index(config.index);
        let window_length = config.window.max(1);
        Self {
            config,
            network,
            queue: EventQueue::new(),
            clock: 0,
            busy_until: vec![0; brokers],
            down: vec![false; brokers],
            docs: Vec::new(),
            churn_since_rebuild: 0,
            window: WindowStats::default(),
            report: SimReport {
                window_length,
                ..SimReport::default()
            },
        }
    }

    /// Run the scenario to completion and return the report.
    pub fn run(mut self, scenario: &ChurnScenario) -> SimReport {
        // Install the initial subscriptions and build the initial tables /
        // communities before the clock starts.
        for (subscriber, (broker, pattern)) in scenario.initial.iter().enumerate() {
            self.network.subscribe(subscriber, *broker, pattern.clone());
        }
        self.rebuild("initial");
        self.report.aggregate.peak_consumers = self.network.active_count();

        // Schedule the scenario and (for the periodic policy) the recluster
        // ticks up to the scenario horizon.
        let horizon = scenario.events.last().map(|e| e.time).unwrap_or(0);
        for (index, event) in scenario.events.iter().enumerate() {
            self.queue.push(event.time, EventKind::Scenario(index));
        }
        if let ReclusterPolicy::Periodic(interval) = self.config.recluster {
            let mut tick = interval.max(1);
            while tick <= horizon {
                self.queue.push(tick, EventKind::ReclusterTick);
                tick += interval.max(1);
            }
        }

        while let Some(event) = self.queue.pop() {
            debug_assert!(event.at >= self.clock, "virtual time must not go backwards");
            self.clock = event.at;
            self.flush_windows();
            let depth = self.queue.pending_hops();
            self.window.max_queue_depth = self.window.max_queue_depth.max(depth);
            match event.kind {
                EventKind::Scenario(index) => self.process_scenario(&scenario.events[index].action),
                EventKind::Hop { doc, broker, from } => self.process_hop(doc, broker, from),
                EventKind::ReclusterTick => self.process_tick(),
            }
        }

        // Close the last window and fill the aggregates.
        self.window.active_consumers = self.network.active_count();
        self.report.windows.push(self.window);
        self.report.aggregate.horizon = self.clock;
        self.report.aggregate.brokers = self.network.topology().broker_count();
        self.report.aggregate.final_consumers = self.network.active_count();
        self.report.aggregate.communities = self.network.communities().len();
        self.report.aggregate.mean_subscription_selectivity = self.network.mean_selectivity();
        self.report
    }

    /// Close every window that ends at or before the current clock.
    fn flush_windows(&mut self) {
        let length = self.report.window_length;
        while self.clock >= self.window.start + length {
            self.window.active_consumers = self.network.active_count();
            let start = self.window.start;
            self.report.windows.push(self.window);
            self.window = WindowStats {
                start: start + length,
                ..WindowStats::default()
            };
        }
    }

    fn trace(&mut self, line: String) {
        if self.config.record_trace {
            self.report.trace.push(format!("t={} {line}", self.clock));
        }
    }

    fn process_scenario(&mut self, action: &ScenarioAction) {
        match action {
            ScenarioAction::Subscribe {
                subscriber,
                broker,
                pattern,
            } => {
                self.network
                    .subscribe(*subscriber, *broker, pattern.clone());
                self.report.aggregate.subscribes += 1;
                self.window.subscribes += 1;
                self.report.aggregate.peak_consumers = self
                    .report
                    .aggregate
                    .peak_consumers
                    .max(self.network.active_count());
                self.trace(format!("subscribe {subscriber}@{broker}"));
                self.after_churn();
            }
            ScenarioAction::Unsubscribe { subscriber } => {
                if self.network.unsubscribe(*subscriber) {
                    self.report.aggregate.unsubscribes += 1;
                    self.window.unsubscribes += 1;
                    self.trace(format!("unsubscribe {subscriber}"));
                    self.after_churn();
                }
            }
            ScenarioAction::Publish { document } => self.publish(document),
            // Failure and rejoin change where documents can *go*, never
            // the subscription view: a failed broker keeps its consumers
            // (they are owed documents and will be charged as missed), and
            // routing tables are left untouched — exactly the live
            // runtime's behaviour, where peers keep forwarding into the
            // void until the broker rejoins.
            ScenarioAction::Fail { broker } => {
                if !self.down[*broker] {
                    self.down[*broker] = true;
                    self.report.aggregate.failures += 1;
                    self.trace(format!("fail {broker}"));
                }
            }
            ScenarioAction::Recover { broker } => {
                if self.down[*broker] {
                    self.down[*broker] = false;
                    self.report.aggregate.recoveries += 1;
                    self.trace(format!("recover {broker}"));
                }
            }
        }
    }

    /// Apply the recluster policy after one churn event.
    fn after_churn(&mut self) {
        self.churn_since_rebuild += 1;
        match self.config.recluster {
            ReclusterPolicy::Eager => self.rebuild("eager"),
            ReclusterPolicy::OnChurn(limit) if self.churn_since_rebuild >= limit => {
                self.rebuild("on-churn")
            }
            _ => {}
        }
    }

    /// A periodic tick: rebuild only if something actually went stale.
    fn process_tick(&mut self) {
        let stale = self.network.tables_stale() || self.network.communities_stale();
        self.trace(format!("tick stale={stale}"));
        if stale {
            self.rebuild("periodic");
        }
    }

    fn rebuild(&mut self, reason: &str) {
        let outcome = self.network.rebuild(self.config.threads);
        self.churn_since_rebuild = 0;
        self.report.aggregate.table_rebuilds += 1;
        self.report.aggregate.rebuild_table_nodes += outcome.table_nodes;
        self.report.aggregate.rebuild_entries_pruned += outcome.compaction.pruned_entries();
        self.window.rebuilds += 1;
        self.trace(format!(
            "rebuild[{reason}] tables={} pruned={} communities={} selectivity={:.4}",
            outcome.table_nodes,
            outcome.compaction.pruned_entries(),
            outcome.communities,
            outcome.mean_selectivity
        ));
    }

    /// Publish a document: freeze the ground truth, feed the synopsis, and
    /// inject the first hop at the producer.
    fn publish(&mut self, document: &XmlTree) {
        let interested: Vec<bool> = self
            .network
            .consumers()
            .iter()
            .map(|c| c.active && c.pattern.matches(document))
            .collect();
        self.network.observe(document);
        let handle: DocHandle = self.docs.len();
        self.docs.push(Some(DocState {
            document: document.clone(),
            interested,
            delivered: vec![false; self.network.consumers().len()],
            outstanding: 1,
        }));
        self.report.aggregate.documents += 1;
        self.window.publishes += 1;
        self.trace(format!("publish doc{handle}"));
        self.queue.push(
            self.clock,
            EventKind::Hop {
                doc: handle,
                broker: self.config.producer,
                from: None,
            },
        );
    }

    /// A document arrives at a broker: queue behind the broker's service
    /// time, deliver locally, and forward per the (possibly stale) tables.
    fn process_hop(&mut self, doc: DocHandle, broker: BrokerId, from: Option<BrokerId>) {
        // A failed broker drops the document on the floor: the hop ends
        // here, and whatever interest lives behind this broker becomes
        // missed deliveries when the document finalises.
        if self.down[broker] {
            // invariant: hops are only scheduled for in-flight documents
            let state = self.docs[doc].as_mut().expect("hop for finalised document");
            state.outstanding -= 1;
            let outstanding = state.outstanding;
            self.report.aggregate.dropped_hops += 1;
            self.window.dropped_hops += 1;
            self.trace(format!("drop doc{doc} at {broker} (down)"));
            if outstanding == 0 {
                self.finalise(doc);
            }
            return;
        }
        // Broker-side queueing: if the broker is still serving an earlier
        // document, defer this hop to when it frees up (FIFO per broker —
        // the requeue keeps scheduling order).
        if self.clock < self.busy_until[broker] {
            let until = self.busy_until[broker];
            self.trace(format!("requeue doc{doc} at {broker} until {until}"));
            self.queue.push(until, EventKind::Hop { doc, broker, from });
            return;
        }
        self.busy_until[broker] = self.clock + self.config.service_time;

        // Local delivery: exact per-consumer filtering over the *current*
        // active set, against the interest frozen at publication.
        let local = self.network.active_consumers_at(broker);
        // invariant: hops are only scheduled for in-flight documents
        let state = self.docs[doc].as_mut().expect("hop for finalised document");
        let mut delivered_here = 0usize;
        for consumer in local {
            self.report.aggregate.match_operations += 1;
            self.window.match_operations += 1;
            if state.interested.get(consumer).copied().unwrap_or(false)
                && !state.delivered.get(consumer).copied().unwrap_or(true)
            {
                state.delivered[consumer] = true;
                self.report.aggregate.deliveries += 1;
                self.window.deliveries += 1;
                delivered_here += 1;
            }
        }

        // Forwarding decision per outgoing link, mirroring the static
        // network: flooding forwards everywhere (except back), tables are
        // consulted per link with first-hit cost accounting.
        let neighbours = self.network.topology().neighbours(broker).to_vec();
        let mut forwards: Vec<(usize, BrokerId)> = Vec::new();
        let mut table_cost = 0usize;
        for (link_index, &neighbour) in neighbours.iter().enumerate() {
            if Some(neighbour) == from {
                continue;
            }
            match self.network.forwarding() {
                ForwardingMode::Flooding => forwards.push((link_index, neighbour)),
                ForwardingMode::Table(_) => {
                    let (hit, cost) = self.network.tables()[broker]
                        .link(link_index)
                        .matches(&state.document);
                    table_cost += cost;
                    if hit {
                        forwards.push((link_index, neighbour));
                    }
                }
            }
        }
        self.report.aggregate.match_operations += table_cost;
        self.window.match_operations += table_cost;

        state.outstanding -= 1;
        state.outstanding += forwards.len();
        let outstanding = state.outstanding;

        for &(link_index, neighbour) in &forwards {
            self.report.aggregate.link_messages += 1;
            self.window.link_messages += 1;
            // A forward is spurious when no *active* consumer behind the
            // link wants the document (frozen interest, current
            // attachment — a stale table forwarding into a subtree whose
            // subscribers departed is exactly what this measures).
            // invariant: hops are only scheduled for in-flight documents
            let state = self.docs[doc].as_ref().expect("document is in flight");
            if !self
                .network
                .link_has_interest(broker, link_index, &state.interested)
            {
                self.report.aggregate.spurious_link_messages += 1;
                self.window.spurious_link_messages += 1;
            }
            self.queue.push(
                self.clock + self.config.link_latency,
                EventKind::Hop {
                    doc,
                    broker: neighbour,
                    from: Some(broker),
                },
            );
        }
        let forwarded: Vec<BrokerId> = forwards.iter().map(|&(_, n)| n).collect();
        self.trace(format!(
            "hop doc{doc} at {broker} from {from:?} delivered={delivered_here} forwards={forwarded:?}"
        ));
        if outstanding == 0 {
            self.finalise(doc);
        }
    }

    /// A document finished propagating: charge the misses and free it.
    fn finalise(&mut self, doc: DocHandle) {
        // invariant: finalise is scheduled exactly once per in-flight document
        let state = self.docs[doc].take().expect("document is in flight");
        let missed = state
            .interested
            .iter()
            .zip(&state.delivered)
            .filter(|(&interested, &delivered)| interested && !delivered)
            .count();
        self.report.aggregate.missed_deliveries += missed;
        self.window.missed_deliveries += missed;
        self.trace(format!("done doc{doc} missed={missed}"));
    }
}
