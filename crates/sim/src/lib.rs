//! Deterministic discrete-event simulation of a content-based broker
//! network under subscription churn.
//!
//! The static evaluations in `tps-routing` freeze a subscription set and a
//! corpus, then route the corpus in one batch. This crate answers the
//! paper's *operational* question instead: how does a similarity-driven
//! overlay behave while subscribers arrive and leave and publications
//! interleave over time — and how much does it cost to keep routing tables
//! and semantic communities fresh?
//!
//! * [`Simulation`] — a seeded event queue with virtual-clock semantics,
//!   per-link latency and per-broker service queueing over a
//!   [`tps_routing::BrokerTopology`]; ties are sequence-numbered, so runs
//!   are bit-identical per seed.
//! * [`SimNetwork`] — the evolving state: consumer churn, per-broker
//!   routing tables (built by the static `tps-routing` code, so a
//!   churn-free run is table-identical to a batch evaluation), a
//!   [`tps_core::SimilarityEngine`] folding every published document into
//!   its synopsis, and the semantic communities re-clustered from it.
//! * [`ReclusterPolicy`] — *when* to pay the rebuild cost: `eager`,
//!   `periodic:N`, `churn:N`, or `never`. Staleness is detected via the
//!   synopsis epoch and a churn counter; the `never` baseline quantifies
//!   what staleness costs in link precision and recall.
//! * [`SimReport`] — per-window time series (messages, deliveries, queue
//!   depths, rebuilds) plus end-of-run aggregates sharing the
//!   [`tps_routing::DeliveryMetrics`] derivations with the static stats.
//!
//! Scenarios come from [`tps_workload::ChurnScenario`] — seeded arrival /
//! departure processes with publications pulled through a document stream —
//! so a whole churn sweep is reproducible from a handful of integers.
//!
//! # Example
//!
//! ```
//! use tps_routing::BrokerTopology;
//! use tps_sim::{ReclusterPolicy, SimConfig, Simulation};
//! use tps_workload::{ChurnConfig, ChurnScenario, Dtd};
//!
//! let scenario = ChurnScenario::generate(
//!     &Dtd::media(),
//!     &ChurnConfig {
//!         brokers: 7,
//!         initial_subscribers: 6,
//!         arrivals: 3,
//!         departures: 3,
//!         publications: 30,
//!         ..ChurnConfig::default()
//!     },
//! );
//! let config = SimConfig {
//!     recluster: ReclusterPolicy::parse("periodic:200").unwrap(),
//!     ..SimConfig::default()
//! };
//! let report = Simulation::new(BrokerTopology::balanced_tree(7, 2), config).run(&scenario);
//! assert_eq!(report.aggregate.documents, 30);
//! assert!(report.aggregate.table_rebuilds >= 1);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod network;
pub mod report;
pub mod sim;

pub use event::{EventKind, EventQueue, QueuedEvent};
pub use network::{RebuildOutcome, SimConsumer, SimNetwork};
pub use report::{SimReport, SimStats, WindowStats};
pub use sim::{ReclusterPolicy, SimConfig, Simulation};
