//! Simulation reports: per-window time series plus end-of-run aggregates.

use std::fmt;

use tps_routing::stats::{DeliveryMetrics, LinkMetrics};

/// Counters accumulated over one report window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowStats {
    /// Virtual time the window starts at (windows are contiguous and
    /// half-open: `[start, start + window_length)`).
    pub start: u64,
    /// Documents published in the window.
    pub publishes: usize,
    /// Subscriber arrivals in the window.
    pub subscribes: usize,
    /// Subscriber departures in the window.
    pub unsubscribes: usize,
    /// Messages sent over overlay links.
    pub link_messages: usize,
    /// Link messages towards subtrees with no interested consumer.
    pub spurious_link_messages: usize,
    /// Pattern-match operations at brokers (table lookups + local
    /// filtering).
    pub match_operations: usize,
    /// Deliveries to consumers.
    pub deliveries: usize,
    /// Interested (consumer, document) pairs whose document completed
    /// propagation in this window without reaching them.
    pub missed_deliveries: usize,
    /// Routing-table / community rebuilds triggered in the window.
    pub rebuilds: usize,
    /// Document hops dropped at failed brokers in the window.
    pub dropped_hops: usize,
    /// Maximum in-flight hop backlog observed in the window (queueing
    /// pressure).
    pub max_queue_depth: usize,
    /// Active consumers at the end of the window.
    pub active_consumers: usize,
}

/// End-of-run aggregate counters. Field semantics mirror
/// [`tps_routing::NetworkStats`] so the dynamic run is directly comparable
/// to a static [`tps_routing::BrokerNetwork::route_stream`] evaluation; the
/// derived precision / recall / matches-per-document figures come from the
/// shared [`DeliveryMetrics`] trait.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    /// Documents published over the whole run.
    pub documents: usize,
    /// Brokers in the overlay.
    pub brokers: usize,
    /// Messages sent over overlay links.
    pub link_messages: usize,
    /// Link messages towards subtrees with no interested consumer.
    pub spurious_link_messages: usize,
    /// Pattern-match operations at brokers.
    pub match_operations: usize,
    /// Deliveries to consumers (local filtering is exact, so every delivery
    /// is useful).
    pub deliveries: usize,
    /// Interested (consumer, document) pairs never delivered.
    pub missed_deliveries: usize,
    /// Subscriber arrivals processed (mid-run churn only).
    pub subscribes: usize,
    /// Subscriber departures processed.
    pub unsubscribes: usize,
    /// Broker failures processed.
    pub failures: usize,
    /// Broker recoveries processed.
    pub recoveries: usize,
    /// Document hops dropped at failed brokers (each turns the interest
    /// behind the failed broker into missed deliveries).
    pub dropped_hops: usize,
    /// Routing-table / community rebuilds (including the initial build).
    pub table_rebuilds: usize,
    /// Total routing-table size built over the run, in pattern nodes — the
    /// cumulative maintenance cost a recluster policy pays.
    pub rebuild_table_nodes: usize,
    /// Cumulative table entries dropped by compaction across rebuilds
    /// (non-zero only with the analyze knob or a pruning table mode).
    pub rebuild_entries_pruned: usize,
    /// Active consumers when the run ended.
    pub final_consumers: usize,
    /// Highest number of simultaneously active consumers.
    pub peak_consumers: usize,
    /// Communities after the last rebuild.
    pub communities: usize,
    /// Mean engine-estimated selectivity of the active subscriptions at the
    /// last rebuild (batched [`tps_core::SimilarityEngine::selectivities`]
    /// over the traffic observed so far).
    pub mean_subscription_selectivity: f64,
    /// Virtual time of the last processed event.
    pub horizon: u64,
}

// Link precision drops as stale routing tables keep forwarding towards
// departed consumers; the derivations are shared with the static
// `NetworkStats`, so the two report kinds can never disagree on the rates.
impl LinkMetrics for SimStats {
    fn link_messages(&self) -> usize {
        self.link_messages
    }
    fn spurious_link_messages(&self) -> usize {
        self.spurious_link_messages
    }
}

impl DeliveryMetrics for SimStats {
    fn documents(&self) -> usize {
        self.documents
    }
    fn match_operations(&self) -> usize {
        self.match_operations
    }
    fn deliveries(&self) -> usize {
        self.deliveries
    }
    fn useful_deliveries(&self) -> usize {
        self.deliveries
    }
    fn missed_deliveries(&self) -> usize {
        self.missed_deliveries
    }
}

/// The result of one simulation run: a contiguous window series plus the
/// aggregates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimReport {
    /// Length of each window in virtual time.
    pub window_length: u64,
    /// Contiguous windows from time 0 to the end of the run.
    pub windows: Vec<WindowStats>,
    /// End-of-run aggregates.
    pub aggregate: SimStats,
    /// Human-readable event trace (only populated when
    /// [`crate::SimConfig::record_trace`] is set; used by the determinism
    /// tests).
    pub trace: Vec<String>,
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>8} {:>6} {:>6} {:>6} {:>8} {:>8} {:>8} {:>7} {:>7} {:>8} {:>6} {:>7}",
            "window",
            "pubs",
            "subs",
            "unsub",
            "linkmsg",
            "spurious",
            "matches",
            "deliv",
            "missed",
            "rebuilds",
            "queue",
            "active"
        )?;
        for w in &self.windows {
            writeln!(
                f,
                "{:>8} {:>6} {:>6} {:>6} {:>8} {:>8} {:>8} {:>7} {:>7} {:>8} {:>6} {:>7}",
                w.start,
                w.publishes,
                w.subscribes,
                w.unsubscribes,
                w.link_messages,
                w.spurious_link_messages,
                w.match_operations,
                w.deliveries,
                w.missed_deliveries,
                w.rebuilds,
                w.max_queue_depth,
                w.active_consumers
            )?;
        }
        let a = &self.aggregate;
        writeln!(f, "---")?;
        writeln!(
            f,
            "published {} documents over {} ticks ({} brokers, {} consumers at end, peak {})",
            a.documents, a.horizon, a.brokers, a.final_consumers, a.peak_consumers
        )?;
        writeln!(
            f,
            "churn: {} subscribes, {} unsubscribes; rebuilds: {} ({} table nodes built, {} entries pruned)",
            a.subscribes, a.unsubscribes, a.table_rebuilds, a.rebuild_table_nodes, a.rebuild_entries_pruned
        )?;
        if a.failures > 0 {
            writeln!(
                f,
                "failover: {} failures, {} recoveries, {} hops dropped at failed brokers",
                a.failures, a.recoveries, a.dropped_hops
            )?;
        }
        writeln!(
            f,
            "link messages/doc: {:.2}  link precision: {:.3}  recall: {:.3}  matches/doc: {:.1}",
            a.messages_per_document(),
            a.link_precision(),
            a.recall(),
            a.matches_per_document()
        )?;
        write!(
            f,
            "communities: {}  mean subscription selectivity: {:.4}",
            a.communities, a.mean_subscription_selectivity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_rates_reuse_the_shared_trait() {
        let stats = SimStats {
            documents: 10,
            link_messages: 40,
            spurious_link_messages: 10,
            match_operations: 50,
            deliveries: 30,
            missed_deliveries: 10,
            ..SimStats::default()
        };
        assert_eq!(stats.precision(), 1.0);
        assert_eq!(stats.recall(), 0.75);
        assert_eq!(stats.matches_per_document(), 5.0);
        assert_eq!(stats.link_precision(), 0.75);
        assert_eq!(stats.messages_per_document(), 4.0);
    }

    #[test]
    fn empty_run_is_well_defined() {
        let stats = SimStats::default();
        assert_eq!(stats.link_precision(), 1.0);
        assert_eq!(stats.recall(), 1.0);
        assert_eq!(stats.messages_per_document(), 0.0);
    }

    #[test]
    fn report_renders_windows_and_aggregates() {
        let report = SimReport {
            window_length: 100,
            windows: vec![WindowStats {
                start: 0,
                publishes: 3,
                ..WindowStats::default()
            }],
            aggregate: SimStats {
                documents: 3,
                horizon: 100,
                ..SimStats::default()
            },
            trace: Vec::new(),
        };
        let text = report.to_string();
        assert!(text.contains("window"), "{text}");
        assert!(text.contains("published 3 documents"), "{text}");
        assert!(text.contains("link precision"), "{text}");
    }
}
