//! The mutable network state a simulation run evolves: consumers with
//! churn, routing tables with a staleness epoch, the similarity engine
//! observing the published traffic, and the semantic communities rebuilt by
//! the recluster policy.

use tps_core::{LshConfig, PatternId, SimilarityEngine};
use tps_pattern::TreePattern;
use tps_routing::{
    BrokerId, BrokerNetwork, BrokerTopology, CommunityClustering, CommunityConfig, ForwardingMode,
    IncrementalCommunities, RoutingTable, TableCompaction,
};
use tps_synopsis::{IngestTarget, SynopsisConfig};
use tps_workload::SubscriberId;
use tps_xml::XmlTree;

/// One consumer slot of the simulated network. Slots are never reused:
/// departures deactivate the slot, so a [`SubscriberId`] stays a stable
/// index for the whole run.
#[derive(Debug, Clone)]
pub struct SimConsumer {
    /// The broker the consumer is attached to.
    pub broker: BrokerId,
    /// The subscription.
    pub pattern: TreePattern,
    /// Engine handle of the subscription.
    pub id: PatternId,
    /// Whether the consumer is currently subscribed.
    pub active: bool,
}

/// Result of one routing-table / community rebuild.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebuildOutcome {
    /// Total size of the rebuilt tables, in pattern nodes (0 for flooding).
    pub table_nodes: usize,
    /// Entries offered to versus kept by table construction for this
    /// rebuild (empty for flooding; input equals kept unless the analyze
    /// knob or a pruning table mode dropped covered entries).
    pub compaction: TableCompaction,
    /// Number of semantic communities after re-clustering.
    pub communities: usize,
    /// Mean engine-estimated selectivity of the active subscriptions,
    /// evaluated with one batched
    /// [`SimilarityEngine::selectivities`] call over the traffic observed so
    /// far.
    pub mean_selectivity: f64,
}

/// The broker network as the simulator sees it: a static tree topology plus
/// everything that changes over virtual time.
///
/// Staleness is tracked with two counters: the engine synopsis epoch
/// ([`tps_synopsis::Synopsis::epoch`], bumped by every observed
/// publication) and a churn sequence number bumped by every subscribe /
/// unsubscribe. Routing tables depend only on the subscription set, so
/// [`SimNetwork::tables_stale`] consults the churn counter; the semantic
/// communities depend on both (similarities drift as traffic accumulates),
/// so [`SimNetwork::communities_stale`] consults both.
#[derive(Debug)]
pub struct SimNetwork {
    topology: BrokerTopology,
    forwarding: ForwardingMode,
    analyze: bool,
    community: CommunityConfig,
    consumers: Vec<SimConsumer>,
    engine: SimilarityEngine,
    tables: Vec<RoutingTable>,
    /// When set, communities are maintained incrementally through the LSH
    /// candidate index at every subscribe/unsubscribe, and rebuilds merely
    /// snapshot them instead of re-clustering from scratch.
    incremental: Option<IncrementalCommunities>,
    communities: CommunityClustering,
    mean_selectivity: f64,
    churn_seq: u64,
    tables_built_at_churn: u64,
    communities_built_at: (u64, u64),
    /// `behind[broker][link][b]`: whether broker `b` lives behind the
    /// `link`-th link of `broker`. The topology is immutable for the whole
    /// run, so these membership masks are computed once and spare the
    /// per-forward subtree BFS the spurious accounting would otherwise pay.
    behind: Vec<Vec<Vec<bool>>>,
}

impl SimNetwork {
    /// Create a network with no consumers and no tables yet — call
    /// [`SimNetwork::rebuild`] after installing the initial subscriptions
    /// (reading [`SimNetwork::tables`] before the first rebuild yields an
    /// empty slice).
    pub fn new(
        topology: BrokerTopology,
        forwarding: ForwardingMode,
        community: CommunityConfig,
        synopsis: SynopsisConfig,
    ) -> Self {
        let behind = topology
            .brokers()
            .map(|broker| {
                topology
                    .link_partitions(broker)
                    .into_iter()
                    .map(|subtree| {
                        let mut mask = vec![false; topology.broker_count()];
                        for b in subtree {
                            mask[b] = true;
                        }
                        mask
                    })
                    .collect()
            })
            .collect();
        // Tables and communities start empty: the driver installs the
        // initial consumers and then performs the first (counted) rebuild,
        // so building anything here would be dead work.
        Self {
            topology,
            forwarding,
            analyze: false,
            community,
            consumers: Vec::new(),
            engine: SimilarityEngine::new(synopsis),
            tables: Vec::new(),
            incremental: None,
            communities: CommunityClustering::default(),
            mean_selectivity: 0.0,
            churn_seq: 0,
            tables_built_at_churn: 0,
            communities_built_at: (0, 0),
            behind,
        }
    }

    /// The overlay topology.
    pub fn topology(&self) -> &BrokerTopology {
        &self.topology
    }

    /// The forwarding discipline.
    pub fn forwarding(&self) -> ForwardingMode {
        self.forwarding
    }

    /// Enable or disable the static-analysis compaction pre-pass applied
    /// at every table rebuild (syntactic containment pruning of each
    /// link's subscription set before mode summarisation —
    /// delivery-identical for any document stream).
    pub fn set_analyze(&mut self, analyze: bool) {
        self.analyze = analyze;
    }

    /// Whether table rebuilds run the compaction pre-pass.
    pub fn analyze(&self) -> bool {
        self.analyze
    }

    /// Enable (or disable, with `None`) index-backed community maintenance:
    /// subscribe/unsubscribe events update an [`IncrementalCommunities`]
    /// through the banded MinHash candidate index, and
    /// [`SimNetwork::rebuild`] snapshots it instead of re-clustering from
    /// scratch — the change that makes the `eager` policy affordable.
    /// Routing tables are built identically either way, so delivery and
    /// link counters are unaffected; only the community statistics may
    /// differ (by the banding's recall) from the exhaustive pass.
    ///
    /// Enabling with consumers already attached replays them into the
    /// incremental clustering so its slots stay aligned with consumer
    /// slots.
    pub fn set_index(&mut self, lsh: Option<LshConfig>) {
        self.incremental = lsh.map(|lsh| {
            let mut incremental = IncrementalCommunities::new(self.community, lsh);
            let engine = &self.engine;
            let consumers = &self.consumers;
            let metric = self.community.metric;
            for consumer in consumers {
                incremental.insert_with(&consumer.pattern, |a, b| {
                    engine.similarity(consumers[a as usize].id, consumers[b as usize].id, metric)
                });
            }
            for (slot, consumer) in consumers.iter().enumerate() {
                if !consumer.active {
                    incremental.remove_with(slot as u32, |a, b| {
                        engine.similarity(
                            consumers[a as usize].id,
                            consumers[b as usize].id,
                            metric,
                        )
                    });
                }
            }
            incremental
        });
    }

    /// The LSH configuration of the incremental community maintenance, if
    /// enabled.
    pub fn index(&self) -> Option<LshConfig> {
        self.incremental
            .as_ref()
            .map(|incremental| *incremental.index().config())
    }

    /// All consumer slots (active and departed).
    pub fn consumers(&self) -> &[SimConsumer] {
        &self.consumers
    }

    /// Number of currently active consumers.
    pub fn active_count(&self) -> usize {
        self.consumers.iter().filter(|c| c.active).count()
    }

    /// The similarity engine observing the published traffic.
    pub fn engine(&self) -> &SimilarityEngine {
        &self.engine
    }

    /// The semantic communities of the active subscriptions, as of the last
    /// rebuild.
    pub fn communities(&self) -> &CommunityClustering {
        &self.communities
    }

    /// Mean estimated selectivity of the active subscriptions as of the
    /// last rebuild.
    pub fn mean_selectivity(&self) -> f64 {
        self.mean_selectivity
    }

    /// The per-broker routing tables, as of the last rebuild.
    pub fn tables(&self) -> &[RoutingTable] {
        &self.tables
    }

    /// Attach a subscriber. Slots must arrive in [`SubscriberId`] order —
    /// the scenario generator guarantees it, and the assertion catches
    /// hand-built scenarios that do not.
    pub fn subscribe(&mut self, subscriber: SubscriberId, broker: BrokerId, pattern: TreePattern) {
        assert_eq!(
            subscriber,
            self.consumers.len(),
            "subscribers must arrive in id order"
        );
        assert!(
            broker < self.topology.broker_count(),
            "broker {broker} does not exist"
        );
        let id = self.engine.register(&pattern);
        self.consumers.push(SimConsumer {
            broker,
            pattern,
            id,
            active: true,
        });
        if let Some(incremental) = self.incremental.as_mut() {
            let engine = &self.engine;
            let consumers = &self.consumers;
            let metric = self.community.metric;
            // invariant: incremental slots and consumer slots are both
            // dense, never reused and advance together.
            incremental.insert_with(&consumers[subscriber].pattern, |a, b| {
                engine.similarity(consumers[a as usize].id, consumers[b as usize].id, metric)
            });
        }
        self.churn_seq += 1;
    }

    /// Detach a subscriber; returns false when the slot was already
    /// inactive (scenario generators never produce double departures, but
    /// the simulator tolerates them).
    pub fn unsubscribe(&mut self, subscriber: SubscriberId) -> bool {
        match self.consumers.get_mut(subscriber) {
            Some(consumer) if consumer.active => {
                consumer.active = false;
                if let Some(incremental) = self.incremental.as_mut() {
                    let engine = &self.engine;
                    let consumers = &self.consumers;
                    let metric = self.community.metric;
                    incremental.remove_with(subscriber as u32, |a, b| {
                        engine.similarity(
                            consumers[a as usize].id,
                            consumers[b as usize].id,
                            metric,
                        )
                    });
                }
                self.churn_seq += 1;
                true
            }
            _ => false,
        }
    }

    /// Fold a published document into the engine's synopsis (bumps the
    /// synopsis epoch, so community staleness is visible).
    pub fn observe(&mut self, document: &XmlTree) {
        let doc = self.engine.next_doc_id();
        self.engine.ingest_tree_as(document, doc);
    }

    /// Whether the routing tables no longer reflect the subscription set.
    pub fn tables_stale(&self) -> bool {
        self.tables_built_at_churn != self.churn_seq
    }

    /// Whether the communities no longer reflect the subscription set *or*
    /// the observed traffic (synopsis epoch).
    pub fn communities_stale(&self) -> bool {
        self.communities_built_at != (self.churn_seq, self.engine.synopsis().epoch())
    }

    /// Rebuild the routing tables and re-cluster the active subscriptions,
    /// fanning the similarity matrix over up to `threads` workers. Returns
    /// the cost/outcome counters for the report.
    pub fn rebuild(&mut self, threads: usize) -> RebuildOutcome {
        // Tables: reuse the static network's construction over the active
        // consumers, so a churn-free simulation is table-identical to a
        // static `BrokerNetwork` evaluation by construction.
        self.tables = match self.forwarding {
            ForwardingMode::Flooding => Vec::new(),
            ForwardingMode::Table(mode) => {
                let mut network = BrokerNetwork::new(self.topology.clone());
                for consumer in self.consumers.iter().filter(|c| c.active) {
                    network.attach(consumer.broker, "sim", consumer.pattern.clone());
                }
                if self.analyze {
                    network.build_tables_compacted(mode, &|_, _| None)
                } else {
                    network.build_tables(mode)
                }
            }
        };
        self.tables_built_at_churn = self.churn_seq;

        // Communities + batched selectivities of the active workload.
        let active_ids: Vec<PatternId> = self
            .consumers
            .iter()
            .filter(|c| c.active)
            .map(|c| c.id)
            .collect();
        self.communities = match &self.incremental {
            // Index-backed maintenance: churn already kept the communities
            // current, so the rebuild just snapshots them (member indices
            // renumbered to positions in `active_ids`).
            Some(incremental) => incremental.snapshot(),
            None => CommunityClustering::cluster_par(
                &self.engine,
                &active_ids,
                self.community,
                threads.max(1),
            ),
        };
        let selectivities = self.engine.selectivities(&active_ids);
        self.mean_selectivity = if selectivities.is_empty() {
            0.0
        } else {
            selectivities.iter().sum::<f64>() / selectivities.len() as f64
        };
        self.communities_built_at = (self.churn_seq, self.engine.synopsis().epoch());

        RebuildOutcome {
            table_nodes: self.tables.iter().map(RoutingTable::node_count).sum(),
            compaction: TableCompaction {
                input_entries: self.tables.iter().map(RoutingTable::input_count).sum(),
                kept_entries: self.tables.iter().map(RoutingTable::entry_count).sum(),
            },
            communities: self.communities.len(),
            mean_selectivity: self.mean_selectivity,
        }
    }

    /// Indices of the *active* consumers attached to `broker`.
    pub fn active_consumers_at(&self, broker: BrokerId) -> Vec<usize> {
        self.consumers
            .iter()
            .enumerate()
            .filter(|(_, c)| c.active && c.broker == broker)
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether any *active* consumer behind the `link_index`-th link of
    /// `broker` is marked in the frozen `interested` bitmap — the ground
    /// truth for spurious-forward accounting, mirroring the static
    /// network's subtree definition (the membership masks are precomputed
    /// from [`BrokerTopology::subtree_brokers`] via `link_partitions`).
    /// Consumer slots beyond the bitmap (arrivals after publication) count
    /// as uninterested.
    pub fn link_has_interest(
        &self,
        broker: BrokerId,
        link_index: usize,
        interested: &[bool],
    ) -> bool {
        let mask = &self.behind[broker][link_index];
        self.consumers.iter().enumerate().any(|(slot, c)| {
            c.active && mask[c.broker] && interested.get(slot).copied().unwrap_or(false)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_routing::TableMode;

    fn network() -> SimNetwork {
        SimNetwork::new(
            BrokerTopology::balanced_tree(5, 2),
            ForwardingMode::Table(TableMode::Exact),
            CommunityConfig::default(),
            SynopsisConfig::sets(100),
        )
    }

    fn pattern(text: &str) -> TreePattern {
        TreePattern::parse(text).unwrap()
    }

    #[test]
    fn churn_marks_tables_stale_and_rebuild_clears_it() {
        let mut network = network();
        assert!(!network.tables_stale());
        network.subscribe(0, 1, pattern("//CD"));
        assert!(network.tables_stale());
        let outcome = network.rebuild(1);
        assert!(!network.tables_stale());
        assert!(outcome.table_nodes > 0);
        assert_eq!(outcome.communities, 1);
    }

    #[test]
    fn publications_mark_communities_stale_but_not_tables() {
        let mut network = network();
        network.subscribe(0, 1, pattern("//CD"));
        network.rebuild(1);
        network.observe(&XmlTree::parse("<media><CD/></media>").unwrap());
        assert!(!network.tables_stale());
        assert!(network.communities_stale());
    }

    #[test]
    fn unsubscribe_deactivates_without_reusing_slots() {
        let mut network = network();
        network.subscribe(0, 1, pattern("//CD"));
        network.subscribe(1, 3, pattern("//book"));
        assert!(network.unsubscribe(0));
        assert!(!network.unsubscribe(0), "double departure is a no-op");
        assert_eq!(network.active_count(), 1);
        assert_eq!(network.consumers().len(), 2);
        assert_eq!(network.active_consumers_at(1), Vec::<usize>::new());
        assert_eq!(network.active_consumers_at(3), vec![1]);
    }

    #[test]
    fn rebuilt_tables_match_a_static_network_over_the_active_set() {
        let mut network = network();
        network.subscribe(0, 1, pattern("//CD"));
        network.subscribe(1, 3, pattern("//book"));
        network.unsubscribe(0);
        network.rebuild(1);
        let mut reference = BrokerNetwork::new(BrokerTopology::balanced_tree(5, 2));
        reference.attach(3, "b", pattern("//book"));
        let tables = reference.build_tables(TableMode::Exact);
        assert_eq!(
            network
                .tables()
                .iter()
                .map(RoutingTable::node_count)
                .sum::<usize>(),
            tables.iter().map(RoutingTable::node_count).sum::<usize>()
        );
    }

    #[test]
    fn analyze_knob_compacts_tables_and_reports_it() {
        let mut plain = network();
        let mut analyzed = network();
        analyzed.set_analyze(true);
        assert!(analyzed.analyze());
        // `/media/CD` is covered by `//CD` at the same broker.
        for net in [&mut plain, &mut analyzed] {
            net.subscribe(0, 1, pattern("//CD"));
            net.subscribe(1, 1, pattern("/media/CD"));
            net.subscribe(2, 3, pattern("//book"));
        }
        let base = plain.rebuild(1);
        let compacted = analyzed.rebuild(1);
        assert_eq!(base.compaction.pruned_entries(), 0);
        assert!(compacted.compaction.pruned_entries() > 0);
        assert!(compacted.table_nodes < base.table_nodes);
        // Communities are untouched by table compaction.
        assert_eq!(compacted.communities, base.communities);
    }

    #[test]
    fn link_interest_ignores_departed_and_late_subscribers() {
        let mut network = network();
        // Both consumers sit at broker 1, behind broker 0's first link.
        network.subscribe(0, 1, pattern("//CD"));
        network.subscribe(1, 1, pattern("//composer"));
        let interested = vec![false, true];
        assert!(network.link_has_interest(0, 0, &interested));
        // Broker 0's second link (towards broker 2) has nobody behind it.
        assert!(!network.link_has_interest(0, 1, &interested));
        // A departed subscriber no longer attracts forwards...
        network.unsubscribe(1);
        assert!(!network.link_has_interest(0, 0, &interested));
        // ...and slots beyond the frozen interest bitmap count as
        // uninterested (arrivals after publication are not owed the
        // document).
        network.subscribe(2, 1, pattern("//book"));
        assert!(!network.link_has_interest(0, 0, &interested));
    }

    #[test]
    #[should_panic(expected = "id order")]
    fn out_of_order_subscribers_are_rejected() {
        let mut network = network();
        network.subscribe(3, 1, pattern("//CD"));
    }

    #[test]
    fn index_backed_rebuild_snapshots_the_incremental_communities() {
        let mut network = network();
        network.set_index(Some(LshConfig::default()));
        assert_eq!(network.index(), Some(LshConfig::default()));
        network.subscribe(0, 1, pattern("//CD"));
        network.subscribe(1, 2, pattern("//CD"));
        network.subscribe(2, 3, pattern("//book"));
        let outcome = network.rebuild(1);
        // Identical patterns share every signature band, so the two //CD
        // subscriptions always land in one community.
        assert_eq!(outcome.communities, 2);
        assert_eq!(network.communities().len(), 2);
        // Departures are folded in incrementally; the next rebuild reflects
        // them without re-clustering.
        network.unsubscribe(0);
        let outcome = network.rebuild(1);
        assert_eq!(outcome.communities, 2);
        let assignment = network.communities().assignment(2);
        assert!(assignment.iter().all(|&a| a != usize::MAX));
    }

    #[test]
    fn enabling_the_index_late_replays_the_existing_consumers() {
        let mut with_index = network();
        with_index.set_index(Some(LshConfig::default()));
        let mut late = network();
        for net in [&mut with_index, &mut late] {
            net.subscribe(0, 1, pattern("//CD"));
            net.subscribe(1, 2, pattern("//CD"));
            net.subscribe(2, 3, pattern("//book"));
            net.unsubscribe(1);
        }
        late.set_index(Some(LshConfig::default()));
        let a = with_index.rebuild(1);
        let b = late.rebuild(1);
        assert_eq!(a.communities, b.communities);
        assert_eq!(with_index.communities(), late.communities());
    }

    #[test]
    fn index_does_not_change_the_routing_tables() {
        let mut plain = network();
        let mut indexed = network();
        indexed.set_index(Some(LshConfig::default()));
        for net in [&mut plain, &mut indexed] {
            net.subscribe(0, 1, pattern("//CD"));
            net.subscribe(1, 3, pattern("//book"));
            net.unsubscribe(0);
            net.rebuild(1);
        }
        assert_eq!(
            plain
                .tables()
                .iter()
                .map(RoutingTable::node_count)
                .sum::<usize>(),
            indexed
                .tables()
                .iter()
                .map(RoutingTable::node_count)
                .sum::<usize>()
        );
    }
}
