//! The seeded discrete-event queue.
//!
//! The simulator advances a virtual clock by popping timestamped events from
//! a binary heap. Determinism is non-negotiable (the whole point of the
//! simulator is reproducible what-if runs), so ties are broken by a
//! monotonically increasing sequence number: two events scheduled for the
//! same instant are processed in scheduling order, on every run, on every
//! machine.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use tps_routing::BrokerId;

/// Index of an in-flight document in the simulator's document arena.
pub type DocHandle = usize;

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A scenario event (subscribe / unsubscribe / publish), by index into
    /// the scenario's event list.
    Scenario(usize),
    /// A document arrives at a broker over a link (or is injected at the
    /// producer when `from` is `None`).
    Hop {
        /// The in-flight document.
        doc: DocHandle,
        /// The broker the document arrives at.
        broker: BrokerId,
        /// The link the document arrived over (suppresses back-forwarding).
        from: Option<BrokerId>,
    },
    /// A periodic re-clustering tick ([`crate::ReclusterPolicy::Periodic`]).
    ReclusterTick,
}

/// A timestamped queue entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuedEvent {
    /// Virtual firing time.
    pub at: u64,
    /// Scheduling sequence number (tie-breaker).
    pub seq: u64,
    /// The event payload.
    pub kind: EventKind,
}

// `BinaryHeap` is a max-heap; invert the ordering to pop the earliest
// (time, seq) first.
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The event queue: a min-heap over `(time, seq)` with an internal sequence
/// counter, so callers only say *when* and the queue guarantees a total,
/// reproducible order.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<QueuedEvent>,
    next_seq: u64,
    pending_hops: usize,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` at virtual time `at`.
    pub fn push(&mut self, at: u64, kind: EventKind) {
        if matches!(kind, EventKind::Hop { .. }) {
            self.pending_hops += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(QueuedEvent { at, seq, kind });
    }

    /// Pop the earliest event (ties in scheduling order).
    pub fn pop(&mut self) -> Option<QueuedEvent> {
        let event = self.heap.pop();
        if let Some(QueuedEvent {
            kind: EventKind::Hop { .. },
            ..
        }) = event
        {
            self.pending_hops -= 1;
        }
        event
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of queued [`EventKind::Hop`] events — the network's in-flight
    /// backlog, sampled into the report's queue-depth series.
    pub fn pending_hops(&self) -> usize {
        self.pending_hops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_stable_ties() {
        let mut queue = EventQueue::new();
        queue.push(5, EventKind::Scenario(0));
        queue.push(3, EventKind::Scenario(1));
        queue.push(5, EventKind::Scenario(2));
        queue.push(1, EventKind::ReclusterTick);
        let order: Vec<(u64, EventKind)> = std::iter::from_fn(|| queue.pop())
            .map(|e| (e.at, e.kind))
            .collect();
        assert_eq!(
            order,
            vec![
                (1, EventKind::ReclusterTick),
                (3, EventKind::Scenario(1)),
                (5, EventKind::Scenario(0)),
                (5, EventKind::Scenario(2)),
            ]
        );
    }

    #[test]
    fn pending_hops_tracks_in_flight_documents() {
        let mut queue = EventQueue::new();
        assert_eq!(queue.pending_hops(), 0);
        queue.push(
            1,
            EventKind::Hop {
                doc: 0,
                broker: 0,
                from: None,
            },
        );
        queue.push(1, EventKind::Scenario(0));
        assert_eq!(queue.pending_hops(), 1);
        while queue.pop().is_some() {}
        assert_eq!(queue.pending_hops(), 0);
        assert!(queue.is_empty());
    }
}
