//! Compaction soundness: routing over compacted tables is
//! delivery-identical to routing over the uncompacted ones.
//!
//! * With the silent oracle the compaction pre-pass prunes only
//!   syntactically covered entries, which is sound for *every* document
//!   stream: deliveries and misses match the plain tables exactly, for
//!   every table mode, topology and workload tried.
//! * The DTD refinement oracle prunes strictly more, and stays
//!   delivery-identical on streams conforming to that DTD.
//! * The same invariant holds end-to-end through the simulator: a churn
//!   run with the `analyze` knob on reports the same delivery outcome as
//!   the plain run, it just builds smaller tables.

use proptest::prelude::*;
use tps_routing::{BrokerNetwork, BrokerTopology, ForwardingMode, TableMode};
use tps_sim::{ReclusterPolicy, SimConfig, Simulation};
use tps_workload::{
    ChurnConfig, ChurnScenario, DocGenConfig, DocumentGenerator, Dtd, XPathGenConfig,
    XPathGenerator,
};
use tps_xml::XmlTree;

/// A media-DTD workload: conforming documents plus consumers spread over a
/// balanced broker tree, all derived deterministically from `seed`.
fn workload(seed: u64, consumers: usize) -> (BrokerNetwork, Vec<XmlTree>) {
    let dtd = Dtd::media();
    let mut docgen = DocumentGenerator::new(&dtd, DocGenConfig::default().with_seed(seed));
    let documents = docgen.generate_many(12);
    let mut xpgen = XPathGenerator::new(&dtd, XPathGenConfig::default().with_seed(seed * 31 + 7));
    let topology = BrokerTopology::balanced_tree(7, 2);
    let brokers = topology.broker_count();
    let mut network = BrokerNetwork::new(topology);
    for c in 0..consumers {
        network.attach(c % brokers, format!("c{c}"), xpgen.generate());
    }
    (network, documents)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For every table mode, `route_stream_compacted` delivers exactly the
    /// (consumer, document) pairs `route_stream` delivers — with the
    /// syntactic-only oracle and with the DTD oracle on conforming streams.
    /// Local filtering is per-subscription, so equal delivery and miss
    /// counts pin the delivered set itself.
    #[test]
    fn compacted_routing_is_delivery_identical(
        seed in 0u64..100_000,
        consumers in 1usize..14,
    ) {
        let (network, documents) = workload(seed, consumers);
        let schema = tps_dtd::writer::schema_from_workload(&Dtd::media());
        let oracle =
            tps_analyze::dtd_refinement_oracle(schema, tps_dtd::AnalysisConfig::default());
        for mode in TableMode::all() {
            let forwarding = ForwardingMode::Table(mode);
            let plain = network.route_stream(0, &documents, forwarding);
            let syntactic =
                network.route_stream_compacted(0, &documents, forwarding, &|_, _| None);
            let refined =
                network.route_stream_compacted(0, &documents, forwarding, &|p, q| oracle(p, q));
            for (label, compacted) in [("syntactic", &syntactic), ("dtd", &refined)] {
                prop_assert_eq!(
                    compacted.deliveries, plain.deliveries,
                    "{} compaction changed deliveries under {}", label, mode.name()
                );
                prop_assert_eq!(
                    compacted.missed_deliveries, plain.missed_deliveries,
                    "{} compaction changed misses under {}", label, mode.name()
                );
                prop_assert!(
                    compacted.compaction.kept_entries <= compacted.compaction.input_entries,
                    "{} compaction kept more than it was offered", label
                );
            }
            // Under the exact mode the compacted table is a subset of the
            // plain one, so pruning can only shrink it. (Not claimed for
            // the other modes: their summarisation runs *after* the
            // pre-pass, and aggregating a pruned set can merge to a
            // differently shaped — occasionally larger — pattern.)
            if mode == TableMode::Exact {
                prop_assert!(refined.table_nodes <= plain.table_nodes);
                prop_assert!(syntactic.table_nodes <= plain.table_nodes);
            }
        }
    }

    /// The invariant survives churn: a full simulator run with the
    /// `analyze` compaction knob reports the same deliveries, misses and
    /// spurious traffic as the plain run, while never building larger
    /// tables.
    #[test]
    fn analyzed_simulation_is_delivery_identical(
        seed in 0u64..100_000,
        arrivals in 0usize..5,
        departures in 0usize..5,
    ) {
        let scenario = ChurnScenario::generate(
            &Dtd::media(),
            &ChurnConfig {
                brokers: 7,
                initial_subscribers: 6,
                arrivals,
                departures,
                publications: 30,
                horizon: 300,
                seed,
                ..ChurnConfig::default()
            },
        );
        let run = |analyze: bool| {
            let config = SimConfig {
                recluster: ReclusterPolicy::Eager,
                analyze,
                ..SimConfig::default()
            };
            Simulation::new(BrokerTopology::balanced_tree(7, 2), config).run(&scenario)
        };
        let plain = run(false).aggregate;
        let analyzed = run(true).aggregate;
        prop_assert_eq!(analyzed.deliveries, plain.deliveries);
        prop_assert_eq!(analyzed.missed_deliveries, plain.missed_deliveries);
        prop_assert_eq!(analyzed.documents, plain.documents);
        prop_assert_eq!(analyzed.subscribes, plain.subscribes);
        prop_assert_eq!(analyzed.unsubscribes, plain.unsubscribes);
        prop_assert!(analyzed.rebuild_table_nodes <= plain.rebuild_table_nodes);
        prop_assert!(analyzed.rebuild_entries_pruned >= plain.rebuild_entries_pruned);
    }
}
