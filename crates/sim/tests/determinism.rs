//! Determinism and static-equivalence guarantees of the simulator.
//!
//! * Two runs with the same seed produce identical event traces and
//!   reports (property-tested over seeds and scenario shapes).
//! * With zero churn, the recluster policy is irrelevant: `never` and
//!   `eager` agree exactly.
//! * With zero churn and eager reclustering, the aggregate link/delivery
//!   counters match the static `BrokerNetwork::route_stream` evaluation on
//!   the same corpus — the dynamic simulator is a strict generalisation of
//!   the batch run.

use proptest::prelude::*;

use tps_pattern::TreePattern;
use tps_routing::{
    BrokerNetwork, BrokerTopology, DeliveryMetrics, ForwardingMode, LinkMetrics, TableMode,
};
use tps_sim::{ReclusterPolicy, SimConfig, Simulation};
use tps_workload::{ChurnConfig, ChurnScenario, Dtd, ScenarioAction, ScenarioEvent};

fn scenario(seed: u64, arrivals: usize, departures: usize) -> ChurnScenario {
    ChurnScenario::generate(
        &Dtd::media(),
        &ChurnConfig {
            brokers: 7,
            initial_subscribers: 8,
            arrivals,
            departures,
            publications: 40,
            horizon: 400,
            seed,
            ..ChurnConfig::default()
        },
    )
}

fn config(recluster: ReclusterPolicy) -> SimConfig {
    SimConfig {
        recluster,
        record_trace: true,
        ..SimConfig::default()
    }
}

fn run(scenario: &ChurnScenario, recluster: ReclusterPolicy) -> tps_sim::SimReport {
    Simulation::new(BrokerTopology::balanced_tree(7, 2), config(recluster)).run(scenario)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same seed, same shape: the scenario, the trace and the report are
    /// all bit-identical across runs (and across policies the trace is at
    /// least internally deterministic).
    #[test]
    fn same_seed_runs_are_bit_identical(
        seed in 0u64..1_000,
        arrivals in 0usize..6,
        departures in 0usize..6,
        policy in prop::sample::select(vec![
            ReclusterPolicy::Eager,
            ReclusterPolicy::Periodic(100),
            ReclusterPolicy::OnChurn(2),
            ReclusterPolicy::Never,
        ]),
    ) {
        let a_scenario = scenario(seed, arrivals, departures);
        let b_scenario = scenario(seed, arrivals, departures);
        prop_assert_eq!(&a_scenario, &b_scenario);
        let a = run(&a_scenario, policy);
        let b = run(&b_scenario, policy);
        prop_assert_eq!(&a.trace, &b.trace);
        prop_assert_eq!(a, b);
    }

    /// With zero churn there is nothing to go stale, so the cheapest and
    /// the most expensive policy agree exactly.
    #[test]
    fn policies_agree_without_churn(seed in 0u64..1_000) {
        let scenario = scenario(seed, 0, 0);
        let eager = run(&scenario, ReclusterPolicy::Eager);
        let never = run(&scenario, ReclusterPolicy::Never);
        prop_assert_eq!(&eager.trace, &never.trace);
        prop_assert_eq!(eager, never);
    }
}

/// The dynamic run over a churn-free scenario reproduces the static batch
/// evaluation counter for counter, for every forwarding mode.
#[test]
fn zero_churn_eager_matches_the_static_network() {
    let scenario = scenario(7, 0, 0);
    let documents = scenario.published_documents();
    let topology = BrokerTopology::balanced_tree(7, 2);
    for forwarding in ForwardingMode::all() {
        let report = Simulation::new(
            topology.clone(),
            SimConfig {
                forwarding,
                recluster: ReclusterPolicy::Eager,
                ..SimConfig::default()
            },
        )
        .run(&scenario);

        let mut network = BrokerNetwork::new(topology.clone());
        for (broker, pattern) in &scenario.initial {
            network.attach(*broker, "static", pattern.clone());
        }
        let expected = network.route_stream(0, &documents, forwarding);

        let a = &report.aggregate;
        assert_eq!(a.documents, expected.documents, "{}", forwarding.name());
        assert_eq!(
            a.link_messages,
            expected.link_messages,
            "{}",
            forwarding.name()
        );
        assert_eq!(
            a.spurious_link_messages,
            expected.spurious_link_messages,
            "{}",
            forwarding.name()
        );
        assert_eq!(
            a.match_operations,
            expected.match_operations,
            "{}",
            forwarding.name()
        );
        assert_eq!(a.deliveries, expected.deliveries, "{}", forwarding.name());
        assert_eq!(
            a.missed_deliveries,
            expected.missed_deliveries,
            "{}",
            forwarding.name()
        );
        assert_eq!(
            a.link_precision(),
            expected.link_precision(),
            "{}",
            forwarding.name()
        );
        assert_eq!(a.recall(), expected.recall(), "{}", forwarding.name());
        assert_eq!(
            a.matches_per_document(),
            expected.matches_per_document(),
            "{}",
            forwarding.name()
        );
    }
}

/// With the index-backed eager policy, zero-churn runs stay counter-exact
/// with the static batch evaluation: the incremental communities only feed
/// the report statistics, while tables are built identically.
#[test]
fn zero_churn_indexed_eager_matches_the_static_network() {
    let scenario = scenario(7, 0, 0);
    let documents = scenario.published_documents();
    let topology = BrokerTopology::balanced_tree(7, 2);
    let report = Simulation::new(
        topology.clone(),
        SimConfig {
            recluster: ReclusterPolicy::Eager,
            index: Some(tps_core::LshConfig::default()),
            ..SimConfig::default()
        },
    )
    .run(&scenario);

    let mut network = BrokerNetwork::new(topology);
    for (broker, pattern) in &scenario.initial {
        network.attach(*broker, "static", pattern.clone());
    }
    let expected = network.route_stream(0, &documents, ForwardingMode::Table(TableMode::Exact));

    let a = &report.aggregate;
    assert_eq!(a.documents, expected.documents);
    assert_eq!(a.link_messages, expected.link_messages);
    assert_eq!(a.spurious_link_messages, expected.spurious_link_messages);
    assert_eq!(a.match_operations, expected.match_operations);
    assert_eq!(a.deliveries, expected.deliveries);
    assert_eq!(a.missed_deliveries, expected.missed_deliveries);
    assert_eq!(a.recall(), expected.recall());
}

/// A hand-built scenario where staleness must cost deliveries: a subscriber
/// arrives at an empty leaf mid-run. With `never` the tables predate the
/// arrival, so nothing is forwarded towards it; with `eager` the rebuild
/// routes to it immediately.
#[test]
fn stale_tables_lose_deliveries_that_eager_rebuilds_recover() {
    let pattern = TreePattern::parse("//CD").unwrap();
    let document = tps_xml::XmlTree::parse("<media><CD><title>T</title></CD></media>").unwrap();
    let scenario = ChurnScenario {
        initial: vec![(1, TreePattern::parse("//never-matches").unwrap())],
        events: vec![
            ScenarioEvent {
                time: 10,
                action: ScenarioAction::Subscribe {
                    subscriber: 1,
                    broker: 4,
                    pattern: pattern.clone(),
                },
            },
            ScenarioEvent {
                time: 50,
                action: ScenarioAction::Publish {
                    document: document.clone(),
                },
            },
            ScenarioEvent {
                time: 60,
                action: ScenarioAction::Publish { document },
            },
        ],
    };
    let topology = BrokerTopology::balanced_tree(5, 2);
    let eager = Simulation::new(topology.clone(), config(ReclusterPolicy::Eager)).run(&scenario);
    let never = Simulation::new(topology, config(ReclusterPolicy::Never)).run(&scenario);
    assert_eq!(eager.aggregate.deliveries, 2);
    assert_eq!(eager.aggregate.missed_deliveries, 0);
    assert_eq!(eager.aggregate.recall(), 1.0);
    assert_eq!(never.aggregate.deliveries, 0);
    assert_eq!(never.aggregate.missed_deliveries, 2);
    assert_eq!(never.aggregate.recall(), 0.0);
    assert!(eager.aggregate.table_rebuilds > never.aggregate.table_rebuilds);
}

/// The mirror case: a subscriber departs mid-run, and the stale tables keep
/// forwarding into its now-empty subtree — spurious link messages the eager
/// policy avoids.
#[test]
fn stale_tables_forward_spuriously_after_departures() {
    let pattern = TreePattern::parse("//CD").unwrap();
    let document = tps_xml::XmlTree::parse("<media><CD><title>T</title></CD></media>").unwrap();
    let scenario = ChurnScenario {
        initial: vec![(4, pattern)],
        events: vec![
            ScenarioEvent {
                time: 10,
                action: ScenarioAction::Unsubscribe { subscriber: 0 },
            },
            ScenarioEvent {
                time: 50,
                action: ScenarioAction::Publish { document },
            },
        ],
    };
    let topology = BrokerTopology::balanced_tree(5, 2);
    let eager = Simulation::new(topology.clone(), config(ReclusterPolicy::Eager)).run(&scenario);
    let never = Simulation::new(topology, config(ReclusterPolicy::Never)).run(&scenario);
    assert_eq!(eager.aggregate.link_messages, 0);
    assert!(never.aggregate.link_messages > 0);
    assert_eq!(
        never.aggregate.spurious_link_messages,
        never.aggregate.link_messages
    );
    assert!(never.aggregate.link_precision() < eager.aggregate.link_precision());
}

/// Periodic and on-churn policies rebuild between the extremes.
#[test]
fn periodic_and_on_churn_policies_bound_the_rebuild_count() {
    let scenario = scenario(3, 5, 5);
    let eager = run(&scenario, ReclusterPolicy::Eager);
    let periodic = run(&scenario, ReclusterPolicy::Periodic(100));
    let on_churn = run(&scenario, ReclusterPolicy::OnChurn(3));
    let never = run(&scenario, ReclusterPolicy::Never);
    assert_eq!(never.aggregate.table_rebuilds, 1, "initial build only");
    assert!(eager.aggregate.table_rebuilds >= on_churn.aggregate.table_rebuilds);
    assert!(on_churn.aggregate.table_rebuilds >= never.aggregate.table_rebuilds);
    assert!(periodic.aggregate.table_rebuilds >= 1);
    // All policies route the same publications.
    for report in [&eager, &periodic, &on_churn, &never] {
        assert_eq!(report.aggregate.documents, 40);
    }
}
