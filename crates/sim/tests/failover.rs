//! Broker failure / rejoin semantics of the simulator.
//!
//! A failed broker drops arriving documents (the frozen interest behind it
//! becomes missed deliveries) and a recovered broker routes again with the
//! tables it always had — the subscription view never changes across a
//! failure, mirroring the live runtime's resync-on-rejoin behaviour.

use tps_pattern::TreePattern;
use tps_routing::BrokerTopology;
use tps_sim::{SimConfig, Simulation};
use tps_workload::{ChurnConfig, ChurnScenario, Dtd, ScenarioAction, ScenarioEvent};
use tps_xml::XmlTree;

fn cd_doc() -> XmlTree {
    XmlTree::parse("<media><CD><title>Requiem</title></CD></media>").expect("valid document")
}

fn publish(time: u64) -> ScenarioEvent {
    ScenarioEvent {
        time,
        action: ScenarioAction::Publish { document: cd_doc() },
    }
}

/// Hand-built timeline: deliver, fail, drop, recover, deliver again.
#[test]
fn documents_drop_while_a_broker_is_down_and_flow_again_after_rejoin() {
    let scenario = ChurnScenario {
        initial: vec![(1, TreePattern::parse("//CD").expect("valid pattern"))],
        events: vec![
            publish(1),
            ScenarioEvent {
                time: 10,
                action: ScenarioAction::Fail { broker: 1 },
            },
            publish(11),
            ScenarioEvent {
                time: 20,
                action: ScenarioAction::Recover { broker: 1 },
            },
            publish(21),
        ],
    };
    let report =
        Simulation::new(BrokerTopology::balanced_tree(3, 2), SimConfig::default()).run(&scenario);
    let a = report.aggregate;
    assert_eq!(a.documents, 3);
    assert_eq!(a.failures, 1);
    assert_eq!(a.recoveries, 1);
    assert_eq!(a.dropped_hops, 1, "only the mid-outage document is dropped");
    assert_eq!(a.deliveries, 2, "the outage costs exactly one delivery");
    assert_eq!(a.missed_deliveries, 1);
    assert!(
        report.windows.iter().map(|w| w.dropped_hops).sum::<usize>() == 1,
        "the drop lands in a window"
    );
    let text = report.to_string();
    assert!(text.contains("failover: 1 failures"), "{text}");
}

/// Failing and recovering a broker nobody routes through changes nothing.
#[test]
fn failing_an_idle_broker_is_invisible_to_delivery() {
    let base = ChurnScenario {
        initial: vec![(1, TreePattern::parse("//CD").expect("valid pattern"))],
        events: vec![publish(1), publish(5)],
    };
    let mut with_idle_failure = base.clone();
    with_idle_failure.events.push(ScenarioEvent {
        time: 2,
        action: ScenarioAction::Fail { broker: 2 },
    });
    with_idle_failure.events.push(ScenarioEvent {
        time: 8,
        action: ScenarioAction::Recover { broker: 2 },
    });
    let topology = BrokerTopology::balanced_tree(3, 2);
    let calm = Simulation::new(topology.clone(), SimConfig::default()).run(&base);
    let failed = Simulation::new(topology, SimConfig::default()).run(&with_idle_failure);
    assert_eq!(failed.aggregate.deliveries, calm.aggregate.deliveries);
    assert_eq!(
        failed.aggregate.missed_deliveries,
        calm.aggregate.missed_deliveries
    );
    assert_eq!(
        failed.aggregate.dropped_hops, 0,
        "nothing routes through broker 2"
    );
    assert_eq!(failed.aggregate.failures, 1);
}

/// On generated scenarios, failures only convert deliveries into misses:
/// the sum is conserved against the identical zero-failure run, because
/// interest is frozen at publish time and the subscription timeline is
/// byte-identical with and without the failure events.
#[test]
fn failures_conserve_interest_against_the_calm_run() {
    let config = ChurnConfig {
        brokers: 7,
        initial_subscribers: 10,
        arrivals: 3,
        departures: 3,
        publications: 30,
        horizon: 300,
        seed: 11,
        ..ChurnConfig::default()
    };
    let failing = ChurnScenario::generate(&Dtd::media(), &config.clone().with_failures(3));
    let calm = ChurnScenario::generate(&Dtd::media(), &config);
    assert_eq!(failing.failure_count(), 3);

    let topology = BrokerTopology::balanced_tree(7, 2);
    let calm_report = Simulation::new(topology.clone(), SimConfig::default()).run(&calm);
    let failing_report = Simulation::new(topology, SimConfig::default()).run(&failing);

    assert_eq!(calm_report.aggregate.dropped_hops, 0);
    assert!(failing_report.aggregate.failures >= 1);
    assert_eq!(
        failing_report.aggregate.failures, failing_report.aggregate.recoveries,
        "every counted failure has a counted recovery"
    );
    assert_eq!(
        failing_report.aggregate.deliveries + failing_report.aggregate.missed_deliveries,
        calm_report.aggregate.deliveries + calm_report.aggregate.missed_deliveries,
        "failures convert deliveries into misses, never create or destroy interest"
    );
    assert!(
        failing_report.aggregate.deliveries <= calm_report.aggregate.deliveries,
        "an outage cannot add deliveries"
    );
}
