//! Property-based tests for the synopsis and its summaries.

use proptest::prelude::*;
use tps_synopsis::{
    DistinctSample, DocId, IngestTarget, MatchingSetKind, Synopsis, SynopsisConfig,
};
use tps_xml::XmlTree;

const TAGS: &[&str] = &["a", "b", "c", "d", "e"];

/// A small random document over a fixed alphabet.
fn gen_doc() -> impl Strategy<Value = XmlTree> {
    #[derive(Debug, Clone)]
    struct Node(usize, Vec<Node>);
    fn node() -> impl Strategy<Value = Node> {
        let leaf = (0..TAGS.len()).prop_map(|i| Node(i, vec![]));
        leaf.prop_recursive(3, 16, 3, |inner| {
            ((0..TAGS.len()), prop::collection::vec(inner, 0..3)).prop_map(|(i, c)| Node(i, c))
        })
    }
    fn build(tree: &mut XmlTree, parent: tps_xml::NodeId, n: &Node) {
        let id = tree.add_child(parent, TAGS[n.0]);
        for c in &n.1 {
            build(tree, id, c);
        }
    }
    node().prop_map(|n| {
        let mut tree = XmlTree::new(TAGS[n.0]);
        let root = tree.root();
        for c in &n.1 {
            build(&mut tree, root, c);
        }
        tree
    })
}

fn gen_docs() -> impl Strategy<Value = Vec<XmlTree>> {
    prop::collection::vec(gen_doc(), 1..12)
}

/// Canonical view of a synopsis for equivalence checks: every live
/// root-to-node label path with its full matching-set value.
fn canonical_values(s: &Synopsis) -> Vec<(Vec<String>, tps_synopsis::SummaryValue)> {
    fn walk(
        s: &Synopsis,
        id: tps_synopsis::SynopsisNodeId,
        path: &mut Vec<String>,
        out: &mut Vec<(Vec<String>, tps_synopsis::SummaryValue)>,
    ) {
        path.push(s.label(id).to_string());
        out.push((path.clone(), s.matching_value(id)));
        for &child in s.children(id) {
            walk(s, child, path, out);
        }
        path.pop();
    }
    let mut out = Vec::new();
    walk(s, s.root(), &mut Vec::new(), &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The distinct-sample cardinality estimate of an exactly-stored set (no
    /// sub-sampling) equals the true cardinality, and the estimate stays
    /// within a loose factor even after sub-sampling.
    #[test]
    fn distinct_sample_estimates_are_sane(ids in prop::collection::btree_set(0u64..50_000, 0..500)) {
        let mut exact = DistinctSample::new(1_000);
        let mut small = DistinctSample::new(16);
        for &id in &ids {
            exact.insert(DocId(id));
            small.insert(DocId(id));
        }
        prop_assert_eq!(exact.cardinality_estimate() as usize, ids.len());
        prop_assert!(small.len() <= 16);
        if ids.len() >= 64 {
            let est = small.cardinality_estimate();
            let truth = ids.len() as f64;
            prop_assert!(est / truth < 8.0 && truth / est.max(1.0) < 8.0,
                "estimate {est} vs true {truth}");
        }
    }

    /// Union and intersection of distinct samples are consistent with set
    /// semantics when no sub-sampling occurs.
    #[test]
    fn distinct_sample_algebra_matches_sets(
        a in prop::collection::btree_set(0u64..2_000, 0..200),
        b in prop::collection::btree_set(0u64..2_000, 0..200),
    ) {
        let mut sa = DistinctSample::new(10_000);
        let mut sb = DistinctSample::new(10_000);
        for &x in &a { sa.insert(DocId(x)); }
        for &x in &b { sb.insert(DocId(x)); }
        let union = sa.union(&sb);
        let inter = sa.intersect(&sb);
        prop_assert_eq!(union.cardinality_estimate() as usize, a.union(&b).count());
        prop_assert_eq!(inter.cardinality_estimate() as usize, a.intersection(&b).count());
    }

    /// Synopsis structural invariants hold for every representation after
    /// inserting an arbitrary batch of documents.
    #[test]
    fn synopsis_structure_is_consistent(docs in gen_docs()) {
        for config in [
            SynopsisConfig::counters(),
            SynopsisConfig::sets(8),
            SynopsisConfig::hashes(8),
        ] {
            let synopsis = Synopsis::from_documents(config, &docs);
            prop_assert_eq!(synopsis.document_count() as usize, docs.len());
            // Parent/child links are mutual and all reachable nodes are live.
            for id in synopsis.live_nodes() {
                for &child in synopsis.children(id) {
                    prop_assert!(synopsis.is_alive(child));
                    prop_assert!(synopsis.parents(child).contains(&id));
                }
            }
            // Each live non-root node's label occurs at most once among the
            // children of each of its parents (skeleton sharing).
            for id in synopsis.live_nodes() {
                let mut labels: Vec<&str> = synopsis
                    .children(id)
                    .iter()
                    .map(|&c| synopsis.label(c))
                    .collect();
                let before = labels.len();
                labels.sort_unstable();
                labels.dedup();
                prop_assert_eq!(labels.len(), before, "duplicate child labels");
            }
            // Size accounting is consistent.
            let size = synopsis.size();
            prop_assert_eq!(size.nodes, synopsis.node_count());
            prop_assert_eq!(size.edges, synopsis.edge_count());
            prop_assert!(size.labels >= size.nodes);
        }
    }

    /// The parent-child inclusion property: a child's full matching set is a
    /// subset of its parent's (checked via cardinalities on exact
    /// representations).
    #[test]
    fn parent_child_inclusion_property(docs in gen_docs()) {
        let mut synopsis = Synopsis::from_documents(SynopsisConfig::sets(10_000), &docs);
        synopsis.prepare();
        for id in synopsis.live_nodes() {
            let parent_count = synopsis.matching_value(id).count_units();
            for &child in synopsis.children(id) {
                let child_count = synopsis.matching_value(child).count_units();
                prop_assert!(
                    child_count <= parent_count + 1e-9,
                    "child {} exceeds parent {}",
                    child_count,
                    parent_count
                );
            }
        }
    }

    /// Pruning to half the size never increases the size and keeps the
    /// structure consistent.
    #[test]
    fn pruning_preserves_invariants(docs in gen_docs()) {
        let mut synopsis = Synopsis::from_documents(SynopsisConfig::hashes(8), &docs);
        let before = synopsis.size().total();
        synopsis.prune_to_ratio(0.5, tps_synopsis::PruneConfig::default());
        let after = synopsis.size().total();
        prop_assert!(after <= before);
        for id in synopsis.live_nodes() {
            for &child in synopsis.children(id) {
                prop_assert!(synopsis.is_alive(child));
                prop_assert!(synopsis.parents(child).contains(&id));
            }
        }
        // The root survives pruning.
        prop_assert!(synopsis.is_alive(synopsis.root()));
    }

    /// The sharded build — observe contiguous chunks with global stream
    /// identifiers into per-shard partial synopses, then merge — produces
    /// the same matching-set value on every node as the sequential
    /// `from_documents` build, for all three representations and shard
    /// counts 1, 2 and 8 (small capacities force reservoir re-pruning and
    /// hash-sample sub-sampling on the way).
    #[test]
    fn sharded_build_is_estimate_identical_to_sequential(docs in gen_docs()) {
        for config in [
            SynopsisConfig::counters(),
            SynopsisConfig::sets(4),
            SynopsisConfig::hashes(4),
        ] {
            let sequential = Synopsis::from_documents(config, &docs);
            for shards in [1usize, 2, 8] {
                let mut merged = Synopsis::new(config);
                let chunk = docs.len().div_ceil(shards).max(1);
                for (index, chunk_docs) in docs.chunks(chunk).enumerate() {
                    let mut shard = Synopsis::new(config);
                    for (offset, doc) in chunk_docs.iter().enumerate() {
                        shard.ingest_tree_as(doc, DocId((index * chunk + offset) as u64));
                    }
                    merged.merge(&shard);
                }
                prop_assert_eq!(merged.document_count(), sequential.document_count());
                prop_assert_eq!(
                    merged.universe_value(),
                    sequential.universe_value(),
                    "universe for {:?} / {} shards",
                    config.kind,
                    shards
                );
                let mut merged_values = canonical_values(&merged);
                let mut sequential_values = canonical_values(&sequential);
                merged_values.sort_by(|a, b| a.0.cmp(&b.0));
                sequential_values.sort_by(|a, b| a.0.cmp(&b.0));
                prop_assert_eq!(
                    merged_values,
                    sequential_values,
                    "{:?} with {} shards",
                    config.kind,
                    shards
                );
            }
        }
    }

    /// Document-count bookkeeping matches under all representations even
    /// when the reservoir forgets documents.
    #[test]
    fn universe_never_exceeds_document_count(docs in gen_docs()) {
        for config in [SynopsisConfig::sets(4), SynopsisConfig::hashes(4), SynopsisConfig::counters()] {
            let synopsis = Synopsis::from_documents(config, &docs);
            let universe = synopsis.universe_value().count_units();
            match config.kind {
                MatchingSetKind::Counters => prop_assert!((universe - 1.0).abs() < 1e-9),
                MatchingSetKind::Sets { capacity } => {
                    prop_assert!(universe <= capacity as f64 + 1e-9);
                    prop_assert!(universe <= docs.len() as f64 + 1e-9);
                }
                MatchingSetKind::Hashes { .. } => {
                    // Estimated; allow generous slack for tiny samples.
                    prop_assert!(universe <= docs.len() as f64 * 4.0 + 4.0);
                }
            }
        }
    }
}
