use tps_synopsis::{DocId, IngestTarget, Synopsis, SynopsisConfig};
use tps_xml::XmlTree;

fn dag_synopsis(config: SynopsisConfig) -> Synopsis {
    let docs: Vec<XmlTree> = ["<a><x><k/></x></a>", "<a><y><k/></y></a>"]
        .iter()
        .map(|s| XmlTree::parse(s).unwrap())
        .collect();
    let mut s = Synopsis::from_documents(config, &docs);
    let root = s.root();
    let a = s.children(root)[0];
    let x = *s.children(a).iter().find(|&&c| s.label(c) == "x").unwrap();
    let y = *s.children(a).iter().find(|&&c| s.label(c) == "y").unwrap();
    let kx = s.children(x)[0];
    let ky = s.children(y)[0];
    s.merge_nodes(kx, ky);
    s
}

#[test]
fn dag_parity_counters_and_hashes() {
    for config in [SynopsisConfig::counters(), SynopsisConfig::hashes(64)] {
        let mut via_tree = dag_synopsis(config);
        let mut via_bytes = via_tree.clone();
        let text = "<a><x><k><z/></k></x><y><k/></y></a>";
        let tree = XmlTree::parse(text).unwrap();
        via_tree.ingest_tree_as(&tree, DocId(2));
        via_bytes
            .ingest_bytes_as(text.as_bytes(), DocId(2))
            .unwrap();
        for id in via_tree.live_nodes() {
            assert_eq!(
                via_tree.matching_value(id),
                via_bytes.matching_value(id),
                "node {:?} label {} config {:?}",
                id,
                via_tree.label(id),
                config.kind
            );
        }
    }
}
