//! Synopsis pruning (Section 3.3 of the paper).
//!
//! Three operations keep the synopsis within a space budget:
//!
//! 1. **Folding leaf nodes** into their parents when their matching sets are
//!    similar. The folded child becomes part of the parent's *nested label*
//!    (`c[f][o[n]]` in Figure 3) and the parent's summary becomes the union
//!    of both. Folding identical-set leaves is lossless.
//! 2. **Deleting low-cardinality leaves**, the simplest operation and the
//!    main one available to the Counters representation.
//! 3. **Merging same-label nodes** with similar matching sets. Only leaf
//!    pairs, or non-leaf pairs that already share the same children, are
//!    merged (bottom-up, so no false label paths are introduced). The merged
//!    node keeps the *intersection* of the two summaries, preserving the
//!    parent-child inclusion property, and the synopsis becomes a DAG.
//!
//! [`Synopsis::prune_to_ratio`] applies them in the order the paper reports works best
//! (Section 5.2, "Compressed synopsis"): lossless folds first, then folds and
//! deletions of low-cardinality leaves, and finally same-label merges.

use crate::summary::SummaryValue;
use crate::synopsis::{FoldedSubtree, Synopsis, SynopsisNodeId};

/// Tuning knobs for the pruning driver.
#[derive(Debug, Clone, Copy)]
pub struct PruneConfig {
    /// Similarity at or above which a parent-leaf pair is considered
    /// "identical" and folded losslessly in the first phase.
    pub identical_threshold: f64,
    /// Minimum similarity for a lossy fold in the second phase; below this
    /// the driver prefers deleting the lowest-cardinality leaf instead.
    pub fold_threshold: f64,
    /// Maximum number of candidate pairs evaluated per same-label group when
    /// searching for the best merge (keeps merge selection near-linear).
    pub merge_candidates_per_label: usize,
}

impl Default for PruneConfig {
    fn default() -> Self {
        Self {
            identical_threshold: 0.999,
            fold_threshold: 0.5,
            merge_candidates_per_label: 64,
        }
    }
}

/// What a pruning run did.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PruneReport {
    /// `|HS|` before pruning.
    pub original_size: usize,
    /// `|HcS|` after pruning.
    pub final_size: usize,
    /// Number of leaves folded into parents.
    pub folds: usize,
    /// Number of leaves deleted.
    pub deletions: usize,
    /// Number of same-label merges performed.
    pub merges: usize,
}

impl PruneReport {
    /// The achieved compression ratio `α = |HcS| / |HS|`.
    pub fn ratio(&self) -> f64 {
        if self.original_size == 0 {
            1.0
        } else {
            self.final_size as f64 / self.original_size as f64
        }
    }
}

/// Estimated Jaccard similarity between the *full* matching sets of two
/// nodes, used to rank fold and merge candidates.
fn value_similarity(a: &SummaryValue, b: &SummaryValue) -> f64 {
    match (a, b) {
        (SummaryValue::Fraction(x), SummaryValue::Fraction(y)) => {
            if x.max(*y) == 0.0 {
                1.0
            } else {
                x.min(*y) / x.max(*y)
            }
        }
        _ => {
            let inter = a.intersect(b).count_units();
            let union = a.union(b).count_units();
            if union == 0.0 {
                1.0
            } else {
                (inter / union).min(1.0)
            }
        }
    }
}

impl Synopsis {
    /// Fold every leaf whose matching set is (estimated to be) identical to
    /// its parent's. This is the lossless first phase of pruning. Returns the
    /// number of folds performed.
    pub fn fold_identical_leaves(&mut self, threshold: f64) -> usize {
        let mut folds = 0;
        loop {
            self.prepare();
            let victims: Vec<SynopsisNodeId> = self
                .live_nodes()
                .into_iter()
                .filter(|&id| {
                    id != self.root()
                        && self.is_leaf(id)
                        && self.average_parent_similarity(id) >= threshold
                })
                .collect();
            if victims.is_empty() {
                return folds;
            }
            for leaf in victims {
                if self.is_alive(leaf) && self.is_leaf(leaf) {
                    self.fold_leaf(leaf);
                    folds += 1;
                }
            }
        }
    }

    /// Fold the leaf with the highest parent similarity, provided it is at
    /// least `min_similarity`. Returns the folded leaf's similarity, or
    /// `None` when no eligible leaf exists.
    pub fn fold_best_leaf(&mut self, min_similarity: f64) -> Option<f64> {
        self.prepare();
        let mut best: Option<(SynopsisNodeId, f64)> = None;
        for id in self.live_nodes() {
            if id == self.root() || !self.is_leaf(id) {
                continue;
            }
            let sim = self.average_parent_similarity(id);
            if sim >= min_similarity && best.map(|(_, s)| sim > s).unwrap_or(true) {
                best = Some((id, sim));
            }
        }
        let (leaf, sim) = best?;
        self.fold_leaf(leaf);
        Some(sim)
    }

    /// Average similarity of a leaf's matching set to its parents' (the
    /// paper averages over all parents when merges have produced several).
    fn average_parent_similarity(&self, leaf: SynopsisNodeId) -> f64 {
        let parents = self.parents(leaf);
        if parents.is_empty() {
            return 0.0;
        }
        let leaf_value = self.matching_value(leaf);
        let total: f64 = parents
            .iter()
            .map(|&p| value_similarity(&leaf_value, &self.matching_value(p)))
            .sum();
        total / parents.len() as f64
    }

    /// Fold a leaf into all of its parents: the parent's nested label gains
    /// the leaf's label (and previously folded labels), the parent summary
    /// becomes the union of both, and the leaf is removed.
    pub fn fold_leaf(&mut self, leaf: SynopsisNodeId) {
        debug_assert!(self.is_leaf(leaf) && leaf != self.root());
        let folded = FoldedSubtree {
            label: self.nodes[leaf.index()].label.clone(),
            children: self.nodes[leaf.index()].folded.clone(),
        };
        let leaf_summary = self.nodes[leaf.index()].summary.clone();
        let parents = self.nodes[leaf.index()].parents.clone();
        for p in parents {
            let parent = &mut self.nodes[p.index()];
            if !parent.folded.contains(&folded) {
                parent.folded.push(folded.clone());
            }
            parent.summary = parent.summary.union(&leaf_summary);
        }
        self.delete_node(leaf);
        self.invalidate_cache();
    }

    /// Delete the live leaf with the smallest (estimated) matching-set
    /// cardinality. Returns the deleted node's estimated cardinality.
    pub fn delete_lowest_cardinality_leaf(&mut self) -> Option<f64> {
        self.prepare();
        let mut best: Option<(SynopsisNodeId, f64)> = None;
        for id in self.live_nodes() {
            if id == self.root() || !self.is_leaf(id) {
                continue;
            }
            let count = self.matching_value(id).count_units();
            if best.map(|(_, c)| count < c).unwrap_or(true) {
                best = Some((id, count));
            }
        }
        let (leaf, count) = best?;
        self.delete_node(leaf);
        Some(count)
    }

    /// Merge the best same-label candidate pair (highest estimated matching
    /// set similarity). Only leaf/leaf pairs or pairs sharing identical child
    /// sets are eligible. Returns the similarity of the merged pair.
    pub fn merge_best_same_label_pair(&mut self, candidates_per_label: usize) -> Option<f64> {
        self.prepare();
        use std::collections::HashMap;
        let mut groups: HashMap<&str, Vec<SynopsisNodeId>> = HashMap::new();
        for id in self.live_nodes() {
            if id == self.root() {
                continue;
            }
            groups.entry(self.label(id)).or_default().push(id);
        }
        let mut best: Option<(SynopsisNodeId, SynopsisNodeId, f64)> = None;
        for (_, group) in groups.iter() {
            if group.len() < 2 {
                continue;
            }
            // Sort the group's nodes by matching-set size so that the
            // adjacent-pair heuristic compares nodes of similar cardinality;
            // evaluate at most `candidates_per_label` pairs per label.
            let mut with_counts: Vec<(SynopsisNodeId, f64)> = group
                .iter()
                .map(|&id| (id, self.matching_value(id).count_units()))
                .collect();
            with_counts.sort_by(|a, b| a.1.total_cmp(&b.1));
            let mut evaluated = 0;
            for window in with_counts.windows(2) {
                if evaluated >= candidates_per_label {
                    break;
                }
                let (a, b) = (window[0].0, window[1].0);
                if !self.mergeable(a, b) {
                    continue;
                }
                evaluated += 1;
                let sim = value_similarity(&self.matching_value(a), &self.matching_value(b));
                if best.map(|(_, _, s)| sim > s).unwrap_or(true) {
                    best = Some((a, b, sim));
                }
            }
        }
        let (a, b, sim) = best?;
        self.merge_nodes(a, b);
        Some(sim)
    }

    /// Whether two same-label nodes can be merged without introducing false
    /// label paths: both are leaves, or they share exactly the same children.
    fn mergeable(&self, a: SynopsisNodeId, b: SynopsisNodeId) -> bool {
        if a == b || self.label(a) != self.label(b) {
            return false;
        }
        if self.is_leaf(a) && self.is_leaf(b) {
            return true;
        }
        let mut ca: Vec<SynopsisNodeId> = self.children(a).to_vec();
        let mut cb: Vec<SynopsisNodeId> = self.children(b).to_vec();
        if ca.is_empty() || cb.is_empty() {
            return false;
        }
        ca.sort();
        ca.dedup();
        cb.sort();
        cb.dedup();
        ca == cb
    }

    /// Merge node `b` into node `a` (same label, eligible per the private `mergeable` test).
    /// `a` keeps the intersection of the summaries and inherits `b`'s parents
    /// and folded labels; `b` is removed. The synopsis may become a DAG.
    pub fn merge_nodes(&mut self, a: SynopsisNodeId, b: SynopsisNodeId) {
        debug_assert!(self.mergeable(a, b), "nodes are not mergeable");
        // Summaries: intersection preserves the parent-child inclusion
        // property for every parent of the merged node.
        let merged_summary = self.nodes[a.index()]
            .summary
            .intersection(&self.nodes[b.index()].summary);
        self.nodes[a.index()].summary = merged_summary;
        // Folded labels: keep the union of both nested label sets.
        let b_folded = self.nodes[b.index()].folded.clone();
        for f in b_folded {
            if !self.nodes[a.index()].folded.contains(&f) {
                self.nodes[a.index()].folded.push(f);
            }
        }
        // Rewire b's parents to point at a.
        let b_parents = self.nodes[b.index()].parents.clone();
        for p in b_parents {
            let children = &mut self.nodes[p.index()].children;
            children.retain(|&c| c != b);
            if !children.contains(&a) {
                children.push(a);
            }
            if !self.nodes[a.index()].parents.contains(&p) {
                self.nodes[a.index()].parents.push(p);
            }
        }
        // Children already coincide (or both are leaves); drop b from their
        // parent lists.
        let b_children = self.nodes[b.index()].children.clone();
        for c in b_children {
            self.nodes[c.index()].parents.retain(|&p| p != b);
            if !self.nodes[c.index()].parents.contains(&a) {
                self.nodes[c.index()].parents.push(a);
            }
        }
        let node = &mut self.nodes[b.index()];
        node.alive = false;
        node.children.clear();
        node.parents.clear();
        node.folded.clear();
        self.invalidate_cache();
    }

    /// Batched variant of the fold phase: one scan per round, folding every
    /// leaf whose average parent similarity is at least `threshold`, until
    /// the size target is reached or no eligible leaf remains. Returns the
    /// number of folds performed.
    pub fn fold_leaves_above_until(&mut self, threshold: f64, target_size: usize) -> usize {
        let mut folds = 0;
        loop {
            if self.size().total() <= target_size {
                return folds;
            }
            self.prepare();
            let mut candidates: Vec<(SynopsisNodeId, f64)> = self
                .live_nodes()
                .into_iter()
                .filter(|&id| id != self.root() && self.is_leaf(id))
                .map(|id| (id, self.average_parent_similarity(id)))
                .filter(|&(_, sim)| sim >= threshold)
                .collect();
            if candidates.is_empty() {
                return folds;
            }
            // Most similar first, as the paper prescribes.
            candidates.sort_by(|a, b| b.1.total_cmp(&a.1));
            for (leaf, _) in candidates {
                if self.size().total() <= target_size {
                    return folds;
                }
                // A previous fold in this batch may have removed the node.
                if self.is_alive(leaf) && self.is_leaf(leaf) {
                    self.fold_leaf(leaf);
                    folds += 1;
                }
            }
        }
    }

    /// Batched deletion of low-cardinality leaves: one scan per round,
    /// deleting leaves in increasing cardinality order until the size target
    /// is reached or no leaf remains. Returns the number of deletions.
    pub fn delete_smallest_leaves_until(&mut self, target_size: usize) -> usize {
        let mut deletions = 0;
        loop {
            if self.size().total() <= target_size {
                return deletions;
            }
            self.prepare();
            let mut candidates: Vec<(SynopsisNodeId, f64)> = self
                .live_nodes()
                .into_iter()
                .filter(|&id| id != self.root() && self.is_leaf(id))
                .map(|id| (id, self.matching_value(id).count_units()))
                .collect();
            if candidates.is_empty() {
                return deletions;
            }
            candidates.sort_by(|a, b| a.1.total_cmp(&b.1));
            let mut progressed = false;
            for (leaf, _) in candidates {
                if self.size().total() <= target_size {
                    return deletions;
                }
                if self.is_alive(leaf) && self.is_leaf(leaf) {
                    self.delete_node(leaf);
                    deletions += 1;
                    progressed = true;
                }
            }
            if !progressed {
                return deletions;
            }
        }
    }

    /// Batched same-label merging: each round performs one scan that ranks
    /// candidate pairs across all labels (most similar first) and applies as
    /// many disjoint merges as possible, until the size target is reached or
    /// no pair remains. Returns the number of merges.
    pub fn merge_same_label_until(
        &mut self,
        candidates_per_label: usize,
        target_size: usize,
    ) -> usize {
        use std::collections::HashMap;
        let mut merges = 0;
        loop {
            if self.size().total() <= target_size {
                return merges;
            }
            self.prepare();
            let mut groups: HashMap<String, Vec<SynopsisNodeId>> = HashMap::new();
            for id in self.live_nodes() {
                if id == self.root() {
                    continue;
                }
                groups
                    .entry(self.label(id).to_string())
                    .or_default()
                    .push(id);
            }
            let mut candidates: Vec<(SynopsisNodeId, SynopsisNodeId, f64)> = Vec::new();
            for (_, group) in groups.iter() {
                if group.len() < 2 {
                    continue;
                }
                let mut with_counts: Vec<(SynopsisNodeId, f64)> = group
                    .iter()
                    .map(|&id| (id, self.matching_value(id).count_units()))
                    .collect();
                with_counts.sort_by(|a, b| a.1.total_cmp(&b.1));
                let mut evaluated = 0;
                for window in with_counts.windows(2) {
                    if evaluated >= candidates_per_label {
                        break;
                    }
                    let (a, b) = (window[0].0, window[1].0);
                    if !self.mergeable(a, b) {
                        continue;
                    }
                    evaluated += 1;
                    let sim = value_similarity(&self.matching_value(a), &self.matching_value(b));
                    candidates.push((a, b, sim));
                }
            }
            if candidates.is_empty() {
                return merges;
            }
            candidates.sort_by(|x, y| y.2.total_cmp(&x.2));
            let mut progressed = false;
            for (a, b, _) in candidates {
                if self.size().total() <= target_size {
                    return merges;
                }
                // Skip pairs invalidated by earlier merges in this round.
                if !self.is_alive(a) || !self.is_alive(b) || !self.mergeable(a, b) {
                    continue;
                }
                self.merge_nodes(a, b);
                merges += 1;
                progressed = true;
            }
            if !progressed {
                return merges;
            }
        }
    }

    /// Prune the synopsis until its size is at most `alpha` times its current
    /// size (`0 < alpha <= 1`), applying the operations in the order the
    /// paper found effective: lossless folds, then lossy folds and deletions
    /// of low-cardinality leaves, and finally same-label merges.
    pub fn prune_to_ratio(&mut self, alpha: f64, config: PruneConfig) -> PruneReport {
        let original_size = self.size().total();
        let target = (alpha.clamp(0.0, 1.0) * original_size as f64).ceil() as usize;
        let mut report = PruneReport {
            original_size,
            final_size: original_size,
            ..PruneReport::default()
        };

        // Phase 1: lossless folds (bounded by the target so that a ratio of
        // 1.0 leaves the synopsis untouched).
        report.folds += self.fold_leaves_above_until(config.identical_threshold, target);
        report.final_size = self.size().total();
        if report.final_size <= target {
            return report;
        }

        // Phase 2: lossy folds of highly similar leaves, then deletions of
        // the lowest-cardinality leaves.
        loop {
            let before = self.size().total();
            if before <= target {
                break;
            }
            let folds = self.fold_leaves_above_until(config.fold_threshold, target);
            report.folds += folds;
            if self.size().total() <= target {
                break;
            }
            let deletions = self.delete_smallest_leaves_until(target);
            report.deletions += deletions;
            if folds == 0 && deletions == 0 {
                break;
            }
        }
        report.final_size = self.size().total();
        if report.final_size <= target {
            return report;
        }

        // Phase 3: same-label merges.
        report.merges += self.merge_same_label_until(config.merge_candidates_per_label, target);
        report.final_size = self.size().total();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::MatchingSetKind;
    use crate::synopsis::SynopsisConfig;
    use tps_xml::XmlTree;

    fn docs(texts: &[&str]) -> Vec<XmlTree> {
        texts.iter().map(|s| XmlTree::parse(s).unwrap()).collect()
    }

    fn child_by_label(s: &Synopsis, parent: SynopsisNodeId, label: &str) -> SynopsisNodeId {
        *s.children(parent)
            .iter()
            .find(|&&c| s.label(c) == label)
            .unwrap_or_else(|| panic!("no child {label}"))
    }

    #[test]
    fn fold_identical_leaves_is_applied_to_mandatory_children() {
        // Every document with "a" also has "a/b": folding b into a is
        // lossless.
        let d = docs(&["<a><b/><c/></a>", "<a><b/></a>", "<a><b/><d/></a>"]);
        let mut s = Synopsis::from_documents(SynopsisConfig::sets(100), &d);
        let before_nodes = s.node_count();
        let folds = s.fold_identical_leaves(0.999);
        assert!(folds >= 1);
        assert!(s.node_count() < before_nodes);
        let a = child_by_label(&s, s.root(), "a");
        assert!(
            s.folded(a).iter().any(|f| f.label.as_ref() == "b"),
            "b should be folded into a's nested label"
        );
    }

    #[test]
    fn fold_leaf_unions_summaries() {
        let d = docs(&["<a><b/></a>", "<a><c/></a>"]);
        let mut s = Synopsis::from_documents(SynopsisConfig::sets(100), &d);
        let a = child_by_label(&s, s.root(), "a");
        let b = child_by_label(&s, a, "b");
        s.fold_leaf(b);
        // a's summary still covers both documents.
        assert_eq!(s.matching_value(a).count_units(), 2.0);
        assert!(!s.is_alive(b));
    }

    #[test]
    fn delete_lowest_cardinality_leaf_picks_the_rarest_path() {
        let d = docs(&[
            "<a><common/></a>",
            "<a><common/></a>",
            "<a><common/></a>",
            "<a><rare/></a>",
        ]);
        let mut s = Synopsis::from_documents(SynopsisConfig::counters(), &d);
        let deleted = s.delete_lowest_cardinality_leaf().unwrap();
        assert!(deleted <= 0.25 + 1e-9);
        let a = child_by_label(&s, s.root(), "a");
        assert!(s.children(a).iter().all(|&c| s.label(c) != "rare"));
    }

    #[test]
    fn merge_same_label_leaves_creates_a_dag() {
        // Two "name" leaves under different parents with identical matching
        // sets.
        let d = docs(&["<r><x><name/></x><y><name/></y></r>"; 3]);
        let mut s = Synopsis::from_documents(SynopsisConfig::sets(100), &d);
        let before = s.node_count();
        let sim = s.merge_best_same_label_pair(16).expect("a merge happens");
        assert!(sim > 0.99);
        assert_eq!(s.node_count(), before - 1);
        // The surviving "name" node has two parents.
        let name_nodes: Vec<_> = s
            .live_nodes()
            .into_iter()
            .filter(|&id| s.label(id) == "name")
            .collect();
        assert_eq!(name_nodes.len(), 1);
        assert_eq!(s.parents(name_nodes[0]).len(), 2);
    }

    #[test]
    fn merge_keeps_intersection_of_summaries() {
        let d = docs(&[
            "<r><x><name/></x></r>",
            "<r><y><name/></y></r>",
            "<r><x><name/></x><y><name/></y></r>",
        ]);
        let mut s = Synopsis::from_documents(SynopsisConfig::sets(100), &d);
        s.merge_best_same_label_pair(16).unwrap();
        let name = s
            .live_nodes()
            .into_iter()
            .find(|&id| s.label(id) == "name")
            .unwrap();
        // Only document 2 contains both name paths.
        assert_eq!(s.matching_value(name).count_units(), 1.0);
    }

    #[test]
    fn mergeable_rejects_nodes_with_different_children() {
        let d = docs(&["<r><x><a/></x><y><b/></y></r>"]);
        let s = Synopsis::from_documents(SynopsisConfig::counters(), &d);
        // x and y have different labels anyway; check same-label non-leaves:
        // construct a case where two "x" nodes have different children.
        let d2 = docs(&["<r><g><x><a/></x></g><h><x><b/></x></h></r>"]);
        let mut s2 = Synopsis::from_documents(SynopsisConfig::counters(), &d2);
        // The only same-label candidates are the two x nodes, which are not
        // mergeable because their children differ (and are not leaves).
        assert!(s2.merge_best_same_label_pair(16).is_none());
        drop(s);
    }

    #[test]
    fn prune_to_ratio_reaches_the_target() {
        // A moderately rich synopsis.
        let mut texts = Vec::new();
        for i in 0..40 {
            texts.push(format!(
                "<a><b><e>k{}</e></b><c><f>n{}</f></c><d><g>m{}</g></d></a>",
                i % 7,
                i % 5,
                i % 3
            ));
        }
        let parsed: Vec<XmlTree> = texts.iter().map(|t| XmlTree::parse(t).unwrap()).collect();
        let mut s = Synopsis::from_documents(SynopsisConfig::hashes(32), &parsed);
        let original = s.size().total();
        let report = s.prune_to_ratio(0.4, PruneConfig::default());
        assert_eq!(report.original_size, original);
        assert!(
            report.final_size as f64 <= 0.45 * original as f64,
            "final {} vs original {}",
            report.final_size,
            original
        );
        assert!(report.folds + report.deletions + report.merges > 0);
        assert!(report.ratio() <= 0.45);
        // The synopsis is still usable: the root is alive and has children.
        assert!(s.is_alive(s.root()));
        assert!(s.document_count() > 0);
    }

    #[test]
    fn prune_to_ratio_one_only_does_lossless_folds() {
        let d = docs(&["<a><b/></a>", "<a><b/><c/></a>"]);
        let mut s = Synopsis::from_documents(SynopsisConfig::sets(10), &d);
        let report = s.prune_to_ratio(1.0, PruneConfig::default());
        assert_eq!(report.deletions, 0);
        assert_eq!(report.merges, 0);
    }

    #[test]
    fn counters_pruning_relies_on_deletions() {
        let d = docs(&[
            "<a><b/><x/></a>",
            "<a><b/><y/></a>",
            "<a><b/><z/></a>",
            "<a><b/></a>",
        ]);
        let mut s = Synopsis::from_documents(SynopsisConfig::counters(), &d);
        assert_eq!(s.kind(), MatchingSetKind::Counters);
        let report = s.prune_to_ratio(
            0.5,
            PruneConfig {
                // Disable lossy folds so the driver must delete.
                fold_threshold: 1.1,
                identical_threshold: 1.1,
                ..PruneConfig::default()
            },
        );
        assert!(report.deletions > 0);
    }

    #[test]
    fn prune_report_ratio_of_empty_synopsis_is_one() {
        let mut s = Synopsis::new(SynopsisConfig::counters());
        let report = s.prune_to_ratio(0.5, PruneConfig::default());
        assert!(report.ratio() >= 0.9);
    }
}
