//! Gibbons' distinct sampling (per-node hash samples).
//!
//! A [`DistinctSample`] maintains a bounded-size random sample of a set of
//! document identifiers. Every identifier is assigned a *level* by a shared
//! hash function (`Prob[level(x) ≥ l] = 2^{-l}`, see [`crate::hash`]); the
//! sample keeps exactly the identifiers whose level is at least the sample's
//! current level. When an insertion would exceed the capacity, the level is
//! incremented and the sample is sub-sampled, halving it in expectation.
//!
//! Because levels are deterministic, two samples built independently can be
//! combined: union and intersection first bring both sides to the same
//! (higher) level and then operate on the surviving identifiers. The true
//! cardinality of the underlying set is estimated as `|sample| · 2^level`.
//! These operations are exactly what the paper's selectivity algorithm needs
//! (Sections 3.2 and 4, following Gibbons VLDB'01 and Ganguly et al.
//! SIGMOD'03).

use std::collections::BTreeSet;

use crate::docid::DocId;
use crate::hash::sample_level;

/// Default hash seed used when none is specified.
pub const DEFAULT_SEED: u64 = 0x0005_EED0_FD15_71C7;

/// A bounded-size distinct sample of document identifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistinctSample {
    /// Identifiers currently in the sample (all have `level(x) >= level`).
    items: BTreeSet<DocId>,
    /// Current sampling level (sampling probability `2^-level`).
    level: u32,
    /// Maximum number of identifiers retained.
    capacity: usize,
    /// Seed of the shared level hash function.
    seed: u64,
}

impl DistinctSample {
    /// Create an empty sample with the given capacity and the default seed.
    pub fn new(capacity: usize) -> Self {
        Self::with_seed(capacity, DEFAULT_SEED)
    }

    /// Create an empty sample with the given capacity and hash seed.
    ///
    /// All samples that are ever combined (union / intersection) must use the
    /// same seed; the synopsis guarantees this by construction.
    pub fn with_seed(capacity: usize, seed: u64) -> Self {
        Self {
            items: BTreeSet::new(),
            level: 0,
            capacity: capacity.max(1),
            seed,
        }
    }

    /// Number of identifiers currently stored.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the sample currently stores no identifiers.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The sample's current level.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// The sample's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The hash seed used for level computation.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Iterate over the identifiers currently in the sample.
    pub fn iter(&self) -> impl Iterator<Item = DocId> + '_ {
        self.items.iter().copied()
    }

    /// Insert a document identifier.
    ///
    /// The identifier is retained only if its level is at least the sample's
    /// current level; if the sample overflows, the level is incremented and
    /// the sample sub-sampled.
    pub fn insert(&mut self, doc: DocId) {
        if sample_level(doc.as_u64(), self.seed) >= self.level {
            self.items.insert(doc);
            self.shrink_to_capacity();
        }
    }

    /// Remove an identifier if present (used when a document is retired).
    pub fn remove(&mut self, doc: DocId) {
        self.items.remove(&doc);
    }

    fn shrink_to_capacity(&mut self) {
        while self.items.len() > self.capacity {
            self.level += 1;
            let level = self.level;
            let seed = self.seed;
            self.items
                .retain(|d| sample_level(d.as_u64(), seed) >= level);
        }
    }

    /// Estimate of the cardinality of the underlying (unsampled) set.
    pub fn cardinality_estimate(&self) -> f64 {
        self.items.len() as f64 * 2f64.powi(self.level as i32)
    }

    /// Bring the sample down to `level` (dropping identifiers whose level is
    /// smaller). No-op if the sample is already at or above `level`.
    pub fn subsample_to_level(&mut self, level: u32) {
        if level <= self.level {
            return;
        }
        self.level = level;
        let seed = self.seed;
        self.items
            .retain(|d| sample_level(d.as_u64(), seed) >= level);
    }

    /// Union of two samples: a sample (of the union set) at level
    /// `max(l1, l2)`, further sub-sampled if it exceeds the capacity.
    pub fn union(&self, other: &DistinctSample) -> DistinctSample {
        debug_assert_eq!(self.seed, other.seed, "samples must share a hash seed");
        let mut result = self.clone();
        result.capacity = self.capacity.max(other.capacity);
        result.subsample_to_level(other.level);
        let level = result.level;
        let seed = result.seed;
        for doc in other.items.iter().copied() {
            if sample_level(doc.as_u64(), seed) >= level {
                result.items.insert(doc);
            }
        }
        result.shrink_to_capacity();
        result
    }

    /// Intersection of two samples: identifiers present in both sides once
    /// both are brought to the common level `max(l1, l2)`.
    pub fn intersect(&self, other: &DistinctSample) -> DistinctSample {
        debug_assert_eq!(self.seed, other.seed, "samples must share a hash seed");
        let level = self.level.max(other.level);
        let capacity = self.capacity.max(other.capacity);
        let mut items = BTreeSet::new();
        let (smaller, larger) = if self.items.len() <= other.items.len() {
            (&self.items, &other.items)
        } else {
            (&other.items, &self.items)
        };
        for doc in smaller.iter().copied() {
            if sample_level(doc.as_u64(), self.seed) >= level && larger.contains(&doc) {
                items.insert(doc);
            }
        }
        let mut result = DistinctSample {
            items,
            level,
            capacity,
            seed: self.seed,
        };
        result.shrink_to_capacity();
        result
    }

    /// An empty sample compatible with `self` (same capacity and seed, level
    /// 0).
    pub fn empty_like(&self) -> DistinctSample {
        DistinctSample::with_seed(self.capacity, self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(range: std::ops::Range<u64>) -> Vec<DocId> {
        range.map(DocId).collect()
    }

    #[test]
    fn small_sets_are_stored_exactly() {
        let mut s = DistinctSample::new(100);
        for d in ids(0..50) {
            s.insert(d);
        }
        assert_eq!(s.len(), 50);
        assert_eq!(s.level(), 0);
        assert_eq!(s.cardinality_estimate(), 50.0);
    }

    #[test]
    fn capacity_is_respected() {
        let mut s = DistinctSample::new(64);
        for d in ids(0..10_000) {
            s.insert(d);
        }
        assert!(s.len() <= 64);
        assert!(s.level() > 0);
    }

    #[test]
    fn cardinality_estimate_is_reasonable() {
        let n = 20_000u64;
        let mut s = DistinctSample::new(256);
        for d in ids(0..n) {
            s.insert(d);
        }
        let est = s.cardinality_estimate();
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.25, "estimate {est} too far from {n}");
    }

    #[test]
    fn duplicate_insertions_do_not_inflate_the_estimate() {
        let mut s = DistinctSample::new(128);
        for _ in 0..10 {
            for d in ids(0..1000) {
                s.insert(d);
            }
        }
        let est = s.cardinality_estimate();
        assert!((est - 1000.0).abs() / 1000.0 < 0.3, "estimate {est}");
    }

    #[test]
    fn union_estimates_union_cardinality() {
        let mut a = DistinctSample::new(256);
        let mut b = DistinctSample::new(256);
        for d in ids(0..8_000) {
            a.insert(d);
        }
        for d in ids(4_000..12_000) {
            b.insert(d);
        }
        let u = a.union(&b);
        let est = u.cardinality_estimate();
        let rel = (est - 12_000.0).abs() / 12_000.0;
        assert!(rel < 0.3, "union estimate {est}");
        assert!(u.len() <= u.capacity());
    }

    #[test]
    fn intersect_estimates_overlap_cardinality() {
        let mut a = DistinctSample::new(512);
        let mut b = DistinctSample::new(512);
        for d in ids(0..8_000) {
            a.insert(d);
        }
        for d in ids(4_000..12_000) {
            b.insert(d);
        }
        let i = a.intersect(&b);
        let est = i.cardinality_estimate();
        let rel = (est - 4_000.0).abs() / 4_000.0;
        assert!(rel < 0.4, "intersection estimate {est}");
    }

    #[test]
    fn intersect_of_disjoint_sets_is_empty() {
        let mut a = DistinctSample::new(128);
        let mut b = DistinctSample::new(128);
        for d in ids(0..2_000) {
            a.insert(d);
        }
        for d in ids(5_000..7_000) {
            b.insert(d);
        }
        let i = a.intersect(&b);
        assert_eq!(i.cardinality_estimate(), 0.0);
        assert!(i.is_empty());
    }

    #[test]
    fn union_with_empty_is_identity_estimate() {
        let mut a = DistinctSample::new(128);
        for d in ids(0..3_000) {
            a.insert(d);
        }
        let empty = a.empty_like();
        let u = a.union(&empty);
        assert_eq!(u.cardinality_estimate(), a.cardinality_estimate());
        let i = a.intersect(&empty);
        assert!(i.is_empty());
    }

    #[test]
    fn subsample_to_level_reduces_size() {
        let mut a = DistinctSample::new(4096);
        for d in ids(0..4_000) {
            a.insert(d);
        }
        let before = a.len();
        a.subsample_to_level(2);
        assert!(a.len() < before);
        assert_eq!(a.level(), 2);
        // Still estimates ~4000.
        let rel = (a.cardinality_estimate() - 4_000.0).abs() / 4_000.0;
        assert!(rel < 0.3);
    }

    #[test]
    fn remove_drops_the_identifier() {
        let mut a = DistinctSample::new(16);
        a.insert(DocId(1));
        a.insert(DocId(2));
        a.remove(DocId(1));
        let remaining: Vec<DocId> = a.iter().collect();
        assert_eq!(remaining, vec![DocId(2)]);
    }

    #[test]
    fn inclusion_property_of_unions() {
        // The union of children samples has a cardinality estimate at least
        // as large as each child's (up to sub-sampling noise at equal level).
        let mut a = DistinctSample::new(256);
        let mut b = DistinctSample::new(256);
        for d in ids(0..5_000) {
            a.insert(d);
        }
        for d in ids(2_000..6_000) {
            b.insert(d);
        }
        let u = a.union(&b);
        assert!(u.cardinality_estimate() >= a.cardinality_estimate() * 0.7);
        assert!(u.cardinality_estimate() >= b.cardinality_estimate() * 0.7);
    }
}
