//! Matching-set representations and the algebra used by selectivity
//! estimation.
//!
//! Section 3.2 of the paper proposes three ways to compress the matching set
//! `S(t)` stored at each synopsis node:
//!
//! * **Counters** — a single frequency counter; conjunctions are handled with
//!   an independence assumption (union → max, intersection → product of the
//!   corresponding probabilities).
//! * **Sets** — exact matching sets, but only over a fixed-size uniform
//!   sample of the document stream (keyed bottom-k reservoir sampling,
//!   order-independent and therefore shard-mergeable).
//! * **Hashes** — per-node bounded-size distinct samples (Gibbons), combined
//!   with level-aware union/intersection.
//!
//! [`NodeSummary`] is the per-node storage; [`SummaryValue`] is the value the
//! recursive selectivity function manipulates (the paper's Algorithm 1 works
//! on sets and notes the counter-mode substitution of max/product/value).

use std::collections::BTreeSet;

use crate::distinct::DistinctSample;
use crate::docid::DocId;

/// Which matching-set representation a synopsis uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchingSetKind {
    /// Simple per-node frequency counters.
    Counters,
    /// Exact matching sets over a document-level reservoir sample of the
    /// given capacity.
    Sets {
        /// Maximum number of documents in the reservoir (the paper's `k`).
        capacity: usize,
    },
    /// Per-node distinct-sampling hash samples of the given capacity
    /// (the paper's `h`).
    Hashes {
        /// Maximum number of entries per node sample.
        capacity: usize,
    },
}

impl MatchingSetKind {
    /// Counter-based matching sets (no size knob).
    pub fn counters() -> Self {
        MatchingSetKind::Counters
    }

    /// Exact matching sets over a document reservoir of `capacity` documents.
    pub fn sets(capacity: usize) -> Self {
        MatchingSetKind::Sets { capacity }
    }

    /// Per-node distinct hash samples of `capacity` entries each.
    pub fn hashes(capacity: usize) -> Self {
        MatchingSetKind::Hashes { capacity }
    }

    /// Short human-readable name, matching the paper's figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            MatchingSetKind::Counters => "Counters",
            MatchingSetKind::Sets { .. } => "Sets",
            MatchingSetKind::Hashes { .. } => "Hashes",
        }
    }
}

/// Per-node matching-set storage.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeSummary {
    /// Number of documents whose matching set contains this node.
    Counter(u64),
    /// Sampled document identifiers containing this node (Sets mode).
    Set(BTreeSet<DocId>),
    /// Distinct sample of the documents whose skeleton path *ends* at this
    /// node (Hashes mode); the full matching set is the union over the
    /// node's descendants.
    Hash(DistinctSample),
}

impl NodeSummary {
    /// An empty summary of the given kind. `seed` parameterises the hash
    /// sample's level function and must be shared across the synopsis.
    pub fn empty(kind: MatchingSetKind, seed: u64) -> Self {
        match kind {
            MatchingSetKind::Counters => NodeSummary::Counter(0),
            MatchingSetKind::Sets { .. } => NodeSummary::Set(BTreeSet::new()),
            MatchingSetKind::Hashes { capacity } => {
                NodeSummary::Hash(DistinctSample::with_seed(capacity, seed))
            }
        }
    }

    /// Record that `doc` belongs to this node's matching set.
    pub fn insert(&mut self, doc: DocId) {
        match self {
            NodeSummary::Counter(c) => *c += 1,
            NodeSummary::Set(s) => {
                s.insert(doc);
            }
            NodeSummary::Hash(h) => h.insert(doc),
        }
    }

    /// Remove a document (used when the reservoir evicts it). A no-op for
    /// counters, which cannot forget.
    pub fn remove(&mut self, doc: DocId) {
        match self {
            NodeSummary::Counter(_) => {}
            NodeSummary::Set(s) => {
                s.remove(&doc);
            }
            NodeSummary::Hash(h) => h.remove(doc),
        }
    }

    /// Number of stored entries, for size accounting (`|HS|` counts every
    /// hash/set entry; a counter is a single word).
    pub fn entries(&self) -> usize {
        match self {
            NodeSummary::Counter(_) => 1,
            NodeSummary::Set(s) => s.len(),
            NodeSummary::Hash(h) => h.len(),
        }
    }

    /// Estimated number of documents in the (full) matching set represented
    /// by this summary alone.
    pub fn count_estimate(&self) -> f64 {
        match self {
            NodeSummary::Counter(c) => *c as f64,
            NodeSummary::Set(s) => s.len() as f64,
            NodeSummary::Hash(h) => h.cardinality_estimate(),
        }
    }

    /// Whether the summary holds no documents at all.
    pub fn is_empty(&self) -> bool {
        match self {
            NodeSummary::Counter(c) => *c == 0,
            NodeSummary::Set(s) => s.is_empty(),
            NodeSummary::Hash(h) => h.is_empty(),
        }
    }

    /// Union of two summaries (used when *folding* a leaf into its parent:
    /// the folded node's matching set is the union of both).
    pub fn union(&self, other: &NodeSummary) -> NodeSummary {
        match (self, other) {
            (NodeSummary::Counter(a), NodeSummary::Counter(b)) => NodeSummary::Counter(*a.max(b)),
            (NodeSummary::Set(a), NodeSummary::Set(b)) => {
                NodeSummary::Set(a.union(b).copied().collect())
            }
            (NodeSummary::Hash(a), NodeSummary::Hash(b)) => NodeSummary::Hash(a.union(b)),
            _ => panic!("cannot combine summaries of different kinds"),
        }
    }

    /// Intersection of two summaries (used when *merging* same-label nodes:
    /// the merged node keeps `S(t) ∩ S(t')`, preserving the parent-child
    /// inclusion property).
    pub fn intersection(&self, other: &NodeSummary) -> NodeSummary {
        match (self, other) {
            (NodeSummary::Counter(a), NodeSummary::Counter(b)) => NodeSummary::Counter(*a.min(b)),
            (NodeSummary::Set(a), NodeSummary::Set(b)) => {
                NodeSummary::Set(a.intersection(b).copied().collect())
            }
            (NodeSummary::Hash(a), NodeSummary::Hash(b)) => NodeSummary::Hash(a.intersect(b)),
            _ => panic!("cannot combine summaries of different kinds"),
        }
    }

    /// Estimated Jaccard similarity `|S(t) ∩ S(t')| / |S(t) ∪ S(t')|` between
    /// two summaries, used to rank candidate pairs for merging and folding.
    pub fn jaccard(&self, other: &NodeSummary) -> f64 {
        match (self, other) {
            (NodeSummary::Counter(a), NodeSummary::Counter(b)) => {
                // Counters cannot express overlap; use the best-case bound
                // min/max, which is what an inclusion assumption gives.
                let (a, b) = (*a as f64, *b as f64);
                if a.max(b) == 0.0 {
                    1.0
                } else {
                    a.min(b) / a.max(b)
                }
            }
            (NodeSummary::Set(a), NodeSummary::Set(b)) => {
                let inter = a.intersection(b).count() as f64;
                let union = (a.len() + b.len()) as f64 - inter;
                if union == 0.0 {
                    1.0
                } else {
                    inter / union
                }
            }
            (NodeSummary::Hash(a), NodeSummary::Hash(b)) => {
                let inter = a.intersect(b).cardinality_estimate();
                let union = a.union(b).cardinality_estimate();
                if union == 0.0 {
                    1.0
                } else {
                    (inter / union).min(1.0)
                }
            }
            _ => panic!("cannot compare summaries of different kinds"),
        }
    }
}

/// A value manipulated by the recursive selectivity function `SEL`.
///
/// * In Counters mode the value is a *probability* (fraction of documents);
///   union is `max`, intersection is the product (independence assumption) —
///   exactly the substitution described at the end of Section 4.
/// * In Sets mode the value is an explicit set of sampled document ids.
/// * In Hashes mode the value is a distinct sample; union/intersection are
///   the level-aware sample operations.
#[derive(Debug, Clone, PartialEq)]
pub enum SummaryValue {
    /// Counters mode: a fraction of the document stream in `[0, 1]`.
    Fraction(f64),
    /// Sets mode: explicit sampled document identifiers.
    Set(BTreeSet<DocId>),
    /// Hashes mode: a distinct sample.
    Hash(DistinctSample),
}

impl SummaryValue {
    /// The empty (zero-selectivity) value of the given kind.
    pub fn empty(kind: MatchingSetKind, seed: u64) -> Self {
        match kind {
            MatchingSetKind::Counters => SummaryValue::Fraction(0.0),
            MatchingSetKind::Sets { .. } => SummaryValue::Set(BTreeSet::new()),
            MatchingSetKind::Hashes { capacity } => {
                SummaryValue::Hash(DistinctSample::with_seed(capacity, seed))
            }
        }
    }

    /// Union (`∪` of Algorithm 1; `max` in counters mode).
    pub fn union(&self, other: &SummaryValue) -> SummaryValue {
        match (self, other) {
            (SummaryValue::Fraction(a), SummaryValue::Fraction(b)) => {
                SummaryValue::Fraction(a.max(*b))
            }
            (SummaryValue::Set(a), SummaryValue::Set(b)) => {
                SummaryValue::Set(a.union(b).copied().collect())
            }
            (SummaryValue::Hash(a), SummaryValue::Hash(b)) => SummaryValue::Hash(a.union(b)),
            _ => panic!("cannot combine selectivity values of different kinds"),
        }
    }

    /// Intersection (`∩` of Algorithm 1; product in counters mode).
    pub fn intersect(&self, other: &SummaryValue) -> SummaryValue {
        match (self, other) {
            (SummaryValue::Fraction(a), SummaryValue::Fraction(b)) => SummaryValue::Fraction(a * b),
            (SummaryValue::Set(a), SummaryValue::Set(b)) => {
                SummaryValue::Set(a.intersection(b).copied().collect())
            }
            (SummaryValue::Hash(a), SummaryValue::Hash(b)) => SummaryValue::Hash(a.intersect(b)),
            _ => panic!("cannot combine selectivity values of different kinds"),
        }
    }

    /// Cardinality in representation-specific units: the fraction itself for
    /// counters, the number of sampled documents for sets, the estimated
    /// number of documents for hashes. Selectivities are always computed as a
    /// ratio of two values of the same representation, so the units cancel.
    pub fn count_units(&self) -> f64 {
        match self {
            SummaryValue::Fraction(f) => *f,
            SummaryValue::Set(s) => s.len() as f64,
            SummaryValue::Hash(h) => h.cardinality_estimate(),
        }
    }

    /// Whether the value denotes the empty document set.
    pub fn is_empty(&self) -> bool {
        self.count_units() == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u64]) -> BTreeSet<DocId> {
        ids.iter().copied().map(DocId).collect()
    }

    #[test]
    fn kind_names_match_paper_legends() {
        assert_eq!(MatchingSetKind::Counters.name(), "Counters");
        assert_eq!(MatchingSetKind::Sets { capacity: 5 }.name(), "Sets");
        assert_eq!(MatchingSetKind::Hashes { capacity: 5 }.name(), "Hashes");
    }

    #[test]
    fn counter_summary_counts_insertions() {
        let mut s = NodeSummary::empty(MatchingSetKind::Counters, 0);
        for i in 0..5 {
            s.insert(DocId(i));
        }
        assert_eq!(s.count_estimate(), 5.0);
        assert_eq!(s.entries(), 1);
        s.remove(DocId(0));
        assert_eq!(s.count_estimate(), 5.0, "counters cannot forget");
    }

    #[test]
    fn set_summary_tracks_members_exactly() {
        let mut s = NodeSummary::empty(MatchingSetKind::Sets { capacity: 100 }, 0);
        s.insert(DocId(1));
        s.insert(DocId(2));
        s.insert(DocId(1));
        assert_eq!(s.count_estimate(), 2.0);
        assert_eq!(s.entries(), 2);
        s.remove(DocId(1));
        assert_eq!(s.count_estimate(), 1.0);
    }

    #[test]
    fn hash_summary_respects_capacity() {
        let mut s = NodeSummary::empty(MatchingSetKind::Hashes { capacity: 32 }, 1);
        for i in 0..10_000 {
            s.insert(DocId(i));
        }
        assert!(s.entries() <= 32);
        let est = s.count_estimate();
        assert!((est - 10_000.0).abs() / 10_000.0 < 0.5);
    }

    #[test]
    fn union_and_intersection_of_sets() {
        let a = NodeSummary::Set(set(&[1, 2, 3]));
        let b = NodeSummary::Set(set(&[2, 3, 4]));
        assert_eq!(a.union(&b).count_estimate(), 4.0);
        assert_eq!(a.intersection(&b).count_estimate(), 2.0);
        assert!((a.jaccard(&b) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn union_and_intersection_of_counters() {
        let a = NodeSummary::Counter(10);
        let b = NodeSummary::Counter(4);
        assert_eq!(a.union(&b).count_estimate(), 10.0);
        assert_eq!(a.intersection(&b).count_estimate(), 4.0);
        assert!((a.jaccard(&b) - 0.4).abs() < 1e-9);
    }

    #[test]
    fn jaccard_of_identical_sets_is_one() {
        let a = NodeSummary::Set(set(&[5, 6]));
        assert_eq!(a.jaccard(&a), 1.0);
        let empty = NodeSummary::Set(set(&[]));
        assert_eq!(empty.jaccard(&empty), 1.0);
    }

    #[test]
    #[should_panic(expected = "different kinds")]
    fn mixing_summary_kinds_panics() {
        let a = NodeSummary::Counter(1);
        let b = NodeSummary::Set(set(&[1]));
        let _ = a.union(&b);
    }

    #[test]
    fn fraction_value_algebra_matches_paper_example() {
        // Section 3.2: p = a[b][d] with P(a/b) = P(a/d) = 1/2 estimated as
        // 1/2 * 1/2 = 1/4 under the counter independence assumption.
        let b = SummaryValue::Fraction(0.5);
        let d = SummaryValue::Fraction(0.5);
        assert_eq!(b.intersect(&d).count_units(), 0.25);
        assert_eq!(b.union(&d).count_units(), 0.5);
    }

    #[test]
    fn set_value_algebra_is_exact() {
        let a = SummaryValue::Set(set(&[1, 2, 3]));
        let b = SummaryValue::Set(set(&[3, 4]));
        assert_eq!(a.union(&b).count_units(), 4.0);
        assert_eq!(a.intersect(&b).count_units(), 1.0);
        assert!(!a.is_empty());
        assert!(SummaryValue::Set(set(&[])).is_empty());
    }

    #[test]
    fn hash_value_algebra_estimates_overlap() {
        let mut a = DistinctSample::new(256);
        let mut b = DistinctSample::new(256);
        for i in 0..4_000 {
            a.insert(DocId(i));
        }
        for i in 2_000..6_000 {
            b.insert(DocId(i));
        }
        let va = SummaryValue::Hash(a);
        let vb = SummaryValue::Hash(b);
        let union = va.union(&vb).count_units();
        let inter = va.intersect(&vb).count_units();
        assert!((union - 6_000.0).abs() / 6_000.0 < 0.35, "union {union}");
        assert!(
            (inter - 2_000.0).abs() / 2_000.0 < 0.5,
            "intersection {inter}"
        );
    }

    #[test]
    fn empty_values_behave_as_zero() {
        for kind in [
            MatchingSetKind::Counters,
            MatchingSetKind::Sets { capacity: 8 },
            MatchingSetKind::Hashes { capacity: 8 },
        ] {
            let v = SummaryValue::empty(kind, 0);
            assert!(v.is_empty());
            assert_eq!(v.count_units(), 0.0);
        }
    }
}
