//! Hash functions used by the sampling summaries.
//!
//! Gibbons' distinct sampling needs a hash function `h` mapping element
//! identifiers to *levels* such that `Prob[h(x) ≥ l] = 2^{-l}`. We obtain the
//! level as the number of trailing zero bits of a 64-bit mix of the document
//! identifier. The mix is [SplitMix64], a well-studied finaliser with good
//! avalanche behaviour; it is deterministic so that two independently
//! maintained samples agree on every element's level, which is what makes
//! sample union/intersection meaningful.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

/// A 64-bit mixing function (SplitMix64 finaliser).
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash a document identifier with a seed (different seeds give independent
/// sampling functions, used by tests to measure estimator variance).
#[inline]
pub fn hash_doc(doc: u64, seed: u64) -> u64 {
    splitmix64(doc ^ splitmix64(seed))
}

/// The sampling level of a document: `level(x) = trailing_zeros(h(x))`,
/// so that `Prob[level(x) ≥ l] = 2^{-l}`.
#[inline]
pub fn sample_level(doc: u64, seed: u64) -> u32 {
    let h = hash_doc(doc, seed);
    // An all-zero hash would report 64 trailing zeros; cap the level so that
    // `1 << level` never overflows in cardinality estimation.
    h.trailing_zeros().min(62)
}

/// Hash a string label to a 64-bit value (used for size accounting and by
/// the synopsis label index).
pub fn hash_label(label: &str) -> u64 {
    // FNV-1a, then mixed; good enough for non-adversarial tag names.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    splitmix64(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixes() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
        assert_ne!(splitmix64(0), 0);
    }

    #[test]
    fn levels_are_deterministic() {
        for doc in 0..100u64 {
            assert_eq!(sample_level(doc, 7), sample_level(doc, 7));
        }
    }

    #[test]
    fn level_distribution_is_roughly_geometric() {
        // Over many documents, about half should have level >= 1, a quarter
        // level >= 2, etc.
        let n = 100_000u64;
        let mut at_least = [0u64; 8];
        for doc in 0..n {
            let l = sample_level(doc, 123);
            for (bucket, count) in at_least.iter_mut().enumerate() {
                if l as usize >= bucket {
                    *count += 1;
                }
            }
        }
        for (l, &count) in at_least.iter().enumerate() {
            let expected = n as f64 / 2f64.powi(l as i32);
            let ratio = count as f64 / expected;
            assert!(
                (0.9..1.1).contains(&ratio),
                "level >= {l}: observed {count}, expected {expected}"
            );
        }
    }

    #[test]
    fn different_seeds_give_different_levels_somewhere() {
        let differs = (0..1000u64).any(|doc| sample_level(doc, 1) != sample_level(doc, 2));
        assert!(differs);
    }

    #[test]
    fn label_hash_distinguishes_labels() {
        assert_ne!(hash_label("a"), hash_label("b"));
        assert_eq!(hash_label("media"), hash_label("media"));
    }

    #[test]
    fn level_is_capped() {
        for doc in 0..10_000u64 {
            assert!(sample_level(doc, 0) <= 62);
        }
    }
}
