//! Vitter reservoir sampling over the document stream.
//!
//! The *Sets* representation of matching sets (Section 3.2) keeps full,
//! exact matching sets — but only for a fixed-size uniform random sample of
//! the document stream. The reservoir decides, for the `k`-th document, with
//! probability `min{1, s/k}` whether it enters the sample; when the reservoir
//! is full, the newcomer replaces a uniformly random current member, whose
//! identifier must then be removed from every synopsis node.

use rand::Rng;

use crate::docid::DocId;

/// The decision taken by the reservoir for one arriving document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReservoirDecision {
    /// The document was not selected; the synopsis is left untouched.
    Skip,
    /// The document was selected and there was a free slot.
    Insert,
    /// The document was selected and replaces `evicted`, which must be
    /// removed from all synopsis nodes.
    Replace {
        /// The document identifier that leaves the sample.
        evicted: DocId,
    },
}

/// A fixed-size uniform sample of the document stream (Vitter's algorithm R).
#[derive(Debug, Clone)]
pub struct ReservoirSampler {
    sample: Vec<DocId>,
    capacity: usize,
    /// Number of documents offered so far (the `k` of `min{1, s/k}`).
    seen: u64,
}

impl ReservoirSampler {
    /// Create an empty reservoir with room for `capacity` documents.
    pub fn new(capacity: usize) -> Self {
        Self {
            sample: Vec::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            seen: 0,
        }
    }

    /// Number of documents currently in the sample.
    pub fn len(&self) -> usize {
        self.sample.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sample.is_empty()
    }

    /// Capacity of the reservoir.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of documents offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The sampled document identifiers.
    pub fn sample(&self) -> &[DocId] {
        &self.sample
    }

    /// Whether `doc` is currently in the sample.
    pub fn contains(&self, doc: DocId) -> bool {
        self.sample.contains(&doc)
    }

    /// Offer the next stream document to the reservoir and return the
    /// decision. The caller is responsible for applying the decision to the
    /// synopsis (inserting the new document / removing the evicted one).
    pub fn offer<R: Rng + ?Sized>(&mut self, doc: DocId, rng: &mut R) -> ReservoirDecision {
        self.seen += 1;
        if self.sample.len() < self.capacity {
            self.sample.push(doc);
            return ReservoirDecision::Insert;
        }
        // Include with probability s/k.
        let k = self.seen;
        let s = self.capacity as u64;
        if rng.gen_range(0..k) < s {
            let victim_index = rng.gen_range(0..self.sample.len());
            let evicted = self.sample[victim_index];
            self.sample[victim_index] = doc;
            ReservoirDecision::Replace { evicted }
        } else {
            ReservoirDecision::Skip
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fills_up_to_capacity_first() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut r = ReservoirSampler::new(10);
        for i in 0..10u64 {
            assert_eq!(r.offer(DocId(i), &mut rng), ReservoirDecision::Insert);
        }
        assert_eq!(r.len(), 10);
        assert_eq!(r.seen(), 10);
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut r = ReservoirSampler::new(16);
        for i in 0..10_000u64 {
            r.offer(DocId(i), &mut rng);
        }
        assert_eq!(r.len(), 16);
        assert_eq!(r.seen(), 10_000);
    }

    #[test]
    fn replace_reports_a_member_that_was_present() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut r = ReservoirSampler::new(4);
        for i in 0..4u64 {
            r.offer(DocId(i), &mut rng);
        }
        let mut replaced = 0;
        for i in 4..1000u64 {
            let before = r.sample().to_vec();
            match r.offer(DocId(i), &mut rng) {
                ReservoirDecision::Replace { evicted } => {
                    replaced += 1;
                    assert!(before.contains(&evicted));
                    assert!(r.contains(DocId(i)));
                    assert!(!r.contains(evicted));
                }
                ReservoirDecision::Skip => {
                    assert!(!r.contains(DocId(i)));
                }
                ReservoirDecision::Insert => panic!("reservoir is already full"),
            }
        }
        assert!(replaced > 0, "some replacements must occur");
    }

    #[test]
    fn sampling_is_approximately_uniform() {
        // Each of the first 1000 documents should end up in a size-100
        // reservoir with probability ~0.1; run many independent streams and
        // check the inclusion frequency of document 0.
        let trials = 2_000;
        let mut included = 0;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(1000 + t);
            let mut r = ReservoirSampler::new(100);
            for i in 0..1000u64 {
                r.offer(DocId(i), &mut rng);
            }
            if r.contains(DocId(0)) {
                included += 1;
            }
        }
        let freq = included as f64 / trials as f64;
        assert!(
            (0.07..0.13).contains(&freq),
            "inclusion frequency {freq} should be near 0.1"
        );
    }

    #[test]
    fn small_streams_are_kept_entirely() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut r = ReservoirSampler::new(1000);
        for i in 0..50u64 {
            r.offer(DocId(i), &mut rng);
        }
        assert_eq!(r.len(), 50);
        for i in 0..50u64 {
            assert!(r.contains(DocId(i)));
        }
    }
}
