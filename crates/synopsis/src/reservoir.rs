//! Keyed (bottom-k) reservoir sampling over the document stream.
//!
//! The *Sets* representation of matching sets (Section 3.2) keeps full,
//! exact matching sets — but only for a fixed-size uniform random sample of
//! the document stream. Classic Vitter sampling draws its inclusion and
//! eviction decisions from a sequential RNG, which makes the sample depend
//! on arrival order and therefore impossible to build shard-wise. This
//! implementation uses the equivalent *order sampling* (bottom-k) scheme
//! instead: every document identifier is assigned a deterministic
//! pseudo-random key by a seeded hash, and the reservoir is exactly the `k`
//! documents with the smallest keys seen so far. Because the key is a pure
//! function of `(seed, doc)`:
//!
//! * the sample is still a uniform random `k`-subset of the stream (all
//!   `k`-subsets are equally likely over the hash randomness),
//! * the final sample is a deterministic, order-independent function of the
//!   observed identifier *set*, and
//! * two reservoirs built over disjoint shards of the stream merge exactly:
//!   the bottom-`k` of a union is the bottom-`k` of the shard bottom-`k`s.
//!
//! That last property is what makes the whole Sets synopsis mergeable
//! ([`crate::Synopsis::merge`]): a sequential build over the full stream and
//! a shard-then-merge build produce identical samples, hence identical
//! matching sets.

use crate::docid::DocId;
use crate::hash::hash_doc;

/// The decision taken by the reservoir for one arriving document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReservoirDecision {
    /// The document was not selected; the synopsis is left untouched.
    Skip,
    /// The document was selected and there was a free slot.
    Insert,
    /// The document was selected and replaces `evicted`, which must be
    /// removed from all synopsis nodes.
    Replace {
        /// The document identifier that leaves the sample.
        evicted: DocId,
    },
}

/// A fixed-size uniform sample of the document stream (bottom-k order
/// sampling with a deterministic per-document key).
#[derive(Debug, Clone)]
pub struct ReservoirSampler {
    /// `(key, doc)` pairs currently sampled; unordered.
    entries: Vec<(u64, DocId)>,
    capacity: usize,
    /// Number of documents offered so far.
    seen: u64,
    /// Seed of the key hash; all reservoirs that are ever merged must share
    /// it (the synopsis guarantees this by construction).
    seed: u64,
    /// Cached index of the largest-key entry (the eviction threshold),
    /// recomputed lazily after a mutation invalidates it. Keeps the common
    /// full-reservoir *skip* path at one comparison instead of an
    /// O(capacity) scan per offered document.
    max_index: Option<usize>,
}

impl ReservoirSampler {
    /// Create an empty reservoir with room for `capacity` documents, keyed
    /// with the default seed.
    pub fn new(capacity: usize) -> Self {
        Self::with_seed(capacity, crate::distinct::DEFAULT_SEED)
    }

    /// Create an empty reservoir with room for `capacity` documents, keyed
    /// with the given hash seed.
    pub fn with_seed(capacity: usize, seed: u64) -> Self {
        Self {
            entries: Vec::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            seen: 0,
            seed,
            max_index: None,
        }
    }

    /// The sampling key of a document: a deterministic hash of `(seed, doc)`.
    /// The reservoir holds the documents with the `capacity` smallest keys.
    /// Ties (astronomically unlikely) break on the identifier itself.
    fn key(&self, doc: DocId) -> u64 {
        hash_doc(doc.as_u64(), self.seed ^ RESERVOIR_SALT)
    }

    /// Number of documents currently in the sample.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Capacity of the reservoir.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The key-hash seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of documents offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The sampled document identifiers (in no particular order).
    pub fn sample(&self) -> Vec<DocId> {
        self.entries.iter().map(|&(_, doc)| doc).collect()
    }

    /// Whether `doc` is currently in the sample.
    pub fn contains(&self, doc: DocId) -> bool {
        self.entries.iter().any(|&(_, d)| d == doc)
    }

    /// Index of the entry with the largest key (the next eviction victim),
    /// cached between mutations.
    fn argmax(&mut self) -> Option<usize> {
        if self.max_index.is_none() {
            self.max_index = self
                .entries
                .iter()
                .enumerate()
                .max_by_key(|&(_, &(key, doc))| (key, doc.as_u64()))
                .map(|(i, _)| i);
        }
        self.max_index
    }

    /// The decision [`offer`](Self::offer) *would* take for `doc`, without
    /// mutating the reservoir. Streaming ingest uses this to decide up front
    /// whether a document's skeleton needs to be folded at all, and commits
    /// with `offer` (which then returns the identical decision) only after
    /// the document scanned successfully.
    pub fn peek(&self, doc: DocId) -> ReservoirDecision {
        if self.entries.len() < self.capacity {
            return ReservoirDecision::Insert;
        }
        let key = self.key(doc);
        // Same last-max tie-break as the cached `argmax`.
        // invariant: the reservoir is full here, hence non-empty
        let &(victim_key, victim_doc) = self
            .entries
            .iter()
            .max_by_key(|&&(key, doc)| (key, doc.as_u64()))
            .expect("reservoir is full, hence non-empty");
        if (key, doc.as_u64()) < (victim_key, victim_doc.as_u64()) {
            ReservoirDecision::Replace {
                evicted: victim_doc,
            }
        } else {
            ReservoirDecision::Skip
        }
    }

    /// Offer the next stream document to the reservoir and return the
    /// decision. The caller is responsible for applying the decision to the
    /// synopsis (inserting the new document / removing the evicted one).
    ///
    /// The decision is a pure function of the identifier set offered so far,
    /// not of the arrival order: a document ends up in the sample iff its
    /// key is among the `capacity` smallest.
    pub fn offer(&mut self, doc: DocId) -> ReservoirDecision {
        self.seen += 1;
        let key = self.key(doc);
        if self.entries.len() < self.capacity {
            self.entries.push((key, doc));
            self.max_index = None;
            return ReservoirDecision::Insert;
        }
        // invariant: the reservoir is full here, hence non-empty
        let victim_index = self.argmax().expect("reservoir is full, hence non-empty");
        let (victim_key, victim_doc) = self.entries[victim_index];
        if (key, doc.as_u64()) < (victim_key, victim_doc.as_u64()) {
            self.entries[victim_index] = (key, doc);
            // The replacement has a smaller key, so some other entry may now
            // carry the maximum.
            self.max_index = None;
            ReservoirDecision::Replace {
                evicted: victim_doc,
            }
        } else {
            ReservoirDecision::Skip
        }
    }

    /// Merge another reservoir (built over a *disjoint* shard of the same
    /// stream, with the same seed and capacity) into this one, keeping the
    /// global bottom-`k`. Returns the identifiers evicted from either side,
    /// which the caller must remove from every synopsis node.
    pub fn merge(&mut self, other: &ReservoirSampler) -> Vec<DocId> {
        debug_assert_eq!(self.seed, other.seed, "reservoirs must share a seed");
        debug_assert_eq!(
            self.capacity, other.capacity,
            "reservoirs must share a capacity"
        );
        self.seen += other.seen;
        self.entries.extend(other.entries.iter().copied());
        self.max_index = None;
        if self.entries.len() <= self.capacity {
            return Vec::new();
        }
        self.entries
            .sort_unstable_by_key(|&(key, doc)| (key, doc.as_u64()));
        self.entries
            .split_off(self.capacity)
            .into_iter()
            .map(|(_, doc)| doc)
            .collect()
    }
}

/// Domain-separation salt: the reservoir key hash must be independent of
/// the distinct-sampling level hash even though both derive from the same
/// synopsis seed.
const RESERVOIR_SALT: u64 = 0x5EED_B0B5_0FF5_E701;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_up_to_capacity_first() {
        let mut r = ReservoirSampler::new(10);
        for i in 0..10u64 {
            assert_eq!(r.offer(DocId(i)), ReservoirDecision::Insert);
        }
        assert_eq!(r.len(), 10);
        assert_eq!(r.seen(), 10);
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut r = ReservoirSampler::new(16);
        for i in 0..10_000u64 {
            r.offer(DocId(i));
        }
        assert_eq!(r.len(), 16);
        assert_eq!(r.seen(), 10_000);
    }

    #[test]
    fn replace_reports_a_member_that_was_present() {
        let mut r = ReservoirSampler::new(4);
        for i in 0..4u64 {
            r.offer(DocId(i));
        }
        let mut replaced = 0;
        for i in 4..1000u64 {
            let before = r.sample();
            match r.offer(DocId(i)) {
                ReservoirDecision::Replace { evicted } => {
                    replaced += 1;
                    assert!(before.contains(&evicted));
                    assert!(r.contains(DocId(i)));
                    assert!(!r.contains(evicted));
                }
                ReservoirDecision::Skip => {
                    assert!(!r.contains(DocId(i)));
                }
                ReservoirDecision::Insert => panic!("reservoir is already full"),
            }
        }
        assert!(replaced > 0, "some replacements must occur");
    }

    #[test]
    fn peek_predicts_offer_exactly() {
        let mut r = ReservoirSampler::new(8);
        for i in 0..2_000u64 {
            let predicted = r.peek(DocId(i));
            let actual = r.offer(DocId(i));
            assert_eq!(predicted, actual, "doc {i}");
        }
        // `peek` never mutates: seen counts only the offers.
        assert_eq!(r.seen(), 2_000);
    }

    #[test]
    fn sampling_is_approximately_uniform() {
        // Each of the first 1000 documents should end up in a size-100
        // reservoir with probability ~0.1; run many independent seeds and
        // check the inclusion frequency of document 0.
        let trials = 2_000;
        let mut included = 0;
        for t in 0..trials {
            let mut r = ReservoirSampler::with_seed(100, 1000 + t);
            for i in 0..1000u64 {
                r.offer(DocId(i));
            }
            if r.contains(DocId(0)) {
                included += 1;
            }
        }
        let freq = included as f64 / trials as f64;
        assert!(
            (0.07..0.13).contains(&freq),
            "inclusion frequency {freq} should be near 0.1"
        );
    }

    #[test]
    fn small_streams_are_kept_entirely() {
        let mut r = ReservoirSampler::new(1000);
        for i in 0..50u64 {
            r.offer(DocId(i));
        }
        assert_eq!(r.len(), 50);
        for i in 0..50u64 {
            assert!(r.contains(DocId(i)));
        }
    }

    #[test]
    fn sample_is_independent_of_arrival_order() {
        let mut forward = ReservoirSampler::new(8);
        let mut backward = ReservoirSampler::new(8);
        for i in 0..500u64 {
            forward.offer(DocId(i));
        }
        for i in (0..500u64).rev() {
            backward.offer(DocId(i));
        }
        let mut a = forward.sample();
        let mut b = backward.sample();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn merge_of_disjoint_shards_equals_the_sequential_sample() {
        for shards in [2usize, 3, 8] {
            let mut sequential = ReservoirSampler::new(16);
            for i in 0..1000u64 {
                sequential.offer(DocId(i));
            }
            let mut parts: Vec<ReservoirSampler> =
                (0..shards).map(|_| ReservoirSampler::new(16)).collect();
            for i in 0..1000u64 {
                parts[(i as usize * shards) / 1000].offer(DocId(i));
            }
            let mut merged = parts.remove(0);
            let mut evicted_total = 0;
            for part in &parts {
                evicted_total += merged.merge(part).len();
            }
            assert!(evicted_total > 0, "shard union must overflow");
            assert_eq!(merged.seen(), sequential.seen());
            let mut a = merged.sample();
            let mut b = sequential.sample();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{shards} shards");
        }
    }

    #[test]
    fn merge_returns_every_evicted_identifier() {
        let mut a = ReservoirSampler::new(4);
        let mut b = ReservoirSampler::new(4);
        for i in 0..4u64 {
            a.offer(DocId(i));
        }
        for i in 4..8u64 {
            b.offer(DocId(i));
        }
        let evicted = a.merge(&b);
        assert_eq!(evicted.len(), 4);
        assert_eq!(a.len(), 4);
        for doc in evicted {
            assert!(!a.contains(doc));
        }
        // Survivors and evictees partition the union.
        let survivors = a.sample();
        assert!(survivors.iter().all(|d| d.as_u64() < 8));
    }

    #[test]
    fn different_seeds_sample_differently() {
        let mut a = ReservoirSampler::with_seed(8, 1);
        let mut b = ReservoirSampler::with_seed(8, 2);
        for i in 0..500u64 {
            a.offer(DocId(i));
            b.offer(DocId(i));
        }
        let mut sa = a.sample();
        let mut sb = b.sample();
        sa.sort_unstable();
        sb.sort_unstable();
        assert_ne!(sa, sb);
    }
}
