//! The streaming document synopsis `HS` (Section 3 of the paper).
//!
//! The synopsis approximates the full document history: it has the shape of
//! an XML tree (a DAG after same-label merges) whose root carries the special
//! label `/.`, and every other node carries an element label plus a
//! *matching-set summary* describing which documents contain the root path
//! leading to that node.
//!
//! It is maintained incrementally: each arriving document is reduced to its
//! skeleton tree and its root-to-leaf paths are folded into the synopsis,
//! updating the per-node summaries according to the configured
//! [`MatchingSetKind`].

use std::sync::atomic::{AtomicU64, Ordering};

use tps_xml::XmlTree;

use crate::distinct::DEFAULT_SEED;
use crate::docid::DocId;
use crate::reservoir::{ReservoirDecision, ReservoirSampler};
use crate::summary::{MatchingSetKind, NodeSummary, SummaryValue};

/// Configuration of a [`Synopsis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynopsisConfig {
    /// Matching-set representation.
    pub kind: MatchingSetKind,
    /// Seed for the distinct-sampling hash function and the reservoir RNG.
    pub seed: u64,
}

impl SynopsisConfig {
    /// Counter-based matching sets.
    pub fn counters() -> Self {
        Self {
            kind: MatchingSetKind::Counters,
            seed: DEFAULT_SEED,
        }
    }

    /// Reservoir-sampled exact sets with the given document capacity.
    pub fn sets(capacity: usize) -> Self {
        Self {
            kind: MatchingSetKind::Sets { capacity },
            seed: DEFAULT_SEED,
        }
    }

    /// Per-node distinct hash samples with the given per-node capacity.
    pub fn hashes(capacity: usize) -> Self {
        Self {
            kind: MatchingSetKind::Hashes { capacity },
            seed: DEFAULT_SEED,
        }
    }

    /// Override the sampling seed (useful for variance experiments).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl From<MatchingSetKind> for SynopsisConfig {
    fn from(kind: MatchingSetKind) -> Self {
        Self {
            kind,
            seed: DEFAULT_SEED,
        }
    }
}

/// Identifier of a synopsis node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SynopsisNodeId(pub(crate) u32);

impl SynopsisNodeId {
    /// Arena index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A subtree of labels that was folded into a node by the folding pruning
/// operation (Section 3.3). A folded node `c[f][o[n]]` keeps base label `c`
/// and folded subtrees `f` and `o(n)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldedSubtree {
    /// Label of the folded child.
    pub label: Box<str>,
    /// Labels folded below it (recursively).
    pub children: Vec<FoldedSubtree>,
}

impl FoldedSubtree {
    /// Number of labels in this folded subtree (for size accounting).
    pub fn label_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(FoldedSubtree::label_count)
            .sum::<usize>()
    }

    /// Render as the nested-label notation used in the paper
    /// (e.g. `c[f][o[n]]`).
    pub fn to_notation(&self) -> String {
        let mut out = self.label.to_string();
        for child in &self.children {
            out.push('[');
            out.push_str(&child.to_notation());
            out.push(']');
        }
        out
    }
}

#[derive(Debug, Clone)]
pub(crate) struct SynopsisNode {
    pub(crate) label: Box<str>,
    pub(crate) folded: Vec<FoldedSubtree>,
    pub(crate) parents: Vec<SynopsisNodeId>,
    pub(crate) children: Vec<SynopsisNodeId>,
    pub(crate) summary: NodeSummary,
    pub(crate) alive: bool,
    /// Transient streaming-ingest bookkeeping: the [`ingest_epoch`] of the
    /// document currently visiting this node. A stamp from an older epoch
    /// means "not visited by the in-flight document" — no per-document
    /// hash map needed.
    ///
    /// [`ingest_epoch`]: Synopsis::ingest_epoch
    pub(crate) visit: u64,
    /// Valid only while `visit` equals the in-flight epoch: `true` once the
    /// document entered a child below this node (the node is *internal* in
    /// the document's skeleton, i.e. not a path end).
    pub(crate) visit_internal: bool,
}

/// Size decomposition of a synopsis, following the paper's accounting for
/// `|HS|`: number of nodes, edges, labels (including folded labels) and total
/// matching-set entries; each fits a 32-bit word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SynopsisSize {
    /// Live nodes.
    pub nodes: usize,
    /// Parent→child edges between live nodes.
    pub edges: usize,
    /// Labels, counting every label of folded subtrees.
    pub labels: usize,
    /// Total entries across all matching-set summaries.
    pub entries: usize,
}

impl SynopsisSize {
    /// Total size `|HS| = nodes + edges + labels + entries` (in 32-bit words).
    pub fn total(&self) -> usize {
        self.nodes + self.edges + self.labels + self.entries
    }
}

/// The streaming document synopsis.
///
/// # Example
///
/// ```
/// use tps_synopsis::{ingest, Ingest, Synopsis, SynopsisConfig};
///
/// let mut synopsis = Synopsis::new(SynopsisConfig::counters());
/// for text in ["<a><b/></a>", "<a><c/></a>", "<a><b/><c/></a>"] {
///     // Raw bytes fold straight into the synopsis — no tree is built.
///     synopsis.ingest(ingest::text(text)).unwrap();
/// }
/// assert_eq!(synopsis.document_count(), 3);
/// // Root has a single child labelled "a" with two children "b" and "c".
/// let a = synopsis.children(synopsis.root())[0];
/// assert_eq!(synopsis.label(a), "a");
/// assert_eq!(synopsis.children(a).len(), 2);
/// ```
#[derive(Debug)]
pub struct Synopsis {
    config: SynopsisConfig,
    pub(crate) nodes: Vec<SynopsisNode>,
    pub(crate) doc_count: u64,
    pub(crate) reservoir: Option<ReservoirSampler>,
    /// Cached full matching-set values (only consulted while valid).
    full_cache: Vec<Option<SummaryValue>>,
    cache_valid: bool,
    /// Monotonic change counter: bumped on every mutation that can alter a
    /// matching set (document arrival, reservoir eviction, pruning). External
    /// caches tag their entries with the epoch they were computed at and
    /// invalidate exactly when it moves. Atomic so that concurrent readers
    /// (e.g. a `Sync` evaluation engine checking cache freshness from many
    /// threads) observe epoch advances race-free without locking the
    /// synopsis.
    epoch: AtomicU64,
    /// Streaming-ingest generation counter: bumped once per document scanned
    /// through the [`crate::ingest`] sink, so node visit stamps from earlier
    /// documents never read as current (see [`SynopsisNode::visit`]).
    pub(crate) ingest_epoch: u64,
    /// Reusable per-document scratch buffers for the streaming-ingest sink,
    /// kept here so repeated byte ingestion allocates nothing per document.
    pub(crate) ingest_scratch: crate::ingest::IngestScratch,
}

impl Clone for Synopsis {
    fn clone(&self) -> Self {
        Self {
            config: self.config,
            nodes: self.nodes.clone(),
            doc_count: self.doc_count,
            reservoir: self.reservoir.clone(),
            full_cache: self.full_cache.clone(),
            cache_valid: self.cache_valid,
            epoch: AtomicU64::new(self.epoch.load(Ordering::Acquire)),
            ingest_epoch: self.ingest_epoch,
            ingest_scratch: crate::ingest::IngestScratch::default(),
        }
    }
}

impl Synopsis {
    /// Create an empty synopsis.
    pub fn new(config: SynopsisConfig) -> Self {
        let reservoir = match config.kind {
            MatchingSetKind::Sets { capacity } => {
                Some(ReservoirSampler::with_seed(capacity, config.seed))
            }
            _ => None,
        };
        Self {
            config,
            nodes: vec![SynopsisNode {
                label: "/.".into(),
                folded: Vec::new(),
                parents: Vec::new(),
                children: Vec::new(),
                summary: NodeSummary::empty(config.kind, config.seed),
                alive: true,
                visit: 0,
                visit_internal: false,
            }],
            doc_count: 0,
            reservoir,
            full_cache: Vec::new(),
            cache_valid: false,
            epoch: AtomicU64::new(0),
            ingest_epoch: 0,
            ingest_scratch: crate::ingest::IngestScratch::default(),
        }
    }

    /// Build a synopsis from a batch of documents.
    pub fn from_documents<'a, I>(config: SynopsisConfig, documents: I) -> Self
    where
        I: IntoIterator<Item = &'a XmlTree>,
    {
        let mut synopsis = Self::new(config);
        for doc in documents {
            let id = DocId(synopsis.doc_count);
            synopsis.fold_tree_as(doc, id);
        }
        synopsis
    }

    /// The configuration this synopsis was built with.
    pub fn config(&self) -> SynopsisConfig {
        self.config
    }

    /// The matching-set representation in use.
    pub fn kind(&self) -> MatchingSetKind {
        self.config.kind
    }

    /// The sampling seed in use.
    pub fn seed(&self) -> u64 {
        self.config.seed
    }

    /// The root node (label `/.`).
    pub fn root(&self) -> SynopsisNodeId {
        SynopsisNodeId(0)
    }

    /// Number of documents observed so far (`|H|`).
    pub fn document_count(&self) -> u64 {
        self.doc_count
    }

    /// The current synopsis epoch.
    ///
    /// The epoch is bumped by every mutation that can change a matching set:
    /// every [`crate::Ingest::ingest`] / [`crate::IngestTarget`] observation, node
    /// deletion, and every pruning operation (folds, deletions, merges).
    /// Read-only queries never move it, so a cache keyed by the epoch is
    /// invalidated exactly when the synopsis changes.
    ///
    /// The counter is an [`AtomicU64`] read with `Acquire` ordering:
    /// mutations happen through `&mut self` (publishing their writes when
    /// the exclusive borrow ends), so any thread that observes the bumped
    /// epoch also observes the structural change that caused it.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Force-advance the epoch without a structural mutation.
    ///
    /// Epoch-tagged caches (e.g. a `SimilarityEngine`'s) compare the counter,
    /// not the synopsis identity; call this after replacing a synopsis
    /// wholesale (`std::mem::replace` through a mutable reference) or after
    /// any external mutation the synopsis cannot see, so those caches
    /// rebuild on the next query.
    pub fn mark_dirty(&mut self) {
        self.touch();
    }

    /// The label of a node.
    pub fn label(&self, id: SynopsisNodeId) -> &str {
        &self.nodes[id.index()].label
    }

    /// The folded subtrees attached to a node by the folding operation.
    pub fn folded(&self, id: SynopsisNodeId) -> &[FoldedSubtree] {
        &self.nodes[id.index()].folded
    }

    /// The children of a node.
    pub fn children(&self, id: SynopsisNodeId) -> &[SynopsisNodeId] {
        &self.nodes[id.index()].children
    }

    /// The parents of a node (more than one after same-label merges).
    pub fn parents(&self, id: SynopsisNodeId) -> &[SynopsisNodeId] {
        &self.nodes[id.index()].parents
    }

    /// Whether the node is still part of the synopsis (pruned nodes are
    /// tomb-stoned).
    pub fn is_alive(&self, id: SynopsisNodeId) -> bool {
        self.nodes[id.index()].alive
    }

    /// Whether the node is a leaf.
    pub fn is_leaf(&self, id: SynopsisNodeId) -> bool {
        self.children(id).is_empty()
    }

    /// Iterate over the ids of all live nodes (root included).
    pub fn live_nodes(&self) -> Vec<SynopsisNodeId> {
        (0..self.nodes.len())
            .map(|i| SynopsisNodeId(i as u32))
            .filter(|id| self.nodes[id.index()].alive)
            .collect()
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.alive)
            .map(|n| n.children.len())
            .sum()
    }

    /// Skeletonise a document tree and fold it in under an explicit stream
    /// identifier (its 0-based global stream position).
    ///
    /// This is the shard-building entry point: a sharded build assigns
    /// identifiers by global stream position, observes each contiguous chunk
    /// into its own partial synopsis, and [`Synopsis::merge`]s the partials.
    /// Because every sampling decision (reservoir membership, distinct-sample
    /// levels) is a deterministic function of `(seed, id)`, the merged result
    /// is identical to a sequential build.
    pub(crate) fn fold_tree_as(&mut self, document: &XmlTree, doc: DocId) {
        let skeleton = document.skeleton();
        self.fold_skeleton_as(&skeleton, doc);
    }

    /// Fold an already-coalesced skeleton tree in under an explicit stream
    /// identifier. The tree-based ingest backbone; the byte-level scanner
    /// path (`crate::ingest`) reproduces exactly this via a streaming sink.
    pub(crate) fn fold_skeleton_as(&mut self, skeleton: &XmlTree, doc: DocId) {
        self.doc_count += 1;
        match self.config.kind {
            MatchingSetKind::Counters | MatchingSetKind::Hashes { .. } => {
                self.record_document(skeleton, doc);
            }
            MatchingSetKind::Sets { .. } => {
                let decision = self
                    .reservoir
                    .as_mut()
                    // invariant: the constructor allocates a reservoir for Sets mode
                    .expect("Sets mode always has a reservoir")
                    .offer(doc);
                match decision {
                    ReservoirDecision::Skip => {}
                    ReservoirDecision::Insert => self.record_document(skeleton, doc),
                    ReservoirDecision::Replace { evicted } => {
                        self.forget_document(evicted);
                        self.record_document(skeleton, doc);
                    }
                }
            }
        }
        self.touch();
    }

    /// Merge another synopsis, built over a *disjoint* shard of the same
    /// document stream with the same configuration, into this one.
    ///
    /// Matching-set summaries combine per representation:
    ///
    /// * **Counters** add (disjoint shards count disjoint documents),
    /// * **Sets** union their sampled sets, then the merged reservoir is
    ///   re-pruned to its capacity (global bottom-k of the shard samples)
    ///   and evicted documents are removed from every node,
    /// * **Hashes** union their distinct samples level-aware.
    ///
    /// Provided the shards observed disjoint document-identifier ranges of
    /// one stream (see [`crate::IngestTarget::ingest_tree_as`]), merging is
    /// associative and commutative and the result is *estimate-identical*
    /// to a sequential build over the whole stream: every node carries the
    /// same matching-set value. Merging synopses that were pruned
    /// beforehand is supported (folded subtrees are combined, summaries
    /// merge as above) but is no longer guaranteed to match a sequential
    /// build, since pruning decisions depend on what each shard saw.
    ///
    /// # Panics
    ///
    /// Panics if the two synopses disagree on configuration (kind or seed).
    pub fn merge(&mut self, other: &Synopsis) {
        assert_eq!(
            self.config, other.config,
            "cannot merge synopses with different configurations"
        );
        self.doc_count += other.document_count();
        // Walk both structures in lock-step from the roots, creating missing
        // nodes and merging summaries and folded subtrees. `mapped` records
        // where each of `other`'s nodes landed in `self`: pruning's
        // same-label merges can turn a shard into a DAG (nodes with several
        // parents), and the map ensures such a node is merged exactly once
        // — further parent paths just mirror the extra edge — instead of
        // being re-expanded into one copy per path.
        let mut mapped: Vec<Option<SynopsisNodeId>> = vec![None; other.nodes.len()];
        mapped[other.root().index()] = Some(self.root());
        self.merge_node_payload(self.root(), other, other.root());
        let mut stack: Vec<(SynopsisNodeId, SynopsisNodeId)> = vec![(self.root(), other.root())];
        while let Some((self_id, other_id)) = stack.pop() {
            for &other_child in &other.nodes[other_id.index()].children {
                if !other.nodes[other_child.index()].alive {
                    continue;
                }
                match mapped[other_child.index()] {
                    Some(self_child) => self.link(self_id, self_child),
                    None => {
                        let label = other.nodes[other_child.index()].label.clone();
                        let self_child = self.find_or_create_child(self_id, &label);
                        mapped[other_child.index()] = Some(self_child);
                        self.merge_node_payload(self_child, other, other_child);
                        stack.push((self_child, other_child));
                    }
                }
            }
        }
        // Sets mode: the union of shard reservoirs may exceed the capacity;
        // keep the global bottom-k and forget everything else.
        if let (Some(reservoir), Some(other_reservoir)) =
            (self.reservoir.as_mut(), other.reservoir.as_ref())
        {
            let evicted = reservoir.merge(other_reservoir);
            for doc in evicted {
                for node in &mut self.nodes {
                    if node.alive {
                        node.summary.remove(doc);
                    }
                }
            }
            self.remove_empty_leaves();
        }
        self.touch();
    }

    /// Merge one shard node's summary and folded subtrees into the node of
    /// this synopsis it mapped to.
    fn merge_node_payload(
        &mut self,
        id: SynopsisNodeId,
        other: &Synopsis,
        other_id: SynopsisNodeId,
    ) {
        // `self` (&mut) and `other` (&) cannot alias, so the shard's node
        // is read in place — no per-node summary clone on the merge path.
        let other_node = &other.nodes[other_id.index()];
        self.merge_summary_into(id, &other_node.summary);
        self.merge_folded_into(id, &other_node.folded);
    }

    /// Mirror a shard's extra parent edge (DAG sharing) onto this synopsis,
    /// if not already present.
    fn link(&mut self, parent: SynopsisNodeId, child: SynopsisNodeId) {
        if !self.nodes[parent.index()].children.contains(&child) {
            self.nodes[parent.index()].children.push(child);
            self.nodes[child.index()].parents.push(parent);
        }
    }

    /// Merge a shard node's summary into a node of this synopsis: counters
    /// add, sets and hash samples union.
    fn merge_summary_into(&mut self, id: SynopsisNodeId, other: &NodeSummary) {
        let summary = &mut self.nodes[id.index()].summary;
        match (summary, other) {
            (NodeSummary::Counter(a), NodeSummary::Counter(b)) => *a += *b,
            (NodeSummary::Set(a), NodeSummary::Set(b)) => a.extend(b.iter().copied()),
            (a @ NodeSummary::Hash(_), b @ NodeSummary::Hash(_)) => *a = a.union(b),
            _ => unreachable!("merge() checks that the configurations agree"),
        }
    }

    /// Append the folded subtrees a shard accumulated that this synopsis
    /// does not already carry on the node (compared by notation).
    fn merge_folded_into(&mut self, id: SynopsisNodeId, folded: &[FoldedSubtree]) {
        for subtree in folded {
            let exists = self.nodes[id.index()]
                .folded
                .iter()
                .any(|f| f.to_notation() == subtree.to_notation());
            if !exists {
                self.nodes[id.index()].folded.push(subtree.clone());
            }
        }
    }

    fn record_document(&mut self, skeleton: &XmlTree, doc: DocId) {
        // Resolve with the same visit-stamp bookkeeping the byte-level
        // ingest sink uses, so a document reaching one synopsis node over
        // several skeleton paths (possible once `merge_nodes` has built a
        // DAG) is recorded exactly once per node — not once per path — and
        // the two ingest paths stay estimate-identical on DAGs.
        self.ingest_epoch += 1;
        let epoch = self.ingest_epoch;
        let mut order: Vec<SynopsisNodeId> = Vec::new();
        self.resolve_subtree(skeleton, skeleton.root(), self.root(), epoch, &mut order);
        let hashes_mode = matches!(self.config.kind, MatchingSetKind::Hashes { .. });
        if hashes_mode {
            // Hashes mode stores the document only at the end of each path
            // — visited nodes nothing was entered below; parents recover
            // the full matching set by unioning descendants.
            for &node in &order {
                if !self.nodes[node.index()].visit_internal {
                    self.nodes[node.index()].summary.insert(doc);
                }
            }
        } else {
            // The root's matching set is the set of all (sampled) documents.
            self.nodes[0].summary.insert(doc);
            for &node in &order {
                self.nodes[node.index()].summary.insert(doc);
            }
        }
    }

    /// Walk the skeleton, resolving each skeleton node to a synopsis node
    /// and stamping first visits into `order` (the byte sink's `enter`,
    /// expressed over a materialised tree).
    fn resolve_subtree(
        &mut self,
        skeleton: &XmlTree,
        skeleton_node: tps_xml::NodeId,
        synopsis_parent: SynopsisNodeId,
        epoch: u64,
        order: &mut Vec<SynopsisNodeId>,
    ) {
        let label = skeleton.label(skeleton_node);
        let node = self.find_or_create_child(synopsis_parent, label);
        if synopsis_parent != self.root() {
            self.nodes[synopsis_parent.index()].visit_internal = true;
        }
        let entry = &mut self.nodes[node.index()];
        if entry.visit != epoch {
            entry.visit = epoch;
            entry.visit_internal = false;
            order.push(node);
        }
        for &child in skeleton.children(skeleton_node) {
            self.resolve_subtree(skeleton, child, node, epoch, order);
        }
    }

    pub(crate) fn find_or_create_child(
        &mut self,
        parent: SynopsisNodeId,
        label: &str,
    ) -> SynopsisNodeId {
        if let Some(&existing) = self.nodes[parent.index()].children.iter().find(|&&c| {
            self.nodes[c.index()].alive && self.nodes[c.index()].label.as_ref() == label
        }) {
            return existing;
        }
        let id = SynopsisNodeId(self.nodes.len() as u32);
        self.nodes.push(SynopsisNode {
            label: label.into(),
            folded: Vec::new(),
            parents: vec![parent],
            children: Vec::new(),
            summary: NodeSummary::empty(self.config.kind, self.config.seed),
            alive: true,
            visit: 0,
            visit_internal: false,
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Remove a document identifier from every node summary (reservoir
    /// eviction), deleting nodes whose matching set becomes empty.
    pub(crate) fn forget_document(&mut self, doc: DocId) {
        for node in &mut self.nodes {
            if node.alive {
                node.summary.remove(doc);
            }
        }
        self.remove_empty_leaves();
    }

    /// Repeatedly delete live non-root leaves whose summary is empty.
    pub(crate) fn remove_empty_leaves(&mut self) {
        loop {
            let victims: Vec<SynopsisNodeId> = self
                .live_nodes()
                .into_iter()
                .filter(|&id| {
                    id != self.root()
                        && self.is_leaf(id)
                        && self.nodes[id.index()].summary.is_empty()
                        && self.nodes[id.index()].folded.is_empty()
                })
                .collect();
            if victims.is_empty() {
                return;
            }
            for v in victims {
                self.delete_node(v);
            }
        }
    }

    /// Detach and tombstone a node (must not be the root).
    pub(crate) fn delete_node(&mut self, id: SynopsisNodeId) {
        debug_assert_ne!(id, self.root());
        let parents = self.nodes[id.index()].parents.clone();
        for p in parents {
            self.nodes[p.index()].children.retain(|&c| c != id);
        }
        let children = self.nodes[id.index()].children.clone();
        for c in children {
            self.nodes[c.index()].parents.retain(|&p| p != id);
        }
        let node = &mut self.nodes[id.index()];
        node.alive = false;
        node.children.clear();
        node.parents.clear();
        node.folded.clear();
        self.touch();
    }

    /// Mark cached full matching sets as stale and advance the epoch (called
    /// by every mutation).
    pub(crate) fn touch(&mut self) {
        self.cache_valid = false;
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Mark cached full matching sets as stale (called by pruning).
    pub(crate) fn invalidate_cache(&mut self) {
        self.touch();
    }

    /// Summary stored directly at the node (not the recursive full set).
    pub(crate) fn stored_summary(&self, id: SynopsisNodeId) -> &NodeSummary {
        &self.nodes[id.index()].summary
    }

    /// Materialise the full matching-set values of every node.
    ///
    /// Only the Hashes representation needs this (its per-node samples only
    /// record the documents whose paths end at the node); calling it for the
    /// other representations is a cheap no-op. Selectivity estimation works
    /// without calling `prepare`, but repeated queries are faster with the
    /// cache in place.
    pub fn prepare(&mut self) {
        if self.cache_valid {
            return;
        }
        let mut cache: Vec<Option<SummaryValue>> = vec![None; self.nodes.len()];
        let root = self.root();
        self.compute_full_value(root, &mut cache);
        // Ensure every live node is materialised (DAG nodes unreachable from
        // the root cannot exist, but be defensive).
        for id in self.live_nodes() {
            if cache[id.index()].is_none() {
                self.compute_full_value(id, &mut cache);
            }
        }
        self.full_cache = cache;
        self.cache_valid = true;
    }

    /// Materialise the full matching-set value of every node into a
    /// caller-owned vector indexed by [`SynopsisNodeId::index`].
    ///
    /// This is the `&self` counterpart of [`Synopsis::prepare`], intended for
    /// evaluation engines that keep their own epoch-tagged caches instead of
    /// mutating the synopsis. Entries for dead (tomb-stoned) nodes are the
    /// empty value.
    pub fn full_values(&self) -> Vec<SummaryValue> {
        let mut cache: Vec<Option<SummaryValue>> = vec![None; self.nodes.len()];
        self.compute_full_value(self.root(), &mut cache);
        for id in self.live_nodes() {
            if cache[id.index()].is_none() {
                self.compute_full_value(id, &mut cache);
            }
        }
        cache
            .into_iter()
            .map(|value| value.unwrap_or_else(|| self.empty_value()))
            .collect()
    }

    /// The full matching-set value `S(t)` of a node, in the representation's
    /// selectivity algebra.
    ///
    /// * Counters: the fraction `count / |H|`.
    /// * Sets: the sampled document identifiers containing the node's path.
    /// * Hashes: the union of the hash samples stored in the node's subtree.
    pub fn matching_value(&self, id: SynopsisNodeId) -> SummaryValue {
        if self.cache_valid {
            if let Some(Some(v)) = self.full_cache.get(id.index()) {
                return v.clone();
            }
        }
        let mut scratch: Vec<Option<SummaryValue>> = vec![None; self.nodes.len()];
        self.compute_full_value(id, &mut scratch)
    }

    fn compute_full_value(
        &self,
        id: SynopsisNodeId,
        cache: &mut Vec<Option<SummaryValue>>,
    ) -> SummaryValue {
        if let Some(v) = &cache[id.index()] {
            return v.clone();
        }
        let value = match self.config.kind {
            MatchingSetKind::Counters => {
                let count = self.nodes[id.index()].summary.count_estimate();
                let total = self.doc_count as f64;
                if total == 0.0 {
                    SummaryValue::Fraction(0.0)
                } else if id == self.root() {
                    SummaryValue::Fraction(1.0)
                } else {
                    SummaryValue::Fraction((count / total).min(1.0))
                }
            }
            MatchingSetKind::Sets { .. } => match self.stored_summary(id) {
                NodeSummary::Set(s) => SummaryValue::Set(s.clone()),
                _ => unreachable!("Sets synopsis stores Set summaries"),
            },
            MatchingSetKind::Hashes { .. } => {
                let own = match self.stored_summary(id) {
                    NodeSummary::Hash(h) => SummaryValue::Hash(h.clone()),
                    _ => unreachable!("Hashes synopsis stores Hash summaries"),
                };
                // Mark before recursing to guard against (impossible) cycles.
                cache[id.index()] = Some(own.clone());
                let mut value = own;
                for &child in &self.nodes[id.index()].children {
                    let child_value = self.compute_full_value(child, cache);
                    value = value.union(&child_value);
                }
                value
            }
        };
        cache[id.index()] = Some(value.clone());
        value
    }

    /// The value representing the whole observed document set `S(rs)` — the
    /// denominator of Algorithm 2.
    pub fn universe_value(&self) -> SummaryValue {
        match self.config.kind {
            MatchingSetKind::Counters => SummaryValue::Fraction(1.0),
            MatchingSetKind::Sets { .. } => self.matching_value(self.root()),
            MatchingSetKind::Hashes { .. } => self.matching_value(self.root()),
        }
    }

    /// An empty selectivity value of this synopsis' representation.
    pub fn empty_value(&self) -> SummaryValue {
        SummaryValue::empty(self.config.kind, self.config.seed)
    }

    /// Size decomposition `|HS|` following the paper's accounting.
    pub fn size(&self) -> SynopsisSize {
        let mut size = SynopsisSize::default();
        for node in &self.nodes {
            if !node.alive {
                continue;
            }
            size.nodes += 1;
            size.edges += node.children.len();
            size.labels += 1 + node
                .folded
                .iter()
                .map(FoldedSubtree::label_count)
                .sum::<usize>();
            size.entries += node.summary.entries();
        }
        size
    }

    /// Number of documents represented by the root matching set (the
    /// denominator used when converting counts to probabilities): the
    /// reservoir size in Sets mode, `|H|` otherwise.
    pub fn effective_universe(&self) -> f64 {
        match self.config.kind {
            MatchingSetKind::Sets { .. } => self
                .reservoir
                .as_ref()
                .map(|r| r.len() as f64)
                .unwrap_or(0.0),
            _ => self.doc_count as f64,
        }
    }

    /// A textual dump of the synopsis structure (labels, folded labels and
    /// estimated matching-set sizes), useful for debugging and examples.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.dump_node(self.root(), 0, &mut out);
        out
    }

    fn dump_node(&self, id: SynopsisNodeId, depth: usize, out: &mut String) {
        let node = &self.nodes[id.index()];
        out.push_str(&"  ".repeat(depth));
        out.push_str(&node.label);
        for folded in &node.folded {
            out.push('[');
            out.push_str(&folded.to_notation());
            out.push(']');
        }
        out.push_str(&format!(
            " (|S|≈{:.0})\n",
            self.matching_value(id).count_units()
        ));
        for &child in &node.children {
            self.dump_node(child, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::{self, Ingest, IngestTarget};

    /// The six documents of Figure 2 (as close as the printed figure allows;
    /// what matters for the tests is the co-occurrence structure discussed in
    /// the text: `b` and `d` are mutually exclusive, `f` and `o` co-occur
    /// under `c`).
    pub(crate) fn figure2_documents() -> Vec<XmlTree> {
        [
            "<a><b><e><k/></e><e><m/></e><g><m/></g></b></a>",
            "<a><b><e><k/></e><g><k/><n/></g><f><n/></f></b></a>",
            "<a><b><e><k/></e><g><n/></g></b><c><f><n/></f><o><n/></o><f><h/></f></c></a>",
            "<a><c><f><k/></f><o><n/></o><e><m/></e><h/></c><d><e><k/></e><q><m/></q></d></a>",
            "<a><d><e><k/></e><e><m/></e><p/></d></a>",
            "<a><d><e><m/></e></d></a>",
        ]
        .iter()
        .map(|s| XmlTree::parse(s).unwrap())
        .collect()
    }

    fn child_by_label(s: &Synopsis, parent: SynopsisNodeId, label: &str) -> SynopsisNodeId {
        *s.children(parent)
            .iter()
            .find(|&&c| s.label(c) == label)
            .unwrap_or_else(|| panic!("no child {label}"))
    }

    #[test]
    fn empty_synopsis_has_only_the_root() {
        let s = Synopsis::new(SynopsisConfig::counters());
        assert_eq!(s.node_count(), 1);
        assert_eq!(s.document_count(), 0);
        assert_eq!(s.label(s.root()), "/.");
        assert!(s.is_leaf(s.root()));
    }

    #[test]
    fn counters_synopsis_counts_path_frequencies() {
        let docs = figure2_documents();
        let s = Synopsis::from_documents(SynopsisConfig::counters(), &docs);
        assert_eq!(s.document_count(), 6);
        let a = child_by_label(&s, s.root(), "a");
        // Every document has root a.
        assert_eq!(s.stored_summary(a).count_estimate(), 6.0);
        let b = child_by_label(&s, a, "b");
        let d = child_by_label(&s, a, "d");
        let c = child_by_label(&s, a, "c");
        assert_eq!(s.stored_summary(b).count_estimate(), 3.0);
        assert_eq!(s.stored_summary(d).count_estimate(), 3.0);
        assert_eq!(s.stored_summary(c).count_estimate(), 2.0);
    }

    #[test]
    fn counters_matching_value_is_a_fraction() {
        let docs = figure2_documents();
        let s = Synopsis::from_documents(SynopsisConfig::counters(), &docs);
        let a = child_by_label(&s, s.root(), "a");
        let b = child_by_label(&s, a, "b");
        assert!((s.matching_value(b).count_units() - 0.5).abs() < 1e-9);
        assert_eq!(s.universe_value().count_units(), 1.0);
    }

    #[test]
    fn sets_synopsis_with_large_reservoir_is_exact() {
        let docs = figure2_documents();
        let s = Synopsis::from_documents(SynopsisConfig::sets(100), &docs);
        let a = child_by_label(&s, s.root(), "a");
        let b = child_by_label(&s, a, "b");
        match s.stored_summary(b) {
            NodeSummary::Set(set) => {
                let ids: Vec<u64> = set.iter().map(|d| d.as_u64()).collect();
                assert_eq!(ids, vec![0, 1, 2]);
            }
            _ => panic!("expected a set summary"),
        }
        assert_eq!(s.universe_value().count_units(), 6.0);
        assert_eq!(s.effective_universe(), 6.0);
    }

    #[test]
    fn sets_synopsis_respects_reservoir_capacity() {
        let mut s = Synopsis::new(SynopsisConfig::sets(8));
        for i in 0..200 {
            let doc = XmlTree::parse(&format!("<a><b{}/></a>", i % 10)).unwrap();
            s.ingest(ingest::tree(&doc)).unwrap();
        }
        assert_eq!(s.document_count(), 200);
        assert!(s.universe_value().count_units() <= 8.0);
        // No node may reference more documents than the reservoir holds.
        for id in s.live_nodes() {
            assert!(s.stored_summary(id).count_estimate() <= 8.0);
        }
    }

    #[test]
    fn hashes_synopsis_stores_at_path_ends_and_unions_up() {
        let docs = figure2_documents();
        let s = Synopsis::from_documents(SynopsisConfig::hashes(64), &docs);
        let a = child_by_label(&s, s.root(), "a");
        let b = child_by_label(&s, a, "b");
        // The stored sample at b only has documents whose skeleton path ends
        // at b — none do (b always has children) — but the full matching set
        // is recovered by unioning the subtree.
        assert_eq!(s.stored_summary(b).count_estimate(), 0.0);
        assert_eq!(s.matching_value(b).count_units(), 3.0);
        assert_eq!(s.matching_value(a).count_units(), 6.0);
        assert_eq!(s.universe_value().count_units(), 6.0);
    }

    #[test]
    fn prepare_caches_full_values() {
        let docs = figure2_documents();
        let mut s = Synopsis::from_documents(SynopsisConfig::hashes(64), &docs);
        let a = child_by_label(&s, s.root(), "a");
        let before = s.matching_value(a).count_units();
        s.prepare();
        let after = s.matching_value(a).count_units();
        assert_eq!(before, after);
    }

    #[test]
    fn structure_is_shared_across_documents() {
        let docs = figure2_documents();
        let s = Synopsis::from_documents(SynopsisConfig::counters(), &docs);
        // Only one node labelled "a" and one labelled "b" directly below it.
        let a_nodes: Vec<_> = s
            .live_nodes()
            .into_iter()
            .filter(|&id| s.label(id) == "a")
            .collect();
        assert_eq!(a_nodes.len(), 1);
        let a = a_nodes[0];
        assert_eq!(
            s.children(a).iter().filter(|&&c| s.label(c) == "b").count(),
            1
        );
    }

    #[test]
    fn size_accounting_counts_all_components() {
        let docs = figure2_documents();
        let s = Synopsis::from_documents(SynopsisConfig::hashes(64), &docs);
        let size = s.size();
        assert_eq!(size.nodes, s.node_count());
        assert_eq!(size.edges, s.edge_count());
        assert!(size.labels >= size.nodes);
        assert!(size.entries > 0);
        assert_eq!(
            size.total(),
            size.nodes + size.edges + size.labels + size.entries
        );
    }

    #[test]
    fn delete_node_detaches_it() {
        let docs = figure2_documents();
        let mut s = Synopsis::from_documents(SynopsisConfig::counters(), &docs);
        let a = child_by_label(&s, s.root(), "a");
        let b = child_by_label(&s, a, "b");
        let before = s.node_count();
        s.delete_node(b);
        assert!(!s.is_alive(b));
        assert_eq!(s.node_count(), before - 1);
        assert!(!s.children(a).contains(&b));
    }

    #[test]
    fn dump_mentions_labels() {
        let docs = figure2_documents();
        let s = Synopsis::from_documents(SynopsisConfig::counters(), &docs);
        let dump = s.dump();
        assert!(dump.contains("/."));
        assert!(dump.contains('a'));
    }

    #[test]
    fn insert_skeleton_accepts_pre_built_skeletons() {
        let doc = XmlTree::parse("<a><b/><b/></a>").unwrap();
        let mut s1 = Synopsis::new(SynopsisConfig::counters());
        s1.ingest(ingest::tree(&doc)).unwrap();
        let mut s2 = Synopsis::new(SynopsisConfig::counters());
        s2.ingest(ingest::skeleton(&doc.skeleton())).unwrap();
        assert_eq!(s1.node_count(), s2.node_count());
    }

    /// Explicit-identifier ingest (the shard-building entry point) matches
    /// the sequential ingest path value for value.
    #[test]
    fn explicit_identifier_ingest_matches_the_sequential_path() {
        let docs = figure2_documents();
        for config in [
            SynopsisConfig::counters(),
            SynopsisConfig::sets(4),
            SynopsisConfig::hashes(8),
        ] {
            let via_ingest = Synopsis::from_documents(config, &docs);
            let mut via_as = Synopsis::new(config);
            for (i, doc) in docs.iter().enumerate() {
                via_as.ingest_tree_as(doc, DocId(i as u64));
            }
            assert_eq!(via_as.document_count(), via_ingest.document_count());
            assert_eq!(canonical_values(&via_as), canonical_values(&via_ingest));
        }
    }

    #[test]
    fn epoch_advances_on_every_mutation_but_not_on_queries() {
        let mut s = Synopsis::new(SynopsisConfig::hashes(64));
        let e0 = s.epoch();
        s.ingest(ingest::text("<a><b/></a>")).unwrap();
        let e1 = s.epoch();
        assert!(e1 > e0, "insert must advance the epoch");
        // Queries leave the epoch alone.
        let _ = s.matching_value(s.root());
        let _ = s.full_values();
        let _ = s.size();
        assert_eq!(s.epoch(), e1);
        // prepare() only caches; it is not a logical mutation.
        s.prepare();
        assert_eq!(s.epoch(), e1);
        let a = s.children(s.root())[0];
        let b = s.children(a)[0];
        s.delete_node(b);
        assert!(s.epoch() > e1, "deletion must advance the epoch");
    }

    #[test]
    fn full_values_agree_with_matching_value() {
        let docs = figure2_documents();
        for config in [
            SynopsisConfig::counters(),
            SynopsisConfig::sets(100),
            SynopsisConfig::hashes(64),
        ] {
            let s = Synopsis::from_documents(config, &docs);
            let full = s.full_values();
            for id in s.live_nodes() {
                assert_eq!(
                    full[id.index()],
                    s.matching_value(id),
                    "node {id:?} ({:?})",
                    config.kind
                );
            }
        }
    }

    #[test]
    fn counters_root_fraction_is_one() {
        let docs = figure2_documents();
        let s = Synopsis::from_documents(SynopsisConfig::counters(), &docs);
        assert_eq!(s.matching_value(s.root()).count_units(), 1.0);
    }

    /// Canonical view of a synopsis for equivalence checks: every live
    /// root-to-node label path with its full matching-set value, sorted.
    pub(crate) fn canonical_values(s: &Synopsis) -> Vec<(Vec<String>, SummaryValue)> {
        fn walk(
            s: &Synopsis,
            id: SynopsisNodeId,
            path: &mut Vec<String>,
            out: &mut Vec<(Vec<String>, SummaryValue)>,
        ) {
            path.push(s.label(id).to_string());
            out.push((path.clone(), s.matching_value(id)));
            for &child in s.children(id) {
                walk(s, child, path, out);
            }
            path.pop();
        }
        let mut out = Vec::new();
        walk(s, s.root(), &mut Vec::new(), &mut out);
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    fn sharded_build(config: SynopsisConfig, docs: &[XmlTree], shards: usize) -> Synopsis {
        let mut merged = Synopsis::new(config);
        let chunk = docs.len().div_ceil(shards.max(1)).max(1);
        for (index, chunk_docs) in docs.chunks(chunk).enumerate() {
            let mut shard = Synopsis::new(config);
            for (offset, doc) in chunk_docs.iter().enumerate() {
                shard.ingest_tree_as(doc, DocId((index * chunk + offset) as u64));
            }
            merged.merge(&shard);
        }
        merged
    }

    #[test]
    fn merged_shards_match_the_sequential_build_for_all_representations() {
        let docs = figure2_documents();
        for config in [
            SynopsisConfig::counters(),
            SynopsisConfig::sets(4),
            SynopsisConfig::sets(100),
            SynopsisConfig::hashes(4),
            SynopsisConfig::hashes(64),
        ] {
            let sequential = Synopsis::from_documents(config, &docs);
            for shards in [1usize, 2, 3, 6] {
                let merged = sharded_build(config, &docs, shards);
                assert_eq!(merged.document_count(), sequential.document_count());
                assert_eq!(
                    canonical_values(&merged),
                    canonical_values(&sequential),
                    "{:?} with {shards} shards",
                    config.kind
                );
                assert_eq!(
                    merged.universe_value(),
                    sequential.universe_value(),
                    "{:?} with {shards} shards",
                    config.kind
                );
                assert_eq!(merged.effective_universe(), sequential.effective_universe());
            }
        }
    }

    #[test]
    fn merging_an_empty_shard_is_the_identity() {
        let docs = figure2_documents();
        for config in [
            SynopsisConfig::counters(),
            SynopsisConfig::sets(4),
            SynopsisConfig::hashes(8),
        ] {
            let mut s = Synopsis::from_documents(config, &docs);
            let before = canonical_values(&s);
            let before_docs = s.document_count();
            s.merge(&Synopsis::new(config));
            assert_eq!(s.document_count(), before_docs);
            assert_eq!(canonical_values(&s), before);
            // Empty += populated works too.
            let mut empty = Synopsis::new(config);
            empty.merge(&s);
            assert_eq!(canonical_values(&empty), before);
        }
    }

    #[test]
    fn merge_advances_the_epoch() {
        let docs = figure2_documents();
        let mut s = Synopsis::from_documents(SynopsisConfig::counters(), &docs);
        let epoch = s.epoch();
        s.merge(&Synopsis::new(SynopsisConfig::counters()));
        assert!(s.epoch() > epoch);
    }

    #[test]
    fn merge_after_prune_combines_folded_subtrees_and_summaries() {
        let docs = figure2_documents();
        let mut pruned = Synopsis::from_documents(SynopsisConfig::counters(), &docs);
        // Prune aggressively so folds actually happen.
        pruned.prune_to_ratio(0.4, crate::PruneConfig::default());
        let folded_total: usize = pruned
            .live_nodes()
            .iter()
            .map(|&id| pruned.folded(id).len())
            .sum();
        let mut fresh = Synopsis::from_documents(SynopsisConfig::counters(), &docs);
        fresh.merge(&pruned);
        assert_eq!(fresh.document_count(), 2 * docs.len() as u64);
        // Every folded subtree of the pruned shard survives on the merged
        // synopsis.
        let merged_folded: usize = fresh
            .live_nodes()
            .iter()
            .map(|&id| fresh.folded(id).len())
            .sum();
        assert!(merged_folded >= folded_total);
        // Merging a pruned shard into itself does not duplicate folds.
        let mut doubled = pruned.clone();
        doubled.merge(&pruned);
        let doubled_folded: usize = doubled
            .live_nodes()
            .iter()
            .map(|&id| doubled.folded(id).len())
            .sum();
        assert_eq!(doubled_folded, folded_total);
    }

    #[test]
    fn merging_a_dag_shaped_shard_preserves_sharing() {
        // Same-label merges during pruning give nodes multiple parents; a
        // merge must fold each such node in exactly once (mirroring the
        // extra edges) rather than re-expanding one copy per parent path.
        let docs: Vec<XmlTree> = ["<a><x><k/></x></a>", "<a><y><k/></y></a>"]
            .iter()
            .map(|s| XmlTree::parse(s).unwrap())
            .collect();
        let mut dag = Synopsis::from_documents(SynopsisConfig::counters(), &docs);
        let a = child_by_label(&dag, dag.root(), "a");
        let x = child_by_label(&dag, a, "x");
        let y = child_by_label(&dag, a, "y");
        let kx = child_by_label(&dag, x, "k");
        let ky = child_by_label(&dag, y, "k");
        dag.merge_nodes(kx, ky);
        let shared = child_by_label(&dag, x, "k");
        assert_eq!(dag.parents(shared).len(), 2, "the shard really is a DAG");
        let dag_nodes = dag.node_count();
        let dag_edges = dag.edge_count();

        let mut merged = Synopsis::new(SynopsisConfig::counters());
        merged.merge(&dag);
        assert_eq!(merged.node_count(), dag_nodes, "no node is duplicated");
        assert_eq!(merged.edge_count(), dag_edges, "sharing edges survive");
        let a = child_by_label(&merged, merged.root(), "a");
        let x = child_by_label(&merged, a, "x");
        let k = child_by_label(&merged, x, "k");
        assert_eq!(merged.parents(k).len(), 2);
        assert_eq!(canonical_values(&merged), canonical_values(&dag));

        // Self-merge doubles counters but still does not re-expand the DAG.
        let mut doubled = dag.clone();
        doubled.merge(&dag);
        assert_eq!(doubled.node_count(), dag_nodes);
        assert_eq!(doubled.edge_count(), dag_edges);
    }

    #[test]
    #[should_panic(expected = "different configurations")]
    fn merging_mismatched_configurations_panics() {
        let mut a = Synopsis::new(SynopsisConfig::counters());
        let b = Synopsis::new(SynopsisConfig::hashes(8));
        a.merge(&b);
    }

    #[test]
    fn observe_stream_matches_from_documents() {
        use tps_xml::stream::{cloned_trees, LineStream};
        let docs = figure2_documents();
        let sequential = Synopsis::from_documents(SynopsisConfig::hashes(8), &docs);
        let mut streamed = Synopsis::new(SynopsisConfig::hashes(8));
        let observed = streamed
            .ingest(ingest::stream(cloned_trees(&docs)))
            .unwrap();
        assert_eq!(observed, docs.len() as u64);
        assert_eq!(canonical_values(&streamed), canonical_values(&sequential));
        // Line-delimited raw text round-trips through the same build.
        let text: String = docs.iter().map(|d| d.to_xml() + "\n").collect();
        let mut from_lines = Synopsis::new(SynopsisConfig::hashes(8));
        from_lines
            .ingest(ingest::stream(LineStream::new(text.as_bytes())))
            .unwrap();
        assert_eq!(
            canonical_values(&from_lines),
            canonical_values(&sequential),
            "skeletons from re-parsed text match"
        );
    }

    #[test]
    fn observe_stream_reports_parse_errors_with_their_position() {
        use tps_xml::stream::LineStream;
        let mut s = Synopsis::new(SynopsisConfig::counters());
        let err = s
            .ingest(ingest::stream(LineStream::new(
                "<a/>\n<broken\n".as_bytes(),
            )))
            .unwrap_err();
        assert!(err.to_string().contains("document 1"), "{err}");
        // The valid document before the error was observed.
        assert_eq!(s.document_count(), 1);
    }
}
