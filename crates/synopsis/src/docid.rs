//! Document identifiers.

use std::fmt;

/// Identifier of a document in the observed stream.
///
/// Documents are identified by their position in the stream (0-based). The
/// identifier is what matching sets store, what the reservoir samples, and
/// what the distinct-sampling hash function is applied to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u64);

impl DocId {
    /// The raw stream position.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "doc{}", self.0)
    }
}

impl From<u64> for DocId {
    fn from(v: u64) -> Self {
        DocId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let id = DocId::from(17u64);
        assert_eq!(id.as_u64(), 17);
        assert_eq!(id.to_string(), "doc17");
        assert_eq!(id, DocId(17));
    }

    #[test]
    fn ordering_follows_stream_position() {
        assert!(DocId(3) < DocId(10));
    }
}
