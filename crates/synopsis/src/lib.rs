//! Streaming document synopsis for tree-pattern selectivity estimation.
//!
//! This crate implements Section 3 of the paper: a concise synopsis `HS` of
//! an XML document stream that supports estimating the fraction of documents
//! satisfying boolean combinations of tree patterns.
//!
//! * [`Synopsis`] — the synopsis structure itself, maintained incrementally
//!   from document skeleton trees.
//! * [`MatchingSetKind`] / [`NodeSummary`] / [`SummaryValue`] — the three
//!   matching-set representations (Counters, reservoir Sets, distinct-hash
//!   samples) and the union/intersection/cardinality algebra the selectivity
//!   algorithm needs.
//! * [`DistinctSample`] — Gibbons' distinct sampling.
//! * [`ReservoirSampler`] — keyed (bottom-k) reservoir sampling, the
//!   order-independent equivalent of Vitter's scheme that makes the Sets
//!   representation mergeable.
//! * Ingest — the sink-based [`Ingest`] API folds documents in from any
//!   source: parsed trees, skeletons, pull-based
//!   [`DocumentStream`](tps_xml::stream::DocumentStream)s, or **raw bytes**
//!   driven through the zero-copy streaming scanner (`tps_xml::scan`)
//!   without ever materialising a tree. [`Synopsis::merge`] combines
//!   per-shard partial synopses (counters add, sets re-prune, hash sketches
//!   union) estimate-identically to a sequential build.
//! * Pruning — [`Synopsis::prune_to_ratio`] and the individual fold / delete /
//!   merge operations of Section 3.3.
//!
//! # Example
//!
//! ```
//! use tps_synopsis::{Synopsis, SynopsisConfig};
//! use tps_xml::XmlTree;
//!
//! let docs: Vec<XmlTree> = ["<a><b/></a>", "<a><b/><c/></a>", "<a><c/></a>"]
//!     .iter()
//!     .map(|s| XmlTree::parse(s).unwrap())
//!     .collect();
//! let mut synopsis = Synopsis::from_documents(SynopsisConfig::hashes(128), &docs);
//! synopsis.prepare();
//! assert_eq!(synopsis.document_count(), 3);
//! assert_eq!(synopsis.universe_value().count_units(), 3.0);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distinct;
pub mod docid;
pub mod hash;
pub mod ingest;
pub mod prune;
pub mod reservoir;
pub mod summary;
// invariant: the crate-eponymous module holds the eponymous type
#[allow(clippy::module_inception)]
pub mod synopsis;

pub use distinct::DistinctSample;
pub use docid::DocId;
pub use ingest::{Ingest, IngestSource, IngestTarget};
pub use prune::{PruneConfig, PruneReport};
pub use reservoir::{ReservoirDecision, ReservoirSampler};
pub use summary::{MatchingSetKind, NodeSummary, SummaryValue};
pub use synopsis::{FoldedSubtree, Synopsis, SynopsisConfig, SynopsisNodeId, SynopsisSize};
