//! The unified, sink-based ingest API.
//!
//! Every way of getting documents into a [`Synopsis`] — parsed trees,
//! pre-built skeletons, raw bytes, pull-based streams — goes through one
//! surface:
//!
//! ```
//! use tps_synopsis::{ingest, Ingest, Synopsis, SynopsisConfig};
//!
//! let mut synopsis = Synopsis::new(SynopsisConfig::counters());
//! synopsis.ingest(ingest::text("<a><b/></a>")).unwrap();
//! synopsis.ingest(ingest::bytes(b"<a><c/></a>")).unwrap();
//! assert_eq!(synopsis.document_count(), 2);
//! ```
//!
//! The three layers:
//!
//! * [`IngestTarget`] — what a synopsis-like structure must provide: assign
//!   the next stream identifier and fold one document in, given as a tree,
//!   a skeleton, or raw bytes. `Synopsis` implements it; so does
//!   `SimilarityEngine` in `tps-core`.
//! * [`IngestSource`] — a batch of zero or more documents that knows how to
//!   feed itself into any target ([`tree`], [`trees`], [`skeleton`],
//!   [`bytes`], [`text`], [`stream`]).
//! * [`Ingest`] — the blanket-implemented entry point gluing the two:
//!   `target.ingest(source)`.
//!
//! # Zero-copy byte ingest
//!
//! [`IngestTarget::ingest_bytes_as`] is the tentpole path: raw document
//! bytes are driven through the streaming scanner
//! ([`tps_xml::scan_document`]) and folded into the synopsis **without
//! constructing a tree**. The per-document [`SkeletonSink`] reproduces
//! `skeleton_of` coalescing on the fly:
//!
//! * the open-element stack is mirrored as a stack of *synopsis* nodes;
//!   entering label `l` below synopsis node `p` resolves to
//!   `find_or_create_child(p, l)` — the same-label merge that makes a
//!   synopsis node per skeleton group, so repeated siblings (and text runs
//!   sharing an element label) coalesce exactly as `skeleton_of` does;
//! * a node visited by the document is a *skeleton leaf* iff no child was
//!   ever entered below it while it was current — the Hashes
//!   representation stores the document only at those nodes, every other
//!   representation stores it at all visited nodes plus the root;
//! * in Sets mode the reservoir is consulted **before** scanning
//!   ([`ReservoirSampler::peek`]): a document the sample would skip is
//!   scanned with recording disabled (validation only, no node creation);
//! * summaries are only written in a `commit` step after the scan
//!   succeeded; a parse error rolls back the nodes the document created,
//!   leaving the synopsis exactly as it was.
//!
//! The conformance harness (`crates/xml/tests/conformance.rs`), the
//! `ingest` fuzz target and the property tests below all enforce that this
//! path is *estimate-identical* to parsing a tree and folding its skeleton.

use std::borrow::Cow;

use tps_xml::scan::{scan_document, ScanLimits, SkeletonSink};
use tps_xml::stream::{DocumentStream, StreamError, StreamItem};
use tps_xml::{XmlError, XmlTree};

use crate::docid::DocId;
use crate::reservoir::ReservoirDecision;
#[cfg(doc)]
use crate::reservoir::ReservoirSampler;
use crate::summary::MatchingSetKind;
use crate::synopsis::{Synopsis, SynopsisNodeId};

/// A structure documents can be folded into under explicit stream
/// identifiers.
///
/// Implementors provide the primitive per-document operations; batching,
/// identifier assignment for whole streams and error bookkeeping live in
/// [`IngestSource`]s. All three `ingest_*_as` forms must be
/// estimate-identical for the same document.
pub trait IngestTarget {
    /// The identifier the next observed document will receive (its 0-based
    /// global stream position).
    fn next_doc_id(&self) -> DocId;

    /// Fold one parsed document tree in under `doc`.
    fn ingest_tree_as(&mut self, document: &XmlTree, doc: DocId);

    /// Fold an already-coalesced skeleton tree in under `doc`.
    fn ingest_skeleton_as(&mut self, skeleton: &XmlTree, doc: DocId);

    /// Fold one document given as raw bytes in under `doc`, without
    /// constructing a tree. On a parse error the target is left unchanged.
    fn ingest_bytes_as(&mut self, bytes: &[u8], doc: DocId) -> Result<(), XmlError>;
}

/// A batch of zero or more documents that can feed itself into an
/// [`IngestTarget`]. Constructed by the free functions of this module
/// ([`tree`], [`trees`], [`skeleton`], [`bytes`], [`text`], [`stream`]).
pub trait IngestSource {
    /// Feed every document into `target`, assigning identifiers via
    /// [`IngestTarget::next_doc_id`]. Returns the number of documents
    /// ingested; on error, documents before the failing one remain
    /// ingested and the failing one has no effect.
    fn feed(self, target: &mut dyn IngestTarget) -> Result<u64, StreamError>;
}

/// The unified ingest entry point, blanket-implemented for every
/// [`IngestTarget`].
pub trait Ingest: IngestTarget {
    /// Ingest every document of `source`, returning how many were folded
    /// in.
    fn ingest<S: IngestSource>(&mut self, source: S) -> Result<u64, StreamError>
    where
        Self: Sized,
    {
        source.feed(self)
    }
}

impl<T: IngestTarget> Ingest for T {}

/// One borrowed, already-parsed document tree.
pub fn tree(document: &XmlTree) -> TreeSource<'_> {
    TreeSource { document }
}

/// A borrowed slice of parsed document trees, ingested in order.
pub fn trees(documents: &[XmlTree]) -> TreesSource<'_> {
    TreesSource { documents }
}

/// One borrowed, already-coalesced skeleton tree.
pub fn skeleton(skeleton: &XmlTree) -> SkeletonSource<'_> {
    SkeletonSource { skeleton }
}

/// One document given as raw bytes (zero-copy scanner path).
pub fn bytes(bytes: &[u8]) -> BytesSource<'_> {
    BytesSource { bytes }
}

/// One document given as raw text (zero-copy scanner path).
pub fn text(text: &str) -> BytesSource<'_> {
    BytesSource {
        bytes: text.as_bytes(),
    }
}

/// Every document of a pull-based [`DocumentStream`]: parsed items fold as
/// trees, raw items go through the byte-level scanner without ever being
/// parsed into a tree.
pub fn stream<S: DocumentStream>(stream: S) -> StreamSource<S> {
    StreamSource { stream }
}

/// Source returned by [`tree`].
#[derive(Debug)]
pub struct TreeSource<'a> {
    document: &'a XmlTree,
}

impl IngestSource for TreeSource<'_> {
    fn feed(self, target: &mut dyn IngestTarget) -> Result<u64, StreamError> {
        let doc = target.next_doc_id();
        target.ingest_tree_as(self.document, doc);
        Ok(1)
    }
}

/// Source returned by [`trees`].
#[derive(Debug)]
pub struct TreesSource<'a> {
    documents: &'a [XmlTree],
}

impl IngestSource for TreesSource<'_> {
    fn feed(self, target: &mut dyn IngestTarget) -> Result<u64, StreamError> {
        for document in self.documents {
            let doc = target.next_doc_id();
            target.ingest_tree_as(document, doc);
        }
        Ok(self.documents.len() as u64)
    }
}

/// Source returned by [`skeleton`].
#[derive(Debug)]
pub struct SkeletonSource<'a> {
    skeleton: &'a XmlTree,
}

impl IngestSource for SkeletonSource<'_> {
    fn feed(self, target: &mut dyn IngestTarget) -> Result<u64, StreamError> {
        let doc = target.next_doc_id();
        target.ingest_skeleton_as(self.skeleton, doc);
        Ok(1)
    }
}

/// Source returned by [`bytes`] / [`text`].
#[derive(Debug)]
pub struct BytesSource<'a> {
    bytes: &'a [u8],
}

impl IngestSource for BytesSource<'_> {
    fn feed(self, target: &mut dyn IngestTarget) -> Result<u64, StreamError> {
        let doc = target.next_doc_id();
        target
            .ingest_bytes_as(self.bytes, doc)
            .map_err(|error| StreamError::Parse {
                document: doc.as_u64(),
                error,
            })?;
        Ok(1)
    }
}

/// Source returned by [`stream`].
#[derive(Debug)]
pub struct StreamSource<S> {
    stream: S,
}

impl<S: DocumentStream> IngestSource for StreamSource<S> {
    fn feed(mut self, target: &mut dyn IngestTarget) -> Result<u64, StreamError> {
        let mut observed = 0;
        loop {
            let doc = target.next_doc_id();
            match self.stream.next_item() {
                None => return Ok(observed),
                Some(Err(err)) => return Err(err),
                Some(Ok(StreamItem::Tree(tree))) => target.ingest_tree_as(&tree, doc),
                Some(Ok(StreamItem::Raw(text))) => {
                    target
                        .ingest_bytes_as(text.as_bytes(), doc)
                        .map_err(|error| StreamError::Parse {
                            document: doc.as_u64(),
                            error,
                        })?;
                }
                Some(Ok(StreamItem::RawBytes(bytes))) => {
                    target
                        .ingest_bytes_as(&bytes, doc)
                        .map_err(|error| StreamError::Parse {
                            document: doc.as_u64(),
                            error,
                        })?;
                }
            }
            observed += 1;
        }
    }
}

impl IngestTarget for Synopsis {
    fn next_doc_id(&self) -> DocId {
        DocId(self.document_count())
    }

    fn ingest_tree_as(&mut self, document: &XmlTree, doc: DocId) {
        self.fold_tree_as(document, doc);
    }

    fn ingest_skeleton_as(&mut self, skeleton: &XmlTree, doc: DocId) {
        self.fold_skeleton_as(skeleton, doc);
    }

    fn ingest_bytes_as(&mut self, bytes: &[u8], doc: DocId) -> Result<(), XmlError> {
        let mut sink = SynopsisDocSink::begin(self, doc);
        match scan_document(bytes, &ScanLimits::default(), &mut sink) {
            Ok(()) => {
                sink.commit();
                Ok(())
            }
            Err(error) => {
                sink.abort();
                Err(error)
            }
        }
    }
}

/// Reusable per-document scratch for [`SynopsisDocSink`], parked inside the
/// [`Synopsis`] between documents so steady-state byte ingestion performs no
/// per-document allocations.
#[derive(Debug, Default)]
pub(crate) struct IngestScratch {
    /// Synopsis nodes mirroring the open-element stack; `stack[0].0` is the
    /// synopsis root. The second component memoises the synopsis node the
    /// *previous* child event under this frame resolved to: skeleton
    /// coalescing makes same-label sibling runs the common case, and the
    /// memo lets them skip both the child scan and the visit bookkeeping.
    stack: Vec<(SynopsisNodeId, Option<SynopsisNodeId>)>,
    /// Visited nodes in first-visit order (deterministic commit order).
    order: Vec<SynopsisNodeId>,
    /// Nodes this document created, in creation order, for error rollback.
    created: Vec<SynopsisNodeId>,
}

/// Per-document sink folding scanner events straight into a synopsis,
/// reproducing `skeleton_of` coalescing on the fly (see the module docs for
/// the correspondence argument).
struct SynopsisDocSink<'a> {
    synopsis: &'a mut Synopsis,
    doc: DocId,
    /// Whether this document's summaries are recorded at all. `false` only
    /// in Sets mode when the reservoir predicts a skip — the scan then
    /// validates the document without touching the synopsis.
    record: bool,
    /// This document's [`Synopsis::ingest_epoch`] generation: a node is
    /// visited by this document iff its `visit` stamp equals it.
    epoch: u64,
    /// Scratch buffers borrowed from the synopsis for the document's
    /// duration; `commit`/`abort` park them back.
    scratch: IngestScratch,
}

impl<'a> SynopsisDocSink<'a> {
    fn begin(synopsis: &'a mut Synopsis, doc: DocId) -> Self {
        let record = match synopsis.reservoir.as_ref() {
            Some(r) => !matches!(r.peek(doc), ReservoirDecision::Skip),
            None => true,
        };
        synopsis.ingest_epoch += 1;
        let epoch = synopsis.ingest_epoch;
        let root = synopsis.root();
        let mut scratch = std::mem::take(&mut synopsis.ingest_scratch);
        scratch.stack.clear();
        scratch.order.clear();
        scratch.created.clear();
        scratch.stack.push((root, None));
        Self {
            synopsis,
            doc,
            record,
            epoch,
            scratch,
        }
    }

    /// Resolve `label` below the current node, creating the synopsis node
    /// if needed, and record the visit.
    fn enter(&mut self, label: &str) -> SynopsisNodeId {
        // invariant: open/close events are balanced, so the root never pops
        let top = self
            .scratch
            .stack
            .last_mut()
            .expect("synopsis root stays on the stack");
        let parent = top.0;
        // Fast path: a run of same-label siblings resolves to the node the
        // previous sibling did. `find_or_create_child` returns the first
        // alive child with the label, so the memoised node *is* its answer,
        // and the first resolution already did the visit bookkeeping (visit
        // stamp, order push, parent marked internal).
        if let Some(prev) = top.1 {
            if self.synopsis.nodes[prev.index()].label.as_ref() == label {
                return prev;
            }
        }
        let before = self.synopsis.nodes.len();
        let node = self.synopsis.find_or_create_child(parent, label);
        if node.index() >= before {
            self.scratch.created.push(node);
        }
        if parent != self.synopsis.root() {
            // The parent is on the stack, so its stamp is already current.
            self.synopsis.nodes[parent.index()].visit_internal = true;
        }
        let entry = &mut self.synopsis.nodes[node.index()];
        if entry.visit != self.epoch {
            entry.visit = self.epoch;
            entry.visit_internal = false;
            self.scratch.order.push(node);
        }
        top.1 = Some(node);
        node
    }

    /// The scan succeeded: count the document, settle the reservoir and
    /// write the summaries.
    fn commit(mut self) {
        let synopsis = self.synopsis;
        synopsis.doc_count += 1;
        let mut evicted_doc = None;
        if let Some(reservoir) = synopsis.reservoir.as_mut() {
            // `peek` predicted this decision in `begin`; nothing touched the
            // reservoir in between.
            match reservoir.offer(self.doc) {
                ReservoirDecision::Skip => debug_assert!(!self.record),
                ReservoirDecision::Insert => debug_assert!(self.record),
                ReservoirDecision::Replace { evicted } => {
                    debug_assert!(self.record);
                    evicted_doc = Some(evicted);
                }
            }
        }
        if self.record {
            let hashes_mode = matches!(synopsis.kind(), MatchingSetKind::Hashes { .. });
            if hashes_mode {
                // Store only at path ends — nodes never entered *below*.
                for &node in &self.scratch.order {
                    if !synopsis.nodes[node.index()].visit_internal {
                        synopsis.nodes[node.index()].summary.insert(self.doc);
                    }
                }
            } else {
                synopsis.nodes[0].summary.insert(self.doc);
                for &node in &self.scratch.order {
                    synopsis.nodes[node.index()].summary.insert(self.doc);
                }
            }
        }
        // Record before forgetting: the orders are estimate-identical (the
        // two documents touch summaries independently) and this keeps the
        // freshly visited nodes alive through `remove_empty_leaves`.
        if let Some(evicted) = evicted_doc {
            synopsis.forget_document(evicted);
        }
        synopsis.ingest_scratch = std::mem::take(&mut self.scratch);
        synopsis.touch();
    }

    /// The scan failed: roll back every node this document created. Their
    /// summaries are still empty (writes happen in `commit`), so deleting
    /// them — children before parents — restores the previous structure.
    fn abort(mut self) {
        for &node in self.scratch.created.iter().rev() {
            self.synopsis.delete_node(node);
        }
        self.synopsis.ingest_scratch = std::mem::take(&mut self.scratch);
    }
}

impl SkeletonSink for SynopsisDocSink<'_> {
    fn open(&mut self, label: Cow<'_, str>) {
        if !self.record {
            return;
        }
        let node = self.enter(&label);
        self.scratch.stack.push((node, None));
    }

    fn text(&mut self, label: Cow<'_, str>) {
        if !self.record {
            return;
        }
        self.enter(&label);
    }

    fn close(&mut self) {
        if !self.record {
            return;
        }
        self.scratch.stack.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::SummaryValue;
    use crate::synopsis::SynopsisConfig;
    use tps_xml::stream::LineStream;

    fn configs() -> [SynopsisConfig; 5] {
        [
            SynopsisConfig::counters(),
            SynopsisConfig::sets(2),
            SynopsisConfig::sets(100),
            SynopsisConfig::hashes(4),
            SynopsisConfig::hashes(64),
        ]
    }

    /// Canonical view for equivalence checks: every live root-to-node label
    /// path with its full matching-set value, sorted.
    fn canonical(s: &Synopsis) -> Vec<(Vec<String>, SummaryValue)> {
        fn walk(
            s: &Synopsis,
            id: SynopsisNodeId,
            path: &mut Vec<String>,
            out: &mut Vec<(Vec<String>, SummaryValue)>,
        ) {
            path.push(s.label(id).to_string());
            out.push((path.clone(), s.matching_value(id)));
            for &child in s.children(id) {
                walk(s, child, path, out);
            }
            path.pop();
        }
        let mut out = Vec::new();
        walk(s, s.root(), &mut Vec::new(), &mut out);
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    fn corpus() -> Vec<&'static str> {
        vec![
            "<a><b><e><k/></e><e><m/></e><g><m/></g></b></a>",
            "<a><b><e><k/></e><g><k/><n/></g><f><n/></f></b></a>",
            "<a><b><e><k/></e><g><n/></g></b><c><f><n/></f><o><n/></o><f><h/></f></c></a>",
            "<a><c><f><k/></f><o><n/></o><e><m/></e><h/></c><d><e><k/></e><q><m/></q></d></a>",
            "<a><d><e><k/></e><e><m/></e><p/></d></a>",
            "<a><d><e><m/></e></d></a>",
            // Text leaves, coalescing of text with same-label elements,
            // entities, CDATA, whitespace-only runs.
            "<a>hello</a>",
            "<a><b/>b</a>",
            "<a><b><c/></b>b<b>tail</b></a>",
            "<media><CD><composer><last>Mozart</last></composer></CD></media>",
            "<a>x&amp;y<b>&#65;</b><![CDATA[<raw>]]></a>",
            "<a>  \n\t  <b/>   </a>",
            "<a/>",
            "<r><x>1</x><x>2</x><x>1</x></r>",
        ]
    }

    #[test]
    fn byte_ingest_is_estimate_identical_to_tree_ingest() {
        let docs = corpus();
        for config in configs() {
            let mut via_tree = Synopsis::new(config);
            let mut via_bytes = Synopsis::new(config);
            for (i, text) in docs.iter().enumerate() {
                let tree = XmlTree::parse(text).unwrap();
                via_tree.ingest_tree_as(&tree, DocId(i as u64));
                via_bytes
                    .ingest_bytes_as(text.as_bytes(), DocId(i as u64))
                    .unwrap();
            }
            assert_eq!(via_tree.document_count(), via_bytes.document_count());
            assert_eq!(
                canonical(&via_tree),
                canonical(&via_bytes),
                "{:?}",
                config.kind
            );
            assert_eq!(via_tree.universe_value(), via_bytes.universe_value());
            assert_eq!(
                via_tree.effective_universe(),
                via_bytes.effective_universe()
            );
        }
    }

    #[test]
    fn byte_ingest_matches_under_heavy_reservoir_eviction() {
        // A tiny reservoir over many documents exercises every decision
        // (skip, insert, replace) and the skip-without-recording path.
        let mut via_tree = Synopsis::new(SynopsisConfig::sets(3));
        let mut via_bytes = Synopsis::new(SynopsisConfig::sets(3));
        for i in 0..500u64 {
            let text = format!("<a><b{}><c/></b{}></a>", i % 7, i % 7);
            let tree = XmlTree::parse(&text).unwrap();
            via_tree.ingest_tree_as(&tree, DocId(i));
            via_bytes
                .ingest_bytes_as(text.as_bytes(), DocId(i))
                .unwrap();
        }
        assert_eq!(canonical(&via_tree), canonical(&via_bytes));
    }

    #[test]
    fn a_parse_error_rolls_the_synopsis_back() {
        for config in configs() {
            let mut s = Synopsis::new(config);
            s.ingest(ingest_text_batch(&["<a><b/></a>", "<a><c/></a>"]))
                .unwrap();
            let before = canonical(&s);
            let before_count = s.document_count();
            let doc = s.next_doc_id();
            // Fails midway: `<a><fresh><deeper>` opens new paths before the
            // mismatch is detected.
            let err = s.ingest_bytes_as(b"<a><fresh><deeper>x</wrong>", doc);
            assert!(err.is_err());
            assert_eq!(s.document_count(), before_count, "{:?}", config.kind);
            assert_eq!(canonical(&s), before, "{:?}", config.kind);
        }
    }

    fn ingest_text_batch(texts: &[&str]) -> impl IngestSource {
        let joined: String = texts.iter().map(|t| format!("{t}\n")).collect();
        stream(LineStream::new(std::io::Cursor::new(joined.into_bytes())))
    }

    #[test]
    fn all_sources_agree() {
        let texts = ["<a><b/></a>", "<a><b/><c/></a>", "<a>t</a>"];
        let parsed: Vec<XmlTree> = texts.iter().map(|t| XmlTree::parse(t).unwrap()).collect();

        let mut via_trees = Synopsis::new(SynopsisConfig::hashes(16));
        assert_eq!(via_trees.ingest(trees(&parsed)).unwrap(), 3);

        let mut via_single = Synopsis::new(SynopsisConfig::hashes(16));
        for t in &parsed {
            via_single.ingest(tree(t)).unwrap();
        }

        let mut via_skeletons = Synopsis::new(SynopsisConfig::hashes(16));
        for t in &parsed {
            via_skeletons.ingest(skeleton(&t.skeleton())).unwrap();
        }

        let mut via_text = Synopsis::new(SynopsisConfig::hashes(16));
        for t in texts {
            via_text.ingest(text(t)).unwrap();
        }

        let mut via_stream = Synopsis::new(SynopsisConfig::hashes(16));
        via_stream.ingest(ingest_text_batch(&texts)).unwrap();

        let expected = canonical(&via_trees);
        for (name, s) in [
            ("tree", &via_single),
            ("skeleton", &via_skeletons),
            ("text", &via_text),
            ("stream", &via_stream),
        ] {
            assert_eq!(s.document_count(), 3, "{name}");
            assert_eq!(canonical(s), expected, "{name}");
        }
    }

    #[test]
    fn stream_errors_carry_the_global_document_index() {
        let mut s = Synopsis::new(SynopsisConfig::counters());
        s.ingest(text("<a/>")).unwrap();
        let err = s
            .ingest(stream(LineStream::new("<b/>\n<broken\n".as_bytes())))
            .unwrap_err();
        match err {
            StreamError::Parse { document, .. } => assert_eq!(document, 2),
            other => panic!("expected a parse error, got {other}"),
        }
        // The valid documents were kept.
        assert_eq!(s.document_count(), 2);
    }

    #[test]
    fn invalid_utf8_is_rejected_without_side_effects() {
        let mut s = Synopsis::new(SynopsisConfig::counters());
        let err = s
            .ingest_bytes_as(&[b'<', 0xFF, 0xFE], DocId(0))
            .unwrap_err();
        assert_eq!(*err.kind(), tps_xml::error::XmlErrorKind::InvalidUtf8);
        assert_eq!(s.document_count(), 0);
        assert_eq!(s.node_count(), 1, "only the root");
    }
}
