//! The scaling experiment for the banded-MinHash candidate index: what
//! registering and clustering a large subscription workload costs when no
//! pair outside the candidate set is ever scored.
//!
//! The paper's figures stop at thousands of subscriptions because every
//! batch clustering pass evaluates all `n(n-1)/2` pairs. The candidate
//! index replaces that scan with per-arrival band probes, so the sweep here
//! pushes the subscription count up to one million (at `TPS_SCALE=paper`)
//! and reports the wall time, the per-subscription cost and the index
//! footprint at each size. Near-linear scaling shows as a roughly flat
//! `us/sub` column; the `cargo bench` suite (`benches/index.rs` in
//! `tps-bench`) pins the same property as a CI ratio gate.
//!
//! Signatures derive from the patterns alone ([`pattern_features`]), so the
//! sweep needs no document corpus at all — exactly the property that makes
//! registration `O(pattern)`.

use std::time::Instant;

use tps_cluster::{pattern_features, LeaderConfig, LshConfig, OnlineLeader};
use tps_workload::{Dtd, XPathGenConfig, XPathGenerator};

use crate::harness::Table;
use crate::scale::ExperimentScale;

/// Similarity threshold used for the leader assignment at every size.
pub const THRESHOLD: f64 = 0.5;

/// Subscription counts swept at the given scale. The `paper` preset ends at
/// the headline one-million-subscription point; `tiny` stays small enough
/// for CI smoke runs.
pub fn subscription_sweep(scale: &ExperimentScale) -> Vec<usize> {
    if scale.name.starts_with("paper") {
        vec![10_000, 100_000, 1_000_000]
    } else if scale.name.starts_with("tiny") {
        vec![500, 1_000, 2_000]
    } else {
        vec![5_000, 20_000, 80_000]
    }
}

/// The scaling figure at the standard sweep for `scale`.
pub fn fig_scaling(scale: &ExperimentScale) -> Table {
    fig_scaling_sweep(scale, &subscription_sweep(scale))
}

/// One row per subscription count: generate that many subscriptions from
/// the media DTD, then time the incremental register+cluster loop through
/// [`OnlineLeader`] (generation and feature extraction are excluded from
/// the timed section — they are the same for any clustering discipline).
pub fn fig_scaling_sweep(scale: &ExperimentScale, sizes: &[usize]) -> Table {
    let dtd = Dtd::media();
    let lsh = LshConfig::default();
    let mut table = Table::new(
        &format!(
            "Candidate-index scaling: incremental register+cluster \
             ({} bands x {} rows, threshold {THRESHOLD})",
            lsh.bands(),
            lsh.rows()
        ),
        &[
            "subs",
            "features",
            "communities",
            "index-MiB",
            "build-ms",
            "us/sub",
        ],
    );
    for (row, &count) in sizes.iter().enumerate() {
        // A fresh generator per row keeps every row's workload independent
        // of the sweep order (and of the other rows' sizes).
        let mut generator = XPathGenerator::new(
            &dtd,
            XPathGenConfig::default().with_seed(scale.seed.wrapping_add(row as u64)),
        );
        let features: Vec<Vec<u64>> = (0..count)
            .map(|_| pattern_features(&generator.generate()))
            .collect();
        let total_features: usize = features.iter().map(Vec::len).sum();
        let start = Instant::now();
        let mut online = OnlineLeader::new(
            lsh,
            LeaderConfig {
                similarity_threshold: THRESHOLD,
                ..LeaderConfig::default()
            },
        );
        for feature_set in &features {
            online.insert_features_estimated(feature_set);
        }
        let elapsed = start.elapsed().as_secs_f64();
        table.push_row(vec![
            count.to_string(),
            total_features.to_string(),
            online.cluster_count().to_string(),
            format!(
                "{:.2}",
                online.index().memory_bytes() as f64 / (1024.0 * 1024.0)
            ),
            format!("{:.1}", elapsed * 1e3),
            format!("{:.2}", elapsed * 1e6 / count.max(1) as f64),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::ScaleConfig;

    #[test]
    fn sweeps_grow_with_the_scale_and_paper_reaches_a_million() {
        let tiny = subscription_sweep(&ScaleConfig::preset("tiny").resolve());
        let quick = subscription_sweep(&ScaleConfig::preset("quick").resolve());
        let paper = subscription_sweep(&ScaleConfig::preset("paper").resolve());
        for sweep in [&tiny, &quick, &paper] {
            assert!(sweep.windows(2).all(|w| w[0] < w[1]), "{sweep:?}");
        }
        assert!(tiny.last() < quick.last());
        assert_eq!(paper.last(), Some(&1_000_000));
        // The downscale factor changes the name, not the sweep shape.
        let half = subscription_sweep(&ScaleConfig::preset("tiny").with_factor(0.5).resolve());
        assert_eq!(half, tiny);
    }

    #[test]
    fn figure_produces_one_row_per_size_with_sane_columns() {
        let scale = ScaleConfig::preset("tiny").resolve();
        let table = fig_scaling_sweep(&scale, &[200, 400]);
        assert_eq!(table.rows.len(), 2);
        for row in &table.rows {
            let subs: usize = row[0].parse().unwrap();
            let features: usize = row[1].parse().unwrap();
            let communities: usize = row[2].parse().unwrap();
            assert!(features >= subs, "{row:?}");
            assert!(communities >= 1 && communities <= subs, "{row:?}");
        }
        // More subscriptions, at least as many communities.
        let first: usize = table.rows[0][2].parse().unwrap();
        let second: usize = table.rows[1][2].parse().unwrap();
        assert!(second >= first, "{table:?}");
    }
}
