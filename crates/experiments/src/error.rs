//! Error metrics of the evaluation (Section 5.1, "Error metrics").
//!
//! * Positive queries: average absolute relative error
//!   `Erel = (1/|SP|) Σ |P'(p) − P(p)| / P(p)`.
//! * Negative queries: root mean square error
//!   `Esqr = sqrt((1/|SN|) Σ (P'(p) − P(p))²)` (with `P(p) = 0`).
//! * Proximity metrics: average absolute relative error of the estimated
//!   similarity over pattern pairs, `Erel(Mi)`.

/// Average absolute relative error over (exact, estimated) pairs.
///
/// Pairs whose exact value is zero are skipped (the relative error is
/// undefined there); the paper only applies this metric to positive queries,
/// whose exact selectivity is strictly positive.
pub fn average_relative_error(pairs: &[(f64, f64)]) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for &(exact, estimated) in pairs {
        if exact <= 0.0 {
            continue;
        }
        total += (estimated - exact).abs() / exact;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Root mean square error over (exact, estimated) pairs.
pub fn root_mean_square_error(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let sum: f64 = pairs
        .iter()
        .map(|&(exact, estimated)| (estimated - exact).powi(2))
        .sum();
    (sum / pairs.len() as f64).sqrt()
}

/// `log10` of the RMSE, as plotted in Figure 5. Returns the floor value
/// `-10.0` when the error is exactly zero (the paper's plots bottom out
/// around `10^-6`).
pub fn log10_rmse(pairs: &[(f64, f64)]) -> f64 {
    let rmse = root_mean_square_error(pairs);
    if rmse <= 0.0 {
        -10.0
    } else {
        rmse.log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_of_perfect_estimates_is_zero() {
        let pairs = vec![(0.5, 0.5), (0.1, 0.1)];
        assert_eq!(average_relative_error(&pairs), 0.0);
    }

    #[test]
    fn relative_error_averages_over_pairs() {
        // Errors of 50% and 10%.
        let pairs = vec![(0.2, 0.3), (1.0, 0.9)];
        assert!((average_relative_error(&pairs) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn zero_exact_values_are_skipped() {
        let pairs = vec![(0.0, 0.7), (0.5, 0.25)];
        assert!((average_relative_error(&pairs) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_input_gives_zero_errors() {
        assert_eq!(average_relative_error(&[]), 0.0);
        assert_eq!(root_mean_square_error(&[]), 0.0);
    }

    #[test]
    fn rmse_of_constant_error_is_that_error() {
        let pairs = vec![(0.0, 0.01); 10];
        assert!((root_mean_square_error(&pairs) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn rmse_penalises_large_errors_quadratically() {
        let small = vec![(0.0, 0.01), (0.0, 0.01)];
        let one_big = vec![(0.0, 0.0), (0.0, 0.02)];
        assert!(root_mean_square_error(&one_big) > root_mean_square_error(&small));
    }

    #[test]
    fn log10_rmse_handles_zero() {
        assert_eq!(log10_rmse(&[(0.0, 0.0)]), -10.0);
        let pairs = vec![(0.0, 0.001)];
        assert!((log10_rmse(&pairs) - (-3.0)).abs() < 1e-9);
    }
}
