//! Regenerates Figure 6: Erel as a function of the total synopsis size |HS|
//! (the paper reports this for the xCBL DTD).

use tps_experiments::figures::fig6;
use tps_experiments::{DtdWorkload, ScaleConfig};

fn main() {
    let scale = ScaleConfig::from_env().resolve();
    eprintln!(
        "[fig6] scale = {} (set TPS_SCALE=paper|quick|tiny, TPS_REPRO_SCALE=<factor>)",
        scale.name
    );
    let workloads = vec![DtdWorkload::xcbl(&scale)];
    fig6(&workloads, &scale).print();
}
