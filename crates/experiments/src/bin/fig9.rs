//! Regenerates Figure 9: Erel of proximity metric M3(p,q) = P(p∧q)/P(p∨q).

use tps_experiments::figures::fig789;
use tps_experiments::{DtdWorkload, ScaleConfig};

fn main() {
    let scale = ScaleConfig::from_env().resolve();
    eprintln!(
        "[fig9] scale = {} (set TPS_SCALE=paper|quick|tiny, TPS_REPRO_SCALE=<factor>)",
        scale.name
    );
    let workloads = DtdWorkload::both(&scale);
    let [_, _, m3] = fig789(&workloads, &scale);
    m3.print();
}
