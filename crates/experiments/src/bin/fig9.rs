//! Regenerates Figure 9: Erel of proximity metric M3(p,q) = P(p∧q)/P(p∨q).

use tps_experiments::figures::fig789;
use tps_experiments::{DtdWorkload, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    eprintln!(
        "[fig9] scale = {} (set TPS_SCALE=paper|quick|tiny)",
        scale.name
    );
    let workloads = DtdWorkload::both(&scale);
    let [_, _, m3] = fig789(&workloads, &scale);
    m3.print();
}
