//! Regenerates Figure 5: log10(Esqr) of negative queries vs. max hash/set size.

use tps_experiments::figures::fig5;
use tps_experiments::{DtdWorkload, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    eprintln!(
        "[fig5] scale = {} (set TPS_SCALE=paper|quick|tiny)",
        scale.name
    );
    let workloads = DtdWorkload::both(&scale);
    fig5(&workloads, &scale).print();
}
