//! Regenerates Figure 5: log10(Esqr) of negative queries vs. max hash/set size.

use tps_experiments::figures::fig5;
use tps_experiments::{DtdWorkload, ScaleConfig};

fn main() {
    let scale = ScaleConfig::from_env().resolve();
    eprintln!(
        "[fig5] scale = {} (set TPS_SCALE=paper|quick|tiny, TPS_REPRO_SCALE=<factor>)",
        scale.name
    );
    let workloads = DtdWorkload::both(&scale);
    fig5(&workloads, &scale).print();
}
