//! Regenerates Figure 7: Erel of proximity metric M1(p,q) = P(p|q).

use tps_experiments::figures::fig789;
use tps_experiments::{DtdWorkload, ScaleConfig};

fn main() {
    let scale = ScaleConfig::from_env().resolve();
    eprintln!(
        "[fig7] scale = {} (set TPS_SCALE=paper|quick|tiny, TPS_REPRO_SCALE=<factor>)",
        scale.name
    );
    let workloads = DtdWorkload::both(&scale);
    let [m1, _, _] = fig789(&workloads, &scale);
    m1.print();
}
