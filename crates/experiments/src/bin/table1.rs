//! Regenerates the dataset/workload statistics of Table 1 and Section 5.1.

use tps_experiments::figures::table1;
use tps_experiments::{DtdWorkload, ScaleConfig};

fn main() {
    let scale = ScaleConfig::from_env().resolve();
    eprintln!(
        "[table1] scale = {} (set TPS_SCALE=paper|quick|tiny, TPS_REPRO_SCALE=<factor>)",
        scale.name
    );
    let workloads = DtdWorkload::both(&scale);
    table1(&workloads).print();
}
