//! Regenerates the dataset/workload statistics of Table 1 and Section 5.1.

use tps_experiments::figures::table1;
use tps_experiments::{DtdWorkload, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    eprintln!(
        "[table1] scale = {} (set TPS_SCALE=paper|quick|tiny)",
        scale.name
    );
    let workloads = DtdWorkload::both(&scale);
    table1(&workloads).print();
}
