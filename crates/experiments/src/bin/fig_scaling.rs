//! Regenerates the candidate-index scaling sweep: incremental
//! register+cluster cost as the subscription count grows (one million
//! subscriptions at `TPS_SCALE=paper`).
//!
//! ```text
//! TPS_SCALE=paper cargo run --release -p tps-experiments --bin fig_scaling
//! ```

use tps_experiments::scaling::fig_scaling;
use tps_experiments::ScaleConfig;

fn main() {
    let scale = ScaleConfig::from_env().resolve();
    eprintln!(
        "[fig_scaling] scale = {} (set TPS_SCALE=paper|quick|tiny, TPS_REPRO_SCALE=<factor>)",
        scale.name
    );
    fig_scaling(&scale).print();
}
