//! Regenerates the dynamic churn sweep: recluster policies vs staleness
//! cost under subscription churn (`tps-sim`).
//!
//! ```text
//! TPS_SCALE=tiny cargo run --release -p tps-experiments --bin fig_dynamic
//! ```

use tps_experiments::dynamics::fig_dynamic;
use tps_experiments::ScaleConfig;

fn main() {
    let scale = ScaleConfig::from_env().resolve();
    eprintln!(
        "[fig_dynamic] scale = {} (set TPS_SCALE=paper|quick|tiny, TPS_REPRO_SCALE=<factor>)",
        scale.name
    );
    let threads = tps_core::par::available_workers();
    fig_dynamic(&scale, threads).print();
}
