//! Regenerates Figure 4: Erel of positive queries vs. max hash/set size.

use tps_experiments::figures::fig4;
use tps_experiments::{DtdWorkload, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    eprintln!(
        "[fig4] scale = {} (set TPS_SCALE=paper|quick|tiny)",
        scale.name
    );
    let workloads = DtdWorkload::both(&scale);
    fig4(&workloads, &scale).print();
}
