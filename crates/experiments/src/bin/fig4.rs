//! Regenerates Figure 4: Erel of positive queries vs. max hash/set size.

use tps_experiments::figures::fig4;
use tps_experiments::{DtdWorkload, ScaleConfig};

fn main() {
    let scale = ScaleConfig::from_env().resolve();
    eprintln!(
        "[fig4] scale = {} (set TPS_SCALE=paper|quick|tiny, TPS_REPRO_SCALE=<factor>)",
        scale.name
    );
    let workloads = DtdWorkload::both(&scale);
    fig4(&workloads, &scale).print();
}
