//! Runs every experiment of the evaluation section in sequence and prints
//! the resulting tables (Table 1, Figures 4–10, plus the design ablations).
//!
//! ```text
//! TPS_SCALE=quick cargo run --release -p tps-experiments --bin run_all
//! TPS_SCALE=tiny TPS_REPRO_SCALE=0.5 cargo run --release -p tps-experiments --bin run_all
//! ```
//!
//! See `docs/REPRODUCTION.md` for the full reproduction workflow (the CI
//! job that runs this downscaled, and the paper-scale invocation).

use std::time::Instant;

use tps_experiments::dynamics::fig_dynamic;
use tps_experiments::figures::{
    ablation_representations, analysis_compaction, fig10, fig4, fig5, fig6, fig789, table1,
};
use tps_experiments::scaling::fig_scaling;
use tps_experiments::{DtdWorkload, ScaleConfig};

fn main() {
    let scale = ScaleConfig::from_env().resolve();
    eprintln!(
        "[run_all] scale = {} ({} docs, {} positives, {} negatives, {} pairs)",
        scale.name,
        scale.document_count,
        scale.positive_count,
        scale.negative_count,
        scale.pair_count
    );
    let start = Instant::now();
    let workloads = DtdWorkload::both(&scale);
    eprintln!(
        "[run_all] workloads generated in {:.1}s",
        start.elapsed().as_secs_f64()
    );

    let t = Instant::now();
    table1(&workloads).print();
    eprintln!("[run_all] table1 done in {:.1}s", t.elapsed().as_secs_f64());

    let t = Instant::now();
    fig4(&workloads, &scale).print();
    eprintln!("[run_all] fig4 done in {:.1}s", t.elapsed().as_secs_f64());

    let t = Instant::now();
    fig5(&workloads, &scale).print();
    eprintln!("[run_all] fig5 done in {:.1}s", t.elapsed().as_secs_f64());

    let t = Instant::now();
    fig6(&workloads[1..], &scale).print();
    eprintln!("[run_all] fig6 done in {:.1}s", t.elapsed().as_secs_f64());

    let t = Instant::now();
    let [m1, m2, m3] = fig789(&workloads, &scale);
    m1.print();
    m2.print();
    m3.print();
    eprintln!("[run_all] fig7-9 done in {:.1}s", t.elapsed().as_secs_f64());

    let t = Instant::now();
    fig10(&workloads, &scale).print();
    eprintln!("[run_all] fig10 done in {:.1}s", t.elapsed().as_secs_f64());

    let t = Instant::now();
    analysis_compaction(&workloads).print();
    eprintln!(
        "[run_all] analysis done in {:.1}s",
        t.elapsed().as_secs_f64()
    );

    let t = Instant::now();
    ablation_representations(&workloads, &scale).print();
    eprintln!(
        "[run_all] ablation done in {:.1}s",
        t.elapsed().as_secs_f64()
    );

    let t = Instant::now();
    fig_dynamic(&scale, tps_core::par::available_workers()).print();
    eprintln!(
        "[run_all] fig_dynamic done in {:.1}s",
        t.elapsed().as_secs_f64()
    );

    let t = Instant::now();
    fig_scaling(&scale).print();
    eprintln!(
        "[run_all] fig_scaling done in {:.1}s",
        t.elapsed().as_secs_f64()
    );

    eprintln!(
        "[run_all] total wall time {:.1}s",
        start.elapsed().as_secs_f64()
    );
}
