//! Regenerates Figure 8: Erel of proximity metric M2(p,q) = (P(p|q)+P(q|p))/2.

use tps_experiments::figures::fig789;
use tps_experiments::{DtdWorkload, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    eprintln!(
        "[fig8] scale = {} (set TPS_SCALE=paper|quick|tiny)",
        scale.name
    );
    let workloads = DtdWorkload::both(&scale);
    let [_, m2, _] = fig789(&workloads, &scale);
    m2.print();
}
