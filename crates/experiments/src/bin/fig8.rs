//! Regenerates Figure 8: Erel of proximity metric M2(p,q) = (P(p|q)+P(q|p))/2.

use tps_experiments::figures::fig789;
use tps_experiments::{DtdWorkload, ScaleConfig};

fn main() {
    let scale = ScaleConfig::from_env().resolve();
    eprintln!(
        "[fig8] scale = {} (set TPS_SCALE=paper|quick|tiny, TPS_REPRO_SCALE=<factor>)",
        scale.name
    );
    let workloads = DtdWorkload::both(&scale);
    let [_, m2, _] = fig789(&workloads, &scale);
    m2.print();
}
