//! Regenerates Figure 10: Erel and Esqr as a function of the synopsis
//! compression ratio α (Hashes representation).

use tps_experiments::figures::fig10;
use tps_experiments::{DtdWorkload, ScaleConfig};

fn main() {
    let scale = ScaleConfig::from_env().resolve();
    eprintln!(
        "[fig10] scale = {} (set TPS_SCALE=paper|quick|tiny, TPS_REPRO_SCALE=<factor>)",
        scale.name
    );
    let workloads = DtdWorkload::both(&scale);
    fig10(&workloads, &scale).print();
}
