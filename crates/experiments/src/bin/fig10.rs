//! Regenerates Figure 10: Erel and Esqr as a function of the synopsis
//! compression ratio α (Hashes representation).

use tps_experiments::figures::fig10;
use tps_experiments::{DtdWorkload, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_env();
    eprintln!(
        "[fig10] scale = {} (set TPS_SCALE=paper|quick|tiny)",
        scale.name
    );
    let workloads = DtdWorkload::both(&scale);
    fig10(&workloads, &scale).print();
}
