//! Reproduction of every table and figure of the paper's evaluation
//! (Section 5.2). Each function returns a [`Table`] whose rows correspond to
//! the series points of the figure; the binaries in `src/bin` print them.

use tps_synopsis::{MatchingSetKind, PruneConfig};

use crate::error::log10_rmse;
use crate::harness::{fmt3, fmt_pct, representations, DtdWorkload, Table};
use crate::scale::ExperimentScale;

/// Table 1 plus the dataset statistics quoted in Section 5.1: per DTD, the
/// number of documents, average document size, and the average / most / least
/// selective positive pattern.
pub fn table1(workloads: &[DtdWorkload]) -> Table {
    let mut table = Table::new(
        "Table 1 / Section 5.1 — data sets and workload statistics",
        &[
            "DTD",
            "documents",
            "avg doc size",
            "|SP|",
            "|SN|",
            "avg sel (%)",
            "min sel (%)",
            "max sel (%)",
        ],
    );
    for w in workloads {
        let stats = w.dataset.positive_selectivity_stats();
        table.push_row(vec![
            w.name.clone(),
            w.dataset.document_count().to_string(),
            format!("{:.1}", w.dataset.average_document_size()),
            w.dataset.positive.len().to_string(),
            w.dataset.negative.len().to_string(),
            fmt_pct(stats.average),
            fmt_pct(stats.minimum),
            fmt_pct(stats.maximum),
        ]);
    }
    table
}

/// Figure 4: average absolute relative error of positive queries as a
/// function of the maximum hash/set size, for every representation and DTD.
pub fn fig4(workloads: &[DtdWorkload], scale: &ExperimentScale) -> Table {
    let mut table = Table::new(
        "Figure 4 — Erel (%) of positive queries vs. max size of hashes/sets",
        &["DTD", "representation", "size", "Erel (%)"],
    );
    for w in workloads {
        for &size in &scale.summary_sizes {
            for kind in representations(size) {
                // Counters have no size knob; only report them once per DTD.
                if matches!(kind, MatchingSetKind::Counters) && size != scale.summary_sizes[0] {
                    continue;
                }
                let engine = w.build_engine(kind);
                let erel = w.positive_relative_error(&engine);
                table.push_row(vec![
                    w.name.clone(),
                    kind.name().to_string(),
                    size.to_string(),
                    fmt_pct(erel),
                ]);
            }
        }
    }
    table
}

/// Figure 5: `log10` of the root mean square error of negative queries as a
/// function of the maximum hash/set size.
pub fn fig5(workloads: &[DtdWorkload], scale: &ExperimentScale) -> Table {
    let mut table = Table::new(
        "Figure 5 — log10(Esqr) of negative queries vs. max size of hashes/sets",
        &["DTD", "representation", "size", "Esqr", "log10(Esqr)"],
    );
    for w in workloads {
        for &size in &scale.summary_sizes {
            for kind in representations(size) {
                if matches!(kind, MatchingSetKind::Counters) && size != scale.summary_sizes[0] {
                    continue;
                }
                let engine = w.build_engine(kind);
                let esqr = w.negative_square_error(&engine);
                let pairs = vec![(0.0, esqr)];
                table.push_row(vec![
                    w.name.clone(),
                    kind.name().to_string(),
                    size.to_string(),
                    format!("{esqr:.2e}"),
                    fmt3(log10_rmse(&pairs)),
                ]);
            }
        }
    }
    table
}

/// Figure 6: `Erel` of positive queries as a function of the *total* synopsis
/// size `|HS|` (the fairer space comparison, reported for the xCBL DTD in
/// the paper; we emit every workload passed in).
pub fn fig6(workloads: &[DtdWorkload], scale: &ExperimentScale) -> Table {
    let mut table = Table::new(
        "Figure 6 — Erel (%) vs. total synopsis size |HS| (nodes+edges+labels+entries)",
        &["DTD", "representation", "max size", "|HS|", "Erel (%)"],
    );
    for w in workloads {
        for &size in &scale.summary_sizes {
            for kind in representations(size) {
                if matches!(kind, MatchingSetKind::Counters) && size != scale.summary_sizes[0] {
                    continue;
                }
                let engine = w.build_engine(kind);
                let erel = w.positive_relative_error(&engine);
                table.push_row(vec![
                    w.name.clone(),
                    kind.name().to_string(),
                    size.to_string(),
                    engine.size_total().to_string(),
                    fmt_pct(erel),
                ]);
            }
        }
    }
    table
}

/// Figures 7, 8 and 9: average absolute relative error of the three
/// proximity metrics (`M1`, `M2`, `M3`) over random pairs of positive
/// patterns, as a function of the maximum hash/set size. Returns one table
/// per metric.
pub fn fig789(workloads: &[DtdWorkload], scale: &ExperimentScale) -> [Table; 3] {
    let mut tables = [
        Table::new(
            "Figure 7 — Erel (%) of proximity metric M1(p,q) = P(p|q)",
            &["DTD", "representation", "size", "Erel (%)"],
        ),
        Table::new(
            "Figure 8 — Erel (%) of proximity metric M2(p,q) = (P(p|q)+P(q|p))/2",
            &["DTD", "representation", "size", "Erel (%)"],
        ),
        Table::new(
            "Figure 9 — Erel (%) of proximity metric M3(p,q) = P(p∧q)/P(p∨q)",
            &["DTD", "representation", "size", "Erel (%)"],
        ),
    ];
    for w in workloads {
        let pairs = w.sample_pairs(scale.pair_count, scale.seed ^ 0xbeef);
        let exact_values = w.exact_metric_values(&pairs);
        for &size in &scale.summary_sizes {
            for kind in representations(size) {
                if matches!(kind, MatchingSetKind::Counters) && size != scale.summary_sizes[0] {
                    continue;
                }
                let engine = w.build_engine(kind);
                let errors = w.metric_relative_errors_against(&engine, &pairs, &exact_values);
                for (slot, table) in tables.iter_mut().enumerate() {
                    table.push_row(vec![
                        w.name.clone(),
                        kind.name().to_string(),
                        size.to_string(),
                        fmt_pct(errors[slot]),
                    ]);
                }
            }
        }
    }
    tables
}

/// Figure 10: `Erel` of positive queries and `Esqr` of negative queries as a
/// function of the compression ratio α of a Hashes synopsis (hash size fixed,
/// pruning applied as in Section 5.2: lossless folds, then folds/deletions,
/// then merges).
pub fn fig10(workloads: &[DtdWorkload], scale: &ExperimentScale) -> Table {
    let mut table = Table::new(
        "Figure 10 — Erel (%) and log10(Esqr) vs. synopsis compression ratio α (Hashes)",
        &[
            "DTD",
            "target α",
            "achieved α",
            "|HcS|",
            "folds",
            "deletions",
            "merges",
            "Erel (%)",
            "log10(Esqr)",
        ],
    );
    for w in workloads {
        let base = w.build_engine(MatchingSetKind::Hashes {
            capacity: scale.fig10_hash_size,
        });
        let mut ratios = scale.compression_ratios.clone();
        ratios.sort_by(|a, b| b.total_cmp(a));
        for alpha in ratios {
            let mut engine = base.clone();
            let report = engine.engine.prune_to_ratio(alpha, PruneConfig::default());
            let erel = w.positive_relative_error(&engine);
            let esqr = w.negative_square_error(&engine);
            table.push_row(vec![
                w.name.clone(),
                fmt3(alpha),
                fmt3(report.ratio()),
                report.final_size.to_string(),
                report.folds.to_string(),
                report.deletions.to_string(),
                report.merges.to_string(),
                fmt_pct(erel),
                fmt3(log10_rmse(&[(0.0, esqr)])),
            ]);
        }
    }
    table
}

/// Ablation (DESIGN.md): the counter / set / hash representations compared
/// at (approximately) equal total space budget, plus skeleton-coalescing
/// on/off — the design choices the synopsis section motivates.
pub fn ablation_representations(workloads: &[DtdWorkload], scale: &ExperimentScale) -> Table {
    let mut table = Table::new(
        "Ablation — representations at equal summary size, and pruning-order sensitivity",
        &["DTD", "variant", "|HS|", "Erel (%)", "log10(Esqr)"],
    );
    let size = scale
        .summary_sizes
        .get(scale.summary_sizes.len() / 2)
        .copied()
        .unwrap_or(500);
    for w in workloads {
        for kind in representations(size) {
            let engine = w.build_engine(kind);
            table.push_row(vec![
                w.name.clone(),
                kind.name().to_string(),
                engine.size_total().to_string(),
                fmt_pct(w.positive_relative_error(&engine)),
                fmt3(log10_rmse(&[(0.0, w.negative_square_error(&engine))])),
            ]);
        }
        // Pruning-order ablation: merges first instead of the paper's order
        // (compress to 70% of the original size either way).
        let mut merged_first = w.build_engine(MatchingSetKind::Hashes { capacity: size });
        let target = merged_first.size_total() * 7 / 10;
        {
            let synopsis = merged_first.engine.synopsis_mut();
            synopsis.merge_same_label_until(64, target);
            synopsis.fold_leaves_above_until(0.5, target);
            synopsis.delete_smallest_leaves_until(target);
        }
        table.push_row(vec![
            w.name.clone(),
            "Hashes α=0.7 merge-first".to_string(),
            merged_first.size_total().to_string(),
            fmt_pct(w.positive_relative_error(&merged_first)),
            fmt3(log10_rmse(&[(0.0, w.negative_square_error(&merged_first))])),
        ]);
        let mut paper_order = w.build_engine(MatchingSetKind::Hashes { capacity: size });
        paper_order
            .engine
            .prune_to_ratio(0.7, PruneConfig::default());
        table.push_row(vec![
            w.name.clone(),
            "Hashes α=0.7 paper-order".to_string(),
            paper_order.size_total().to_string(),
            fmt_pct(w.positive_relative_error(&paper_order)),
            fmt3(log10_rmse(&[(0.0, w.negative_square_error(&paper_order))])),
        ]);
    }
    table
}

/// Static-analysis table (docs/ANALYSIS.md): lint-diagnostic counts over
/// each DTD's positive workload, and the routing-table compaction the
/// analysis licenses at both soundness levels (syntactic-only proofs are
/// safe on arbitrary streams; DTD-aware proofs additionally assume the
/// stream conforms to the DTD).
pub fn analysis_compaction(workloads: &[DtdWorkload]) -> Table {
    use tps_analyze::{CompactionMode, LintCode, WorkloadAnalyzer, WorkloadEntry};
    use tps_dtd::writer::schema_from_workload;

    let mut table = Table::new(
        "Static analysis — workload lint diagnostics and table compaction",
        &[
            "DTD",
            "|SP|",
            "E001",
            "W002",
            "W003",
            "W004",
            "keep universal",
            "keep dtd-aware",
        ],
    );
    for w in workloads {
        let schema = schema_from_workload(&w.dataset.dtd);
        let entries: Vec<WorkloadEntry> = w
            .dataset
            .positive
            .iter()
            .map(WorkloadEntry::from_pattern)
            .collect();
        let report = WorkloadAnalyzer::new(Some(&schema)).analyze(&entries);
        let universal = report.plan.stats(CompactionMode::Universal);
        let dtd_aware = report.plan.stats(CompactionMode::DtdAware);
        table.push_row(vec![
            w.name.clone(),
            entries.len().to_string(),
            report.count(LintCode::Unsatisfiable).to_string(),
            report.count(LintCode::ContainedRedundant).to_string(),
            report.count(LintCode::DtdEquivalentDuplicate).to_string(),
            report.count(LintCode::CostHazard).to_string(),
            format!("{}/{}", universal.kept, universal.input),
            format!("{}/{}", dtd_aware.kept, dtd_aware.input),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_workload::Dtd;

    fn tiny() -> (Vec<DtdWorkload>, ExperimentScale) {
        let mut scale = ExperimentScale::tiny();
        scale.document_count = 50;
        scale.positive_count = 12;
        scale.negative_count = 12;
        scale.pair_count = 15;
        scale.summary_sizes = vec![50, 200];
        scale.compression_ratios = vec![1.0, 0.5];
        scale.fig10_hash_size = 64;
        let workloads = vec![DtdWorkload::build("NITF", Dtd::nitf_like(), &scale)];
        (workloads, scale)
    }

    #[test]
    fn table1_reports_one_row_per_dtd() {
        let (workloads, _) = tiny();
        let t = table1(&workloads);
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.rows[0][0], "NITF");
    }

    #[test]
    fn fig4_reports_every_series_point() {
        let (workloads, scale) = tiny();
        let t = fig4(&workloads, &scale);
        // 2 sizes × (Sets + Hashes) + 1 Counters row.
        assert_eq!(t.rows.len(), 2 * 2 + 1);
        // Every error is a parseable percentage.
        for row in &t.rows {
            let v: f64 = row[3].parse().unwrap();
            assert!(v >= 0.0);
        }
    }

    #[test]
    fn fig5_reports_log_rmse() {
        let (workloads, scale) = tiny();
        let t = fig5(&workloads, &scale);
        assert!(!t.rows.is_empty());
        for row in &t.rows {
            let log: f64 = row[4].parse().unwrap();
            assert!(log <= 0.0, "log10 of an RMSE below 1 must be negative");
        }
    }

    #[test]
    fn fig6_reports_total_sizes() {
        let (workloads, scale) = tiny();
        let t = fig6(&workloads, &scale);
        for row in &t.rows {
            let size: usize = row[3].parse().unwrap();
            assert!(size > 0);
        }
    }

    #[test]
    fn fig789_produces_three_tables_with_equal_shape() {
        let (workloads, scale) = tiny();
        let tables = fig789(&workloads, &scale);
        let len = tables[0].rows.len();
        assert!(len > 0);
        assert_eq!(tables[1].rows.len(), len);
        assert_eq!(tables[2].rows.len(), len);
    }

    #[test]
    fn analysis_compaction_reports_one_row_per_dtd() {
        let (workloads, _) = tiny();
        let t = analysis_compaction(&workloads);
        assert_eq!(t.rows.len(), 1);
        // A positive workload has no unsatisfiable patterns (every pattern
        // matches at least one generated document).
        assert_eq!(t.rows[0][2], "0");
        // The kept counts are `kept/input` fractions over the full workload.
        let universal: Vec<usize> = t.rows[0][6]
            .split('/')
            .map(|v| v.parse().unwrap())
            .collect();
        let dtd_aware: Vec<usize> = t.rows[0][7]
            .split('/')
            .map(|v| v.parse().unwrap())
            .collect();
        assert_eq!(universal[1], workloads[0].dataset.positive.len());
        // DTD-aware proofs can only drop more, never fewer, entries.
        assert!(dtd_aware[0] <= universal[0]);
    }

    #[test]
    fn fig10_achieves_decreasing_ratios() {
        let (workloads, scale) = tiny();
        let t = fig10(&workloads, &scale);
        assert_eq!(t.rows.len(), scale.compression_ratios.len());
        // The achieved ratio is close to (or below) the target.
        for row in &t.rows {
            let target: f64 = row[1].parse().unwrap();
            let achieved: f64 = row[2].parse().unwrap();
            assert!(
                achieved <= target + 0.15,
                "target {target}, achieved {achieved}"
            );
        }
    }

    #[test]
    fn ablation_table_has_rows_for_each_variant() {
        let (workloads, scale) = tiny();
        let t = ablation_representations(&workloads, &scale);
        assert_eq!(t.rows.len(), 5);
    }
}
