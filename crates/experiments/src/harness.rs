//! Shared plumbing for the figure-reproduction binaries: workload
//! construction, synopsis building, error evaluation and table printing.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use tps_core::{build_par, ExactEvaluator, PatternId, ProximityMetric, SimilarityEngine};
use tps_synopsis::{MatchingSetKind, Synopsis, SynopsisConfig};
use tps_workload::{Dataset, DatasetConfig, DocumentGenerator, Dtd, GeneratedDocuments};

use crate::error::{average_relative_error, root_mean_square_error};
use crate::scale::ExperimentScale;

/// One DTD's workload: the generated data set plus cached ground truth.
#[derive(Debug, Clone)]
pub struct DtdWorkload {
    /// Display name (`NITF`, `xCBL`).
    pub name: String,
    /// The generated documents and pattern workloads.
    pub dataset: Dataset,
    /// Exact selectivity of every positive pattern.
    pub exact_positive: Vec<f64>,
    /// Generator configuration the corpus was produced with; lets
    /// [`DtdWorkload::document_stream`] re-stream the identical corpus
    /// document by document (generation is deterministic per seed).
    pub config: DatasetConfig,
}

impl DtdWorkload {
    /// Build a workload for `dtd` at the given scale.
    pub fn build(name: &str, dtd: Dtd, scale: &ExperimentScale) -> Self {
        let config = DatasetConfig::default()
            .with_scale(
                scale.document_count,
                scale.positive_count,
                scale.negative_count,
            )
            .with_seed(scale.seed);
        let dataset = Dataset::generate(dtd, &config);
        let exact_positive = dataset
            .positive
            .iter()
            .map(|p| dataset.exact_selectivity(p))
            .collect();
        Self {
            name: name.to_string(),
            dataset,
            exact_positive,
            config,
        }
    }

    /// The NITF-scale workload.
    pub fn nitf(scale: &ExperimentScale) -> Self {
        Self::build("NITF", Dtd::nitf_like(), scale)
    }

    /// The xCBL-scale workload.
    pub fn xcbl(scale: &ExperimentScale) -> Self {
        Self::build("xCBL", Dtd::xcbl_like(), scale)
    }

    /// Both workloads used by the paper, NITF first.
    pub fn both(scale: &ExperimentScale) -> Vec<Self> {
        vec![Self::nitf(scale), Self::xcbl(scale)]
    }

    /// An exact evaluator over this workload's documents.
    pub fn exact(&self) -> ExactEvaluator {
        ExactEvaluator::new(self.dataset.documents.clone())
    }

    /// A fresh stream re-generating the workload's corpus document by
    /// document (deterministic per seed, so it yields exactly
    /// `self.dataset.documents`).
    pub fn document_stream(&self) -> GeneratedDocuments<'_> {
        DocumentGenerator::new(&self.dataset.dtd, self.config.docgen.clone())
            .into_stream(self.config.document_count)
    }

    /// Stream the corpus into a sharded synopsis build. The figures call
    /// this once per (representation × summary size), so the stream reads
    /// the materialised corpus — kept for the exact ground truth anyway —
    /// cloning one document at a time rather than regenerating the corpus
    /// per build ([`DtdWorkload::document_stream`] is the generator-backed
    /// alternative for larger-than-memory runs).
    fn streamed_synopsis(&self, kind: MatchingSetKind) -> Synopsis {
        build_par(
            SynopsisConfig {
                kind,
                ..SynopsisConfig::counters()
            },
            tps_xml::stream::cloned_trees(&self.dataset.documents),
            tps_core::par::available_workers(),
        )
        // invariant: the stream replays in-memory trees, which always parse
        .expect("in-memory trees never fail to parse")
    }

    /// Build (and prepare) a synopsis of the given representation over the
    /// workload's corpus, streamed and sharded over the available cores
    /// (estimate-identical to the sequential in-memory build).
    pub fn build_synopsis(&self, kind: MatchingSetKind) -> Synopsis {
        let mut synopsis = self.streamed_synopsis(kind);
        synopsis.prepare();
        synopsis
    }

    /// Build a [`SimilarityEngine`] of the given representation over the
    /// workload's corpus (streamed, sharded), with the positive and
    /// negative pattern workloads registered once.
    pub fn build_engine(&self, kind: MatchingSetKind) -> WorkloadEngine {
        let mut engine = SimilarityEngine::from_synopsis(self.streamed_synopsis(kind));
        let positive = engine.register_all(&self.dataset.positive);
        let negative = engine.register_all(&self.dataset.negative);
        WorkloadEngine {
            engine,
            positive,
            negative,
        }
    }

    /// Average absolute relative error of the positive workload (`Erel`).
    pub fn positive_relative_error(&self, engine: &WorkloadEngine) -> f64 {
        let estimated = engine.engine.selectivities(&engine.positive);
        let pairs: Vec<(f64, f64)> = self
            .exact_positive
            .iter()
            .zip(&estimated)
            .map(|(&exact, &est)| (exact, est))
            .collect();
        average_relative_error(&pairs)
    }

    /// Root mean square error of the negative workload (`Esqr`).
    pub fn negative_square_error(&self, engine: &WorkloadEngine) -> f64 {
        let pairs: Vec<(f64, f64)> = engine
            .engine
            .selectivities(&engine.negative)
            .into_iter()
            .map(|est| (0.0, est))
            .collect();
        root_mean_square_error(&pairs)
    }

    /// Draw `count` random pairs of (distinct) positive patterns.
    pub fn sample_pairs(&self, count: usize, seed: u64) -> Vec<(usize, usize)> {
        let n = self.dataset.positive.len();
        if n < 2 {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let indices: Vec<usize> = (0..n).collect();
        (0..count)
            .map(|_| {
                let pair: Vec<usize> = indices.choose_multiple(&mut rng, 2).copied().collect();
                (pair[0], pair[1])
            })
            .collect()
    }

    /// Exact values of the three proximity metrics for each pattern pair
    /// (ground truth for Figures 7–9). Expensive — compute once per workload
    /// and reuse across synopsis configurations.
    pub fn exact_metric_values(&self, pairs: &[(usize, usize)]) -> Vec<[f64; 3]> {
        let exact = self.exact();
        pairs
            .iter()
            .map(|&(i, j)| {
                let p = &self.dataset.positive[i];
                let q = &self.dataset.positive[j];
                let exact_joint = exact.joint_selectivity(p, q);
                let exact_p = self.exact_positive[i];
                let exact_q = self.exact_positive[j];
                [
                    ProximityMetric::M1.compute(exact_p, exact_q, exact_joint),
                    ProximityMetric::M2.compute(exact_p, exact_q, exact_joint),
                    ProximityMetric::M3.compute(exact_p, exact_q, exact_joint),
                ]
            })
            .collect()
    }

    /// Estimated values of the three proximity metrics for each pattern pair
    /// under the given engine. Marginal selectivities are cached per handle
    /// and each unordered joint is evaluated once, however often a pattern
    /// recurs in `pairs`.
    pub fn estimated_metric_values(
        &self,
        engine: &WorkloadEngine,
        pairs: &[(usize, usize)],
    ) -> Vec<[f64; 3]> {
        pairs
            .iter()
            .map(|&(i, j)| {
                engine
                    .engine
                    .similarities(engine.positive[i], engine.positive[j])
            })
            .collect()
    }

    /// Average absolute relative error of the estimated similarity for each
    /// proximity metric (`Erel(M1)`, `Erel(M2)`, `Erel(M3)`) over the given
    /// pattern pairs, given precomputed exact values.
    pub fn metric_relative_errors_against(
        &self,
        engine: &WorkloadEngine,
        pairs: &[(usize, usize)],
        exact_values: &[[f64; 3]],
    ) -> [f64; 3] {
        let estimated = self.estimated_metric_values(engine, pairs);
        let mut per_metric: [Vec<(f64, f64)>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (exact, est) in exact_values.iter().zip(&estimated) {
            for slot in 0..3 {
                per_metric[slot].push((exact[slot], est[slot]));
            }
        }
        [
            average_relative_error(&per_metric[0]),
            average_relative_error(&per_metric[1]),
            average_relative_error(&per_metric[2]),
        ]
    }

    /// Convenience wrapper computing exact values and errors in one call
    /// (used by tests and one-off evaluations).
    pub fn metric_relative_errors(
        &self,
        engine: &WorkloadEngine,
        pairs: &[(usize, usize)],
    ) -> [f64; 3] {
        let exact_values = self.exact_metric_values(pairs);
        self.metric_relative_errors_against(engine, pairs, &exact_values)
    }
}

/// A [`SimilarityEngine`] with a [`DtdWorkload`]'s pattern workloads
/// registered once — the unit every figure evaluation operates on.
#[derive(Debug, Clone)]
pub struct WorkloadEngine {
    /// The engine (owning the synopsis over the workload's documents).
    pub engine: SimilarityEngine,
    /// Handles of the positive patterns, in dataset order.
    pub positive: Vec<PatternId>,
    /// Handles of the negative patterns, in dataset order.
    pub negative: Vec<PatternId>,
}

impl WorkloadEngine {
    /// Total synopsis size `|HS|` (convenience passthrough).
    pub fn size_total(&self) -> usize {
        self.engine.size().total()
    }

    /// All-pairs similarity matrix of the positive workload under `metric`,
    /// evaluated on up to `threads` worker threads
    /// ([`SimilarityEngine::similarity_matrix_par`]). Bit-identical to the
    /// sequential matrix for any thread count, so figure evaluations can
    /// scale to the hardware without changing their numbers.
    pub fn positive_similarity_matrix(
        &self,
        metric: ProximityMetric,
        threads: usize,
    ) -> tps_core::SimMatrix {
        self.engine
            .similarity_matrix_par(&self.positive, metric, threads)
    }
}

/// A plain-text result table with aligned columns, printed by every
/// experiment binary.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (figure reference).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Render the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:width$}", h, width = widths[i]))
            .collect();
        out.push_str(&header_line.join("  "));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Print the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Format a float with three decimal places (percentages, errors).
pub fn fmt3(value: f64) -> String {
    format!("{value:.3}")
}

/// Format a percentage with two decimal places.
pub fn fmt_pct(value: f64) -> String {
    format!("{:.2}", value * 100.0)
}

/// The three matching-set representations at a given summary size, in the
/// order the figures use (Counters has no size knob).
pub fn representations(size: usize) -> Vec<MatchingSetKind> {
    vec![
        MatchingSetKind::Counters,
        MatchingSetKind::Sets { capacity: size },
        MatchingSetKind::Hashes { capacity: size },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_workload() -> DtdWorkload {
        let mut scale = ExperimentScale::tiny();
        scale.document_count = 60;
        scale.positive_count = 15;
        scale.negative_count = 15;
        DtdWorkload::build("NITF", Dtd::nitf_like(), &scale)
    }

    #[test]
    fn streamed_sharded_build_matches_the_in_memory_sequential_build() {
        let w = tiny_workload();
        for kind in [
            MatchingSetKind::Counters,
            MatchingSetKind::Sets { capacity: 16 },
            MatchingSetKind::Hashes { capacity: 64 },
        ] {
            let streamed = w.build_synopsis(kind);
            let sequential = Synopsis::from_documents(
                SynopsisConfig {
                    kind,
                    ..SynopsisConfig::counters()
                },
                &w.dataset.documents,
            );
            assert_eq!(streamed.document_count(), sequential.document_count());
            assert_eq!(streamed.size(), sequential.size(), "{kind:?}");
            assert_eq!(
                streamed.universe_value(),
                sequential.universe_value(),
                "{kind:?}"
            );
            // The generator-backed stream (larger-than-memory path) yields
            // the identical corpus, hence the identical synopsis.
            let generated = build_par(
                SynopsisConfig {
                    kind,
                    ..SynopsisConfig::counters()
                },
                w.document_stream(),
                2,
            )
            .expect("generated documents never fail to parse");
            assert_eq!(generated.size(), sequential.size(), "{kind:?} generated");
            assert_eq!(generated.universe_value(), sequential.universe_value());
        }
    }

    #[test]
    fn workload_has_ground_truth_for_every_positive_pattern() {
        let w = tiny_workload();
        assert_eq!(w.exact_positive.len(), w.dataset.positive.len());
        assert!(w.exact_positive.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn exact_synopsis_has_near_zero_positive_error() {
        let w = tiny_workload();
        let engine = w.build_engine(MatchingSetKind::Hashes { capacity: 10_000 });
        let erel = w.positive_relative_error(&engine);
        assert!(erel < 1e-9, "Erel = {erel}");
        let esqr = w.negative_square_error(&engine);
        assert!(esqr < 1e-9, "Esqr = {esqr}");
    }

    #[test]
    fn counters_have_larger_positive_error_than_exact_hashes() {
        let w = tiny_workload();
        let counters = w.build_engine(MatchingSetKind::Counters);
        let hashes = w.build_engine(MatchingSetKind::Hashes { capacity: 10_000 });
        assert!(w.positive_relative_error(&counters) >= w.positive_relative_error(&hashes));
    }

    #[test]
    fn engine_errors_match_the_per_call_estimator_path() {
        // The registered-workload engine must reproduce the numbers the
        // stand-alone SelectivityEstimator pipeline produces.
        let w = tiny_workload();
        let engine = w.build_engine(MatchingSetKind::Hashes { capacity: 256 });
        let synopsis = w.build_synopsis(MatchingSetKind::Hashes { capacity: 256 });
        let estimator = tps_core::SelectivityEstimator::new(&synopsis);
        let legacy: Vec<(f64, f64)> = w
            .dataset
            .positive
            .iter()
            .zip(&w.exact_positive)
            .map(|(p, &exact)| (exact, estimator.selectivity(p)))
            .collect();
        let legacy_erel = crate::error::average_relative_error(&legacy);
        assert_eq!(w.positive_relative_error(&engine), legacy_erel);
    }

    #[test]
    fn positive_similarity_matrix_is_thread_count_independent() {
        let w = tiny_workload();
        let engine = w.build_engine(MatchingSetKind::Hashes { capacity: 256 });
        let sequential = engine.positive_similarity_matrix(ProximityMetric::M3, 1);
        let parallel = engine.positive_similarity_matrix(ProximityMetric::M3, 4);
        assert_eq!(parallel, sequential);
        assert_eq!(sequential.len(), w.dataset.positive.len());
    }

    #[test]
    fn sample_pairs_returns_distinct_indices() {
        let w = tiny_workload();
        let pairs = w.sample_pairs(30, 1);
        assert_eq!(pairs.len(), 30);
        assert!(pairs.iter().all(|&(a, b)| a != b));
        assert!(pairs
            .iter()
            .all(|&(a, b)| a < w.dataset.positive.len() && b < w.dataset.positive.len()));
    }

    #[test]
    fn metric_errors_are_zero_for_exact_synopsis() {
        let w = tiny_workload();
        let engine = w.build_engine(MatchingSetKind::Hashes { capacity: 10_000 });
        let pairs = w.sample_pairs(20, 2);
        let errors = w.metric_relative_errors(&engine, &pairs);
        for (i, e) in errors.iter().enumerate() {
            assert!(*e < 1e-9, "metric {} error {}", i + 1, e);
        }
    }

    #[test]
    fn table_rendering_aligns_columns() {
        let mut table = Table::new("Demo", &["col", "value"]);
        table.push_row(vec!["a".to_string(), "1.0".to_string()]);
        table.push_row(vec!["long-name".to_string(), "2.0".to_string()]);
        let rendered = table.render();
        assert!(rendered.contains("# Demo"));
        assert!(rendered.contains("long-name"));
        let lines: Vec<&str> = rendered.lines().collect();
        assert!(lines.len() >= 5);
    }

    #[test]
    fn representations_cover_all_three_kinds() {
        let reps = representations(100);
        assert_eq!(reps.len(), 3);
        assert!(matches!(reps[0], MatchingSetKind::Counters));
        assert!(matches!(reps[1], MatchingSetKind::Sets { capacity: 100 }));
        assert!(matches!(reps[2], MatchingSetKind::Hashes { capacity: 100 }));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt3(0.12345), "0.123");
        assert_eq!(fmt_pct(0.1234), "12.34");
    }
}
