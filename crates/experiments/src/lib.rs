//! Reproduction harness for the evaluation section of the paper.
//!
//! The crate provides, as a library, the error metrics ([`error`]), the
//! experiment scales ([`scale`]), the shared workload/synopsis plumbing
//! ([`harness`]) and one function per paper table/figure ([`figures`]).
//! The binaries in `src/bin` (one per figure, plus `table1` and `run_all`)
//! print the corresponding series as plain-text tables:
//!
//! ```text
//! cargo run --release -p tps-experiments --bin fig4
//! TPS_SCALE=paper cargo run --release -p tps-experiments --bin run_all
//! ```
//!
//! The scale is controlled by the `TPS_SCALE` environment variable
//! (`paper`, `quick` — the default —, or `tiny`), optionally downscaled by
//! the fractional `TPS_REPRO_SCALE` factor the CI reproduction job uses;
//! see [`scale::ScaleConfig`]. The full workflow (downscaled CI run,
//! paper-scale run, captured artifacts) is documented in
//! `docs/REPRODUCTION.md`.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamics;
pub mod error;
pub mod figures;
pub mod harness;
pub mod scale;
pub mod scaling;

pub use harness::{DtdWorkload, Table};
pub use scale::{ExperimentScale, ScaleConfig};
