//! Experiment scales.
//!
//! The paper's setup (10,000 documents, 1,000 positive and 1,000 negative
//! patterns, 5,000 random pattern pairs) takes a while to regenerate on a
//! laptop; the harness therefore supports three scales selected through the
//! `TPS_SCALE` environment variable:
//!
//! * `paper` — the full scale of Section 5.1,
//! * `quick` — the default: the same shape, roughly an order of magnitude
//!   smaller, finishing in minutes,
//! * `tiny` — a smoke-test scale used by integration tests and CI.
//!
//! On top of the named preset, `TPS_REPRO_SCALE` applies a fractional
//! downscale factor (e.g. `0.5` halves every workload count) — the knob the
//! CI reproduction job uses to shrink a run without changing its shape. The
//! two knobs combine in one [`ScaleConfig`], which every experiment binary
//! resolves through, so the CI downscale and the paper-scale run share one
//! code path.
//!
//! Scaling down the document and pattern counts changes the absolute error
//! values slightly (smaller streams are easier to summarise) but preserves
//! the comparisons the paper's figures make: which representation wins, how
//! the error decays with the summary size, and how compression degrades
//! accuracy.

/// Scale parameters shared by every experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentScale {
    /// Human-readable name (`paper`, `quick`, `tiny`).
    pub name: String,
    /// Number of documents per DTD (`|D|`).
    pub document_count: usize,
    /// Number of positive patterns (`|SP|`).
    pub positive_count: usize,
    /// Number of negative patterns (`|SN|`).
    pub negative_count: usize,
    /// Number of random pattern pairs used for the proximity-metric figures.
    pub pair_count: usize,
    /// Maximum hash/set sizes swept on the x-axis of Figures 4, 5, 7–9.
    pub summary_sizes: Vec<usize>,
    /// Compression ratios α swept in Figure 10.
    pub compression_ratios: Vec<f64>,
    /// Hash size used for the Figure 10 compression experiment (the paper
    /// fixes 1,000 entries).
    pub fig10_hash_size: usize,
    /// Base RNG seed for dataset generation.
    pub seed: u64,
}

impl ExperimentScale {
    /// The full scale used in the paper.
    pub fn paper() -> Self {
        Self {
            name: "paper".to_string(),
            document_count: 10_000,
            positive_count: 1_000,
            negative_count: 1_000,
            pair_count: 5_000,
            summary_sizes: vec![50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000],
            compression_ratios: vec![1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1],
            fig10_hash_size: 1_000,
            seed: 2007,
        }
    }

    /// A laptop-friendly scale with the same sweep shape (default).
    pub fn quick() -> Self {
        Self {
            name: "quick".to_string(),
            document_count: 1_200,
            positive_count: 200,
            negative_count: 200,
            pair_count: 400,
            summary_sizes: vec![50, 100, 250, 500, 1_000, 2_500],
            compression_ratios: vec![1.0, 0.8, 0.6, 0.4, 0.2],
            fig10_hash_size: 500,
            seed: 2007,
        }
    }

    /// A smoke-test scale for CI and integration tests.
    pub fn tiny() -> Self {
        Self {
            name: "tiny".to_string(),
            document_count: 150,
            positive_count: 40,
            negative_count: 40,
            pair_count: 60,
            summary_sizes: vec![50, 250, 1_000],
            compression_ratios: vec![1.0, 0.5, 0.25],
            fig10_hash_size: 100,
            seed: 2007,
        }
    }

    /// Read the scale from the environment (`TPS_SCALE` preset downscaled
    /// by `TPS_REPRO_SCALE`); shorthand for
    /// [`ScaleConfig::from_env`]`.resolve()`.
    pub fn from_env() -> Self {
        ScaleConfig::from_env().resolve()
    }
}

/// The combined scale selection every experiment binary honours: a named
/// preset (`TPS_SCALE`) plus a fractional downscale factor
/// (`TPS_REPRO_SCALE`).
///
/// The factor shrinks the document, pattern and pair counts while keeping
/// the sweep shape (summary sizes, compression ratios) intact; counts are
/// floored so even extreme factors leave a runnable workload. CI's
/// reproduction job sets e.g. `TPS_SCALE=tiny TPS_REPRO_SCALE=1.0`; a
/// paper-scale run sets `TPS_SCALE=paper` and leaves the factor at 1.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleConfig {
    /// Preset name: `paper`, `quick` or `tiny`.
    pub base: String,
    /// Multiplicative downscale factor in `(0, 1]` applied to all workload
    /// counts (values outside the range are clamped).
    pub factor: f64,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        Self {
            base: "quick".to_string(),
            factor: 1.0,
        }
    }
}

impl ScaleConfig {
    /// A configuration for a named preset at full size.
    pub fn preset(base: &str) -> Self {
        Self {
            base: base.to_string(),
            ..Self::default()
        }
    }

    /// Override the downscale factor.
    pub fn with_factor(mut self, factor: f64) -> Self {
        self.factor = factor;
        self
    }

    /// Read `TPS_SCALE` (preset, default `quick`) and `TPS_REPRO_SCALE`
    /// (factor, default `1.0`) from the environment.
    pub fn from_env() -> Self {
        let base = std::env::var("TPS_SCALE").unwrap_or_else(|_| "quick".to_string());
        let factor = std::env::var("TPS_REPRO_SCALE")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(1.0);
        Self { base, factor }
    }

    /// Resolve to concrete experiment parameters: pick the preset, then
    /// apply the downscale factor to every workload count.
    pub fn resolve(&self) -> ExperimentScale {
        let mut scale = match self.base.as_str() {
            "paper" => ExperimentScale::paper(),
            "tiny" => ExperimentScale::tiny(),
            _ => ExperimentScale::quick(),
        };
        let factor = if self.factor.is_finite() {
            self.factor.clamp(f64::MIN_POSITIVE, 1.0)
        } else {
            1.0
        };
        if factor < 1.0 {
            let shrink = |count: usize, floor: usize| -> usize {
                ((count as f64 * factor).round() as usize).max(floor)
            };
            scale.document_count = shrink(scale.document_count, 20);
            scale.positive_count = shrink(scale.positive_count, 5);
            scale.negative_count = shrink(scale.negative_count, 5);
            scale.pair_count = shrink(scale.pair_count, 5);
            scale.name = format!("{}×{}", scale.name, factor);
        }
        scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_section_5_1() {
        let s = ExperimentScale::paper();
        assert_eq!(s.document_count, 10_000);
        assert_eq!(s.positive_count, 1_000);
        assert_eq!(s.negative_count, 1_000);
        assert_eq!(s.pair_count, 5_000);
        assert_eq!(s.fig10_hash_size, 1_000);
        assert!(s.summary_sizes.contains(&50));
        assert!(s.summary_sizes.contains(&10_000));
    }

    #[test]
    fn scales_shrink_monotonically() {
        let paper = ExperimentScale::paper();
        let quick = ExperimentScale::quick();
        let tiny = ExperimentScale::tiny();
        assert!(paper.document_count > quick.document_count);
        assert!(quick.document_count > tiny.document_count);
        assert!(paper.pair_count > quick.pair_count);
        assert!(quick.pair_count > tiny.pair_count);
    }

    #[test]
    fn repro_factor_shrinks_counts_but_keeps_the_sweep_shape() {
        let full = ScaleConfig::preset("quick").resolve();
        let half = ScaleConfig::preset("quick").with_factor(0.5).resolve();
        assert_eq!(half.document_count, full.document_count / 2);
        assert_eq!(half.positive_count, full.positive_count / 2);
        assert_eq!(half.pair_count, full.pair_count / 2);
        assert_eq!(half.summary_sizes, full.summary_sizes);
        assert_eq!(half.compression_ratios, full.compression_ratios);
        assert!(half.name.contains("0.5"));
    }

    #[test]
    fn extreme_factors_are_floored_and_clamped() {
        let tiny = ScaleConfig::preset("tiny").with_factor(0.0001).resolve();
        assert!(tiny.document_count >= 20);
        assert!(tiny.positive_count >= 5);
        let over = ScaleConfig::preset("tiny").with_factor(7.0).resolve();
        assert_eq!(over, ExperimentScale::tiny());
        let nan = ScaleConfig::preset("tiny").with_factor(f64::NAN).resolve();
        assert_eq!(nan, ExperimentScale::tiny());
    }

    #[test]
    fn unknown_presets_fall_back_to_quick() {
        assert_eq!(
            ScaleConfig::preset("nonsense").resolve(),
            ExperimentScale::quick()
        );
    }

    #[test]
    fn all_scales_sweep_at_least_two_sizes_and_ratios() {
        for s in [
            ExperimentScale::paper(),
            ExperimentScale::quick(),
            ExperimentScale::tiny(),
        ] {
            assert!(s.summary_sizes.len() >= 2);
            assert!(s.compression_ratios.len() >= 2);
            assert!(s
                .compression_ratios
                .iter()
                .all(|&a| (0.0..=1.0).contains(&a)));
        }
    }
}
