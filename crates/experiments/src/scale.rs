//! Experiment scales.
//!
//! The paper's setup (10,000 documents, 1,000 positive and 1,000 negative
//! patterns, 5,000 random pattern pairs) takes a while to regenerate on a
//! laptop; the harness therefore supports three scales selected through the
//! `TPS_SCALE` environment variable:
//!
//! * `paper` — the full scale of Section 5.1,
//! * `quick` — the default: the same shape, roughly an order of magnitude
//!   smaller, finishing in minutes,
//! * `tiny` — a smoke-test scale used by integration tests and CI.
//!
//! Scaling down the document and pattern counts changes the absolute error
//! values slightly (smaller streams are easier to summarise) but preserves
//! the comparisons the paper's figures make: which representation wins, how
//! the error decays with the summary size, and how compression degrades
//! accuracy.

/// Scale parameters shared by every experiment.
#[derive(Debug, Clone)]
pub struct ExperimentScale {
    /// Human-readable name (`paper`, `quick`, `tiny`).
    pub name: String,
    /// Number of documents per DTD (`|D|`).
    pub document_count: usize,
    /// Number of positive patterns (`|SP|`).
    pub positive_count: usize,
    /// Number of negative patterns (`|SN|`).
    pub negative_count: usize,
    /// Number of random pattern pairs used for the proximity-metric figures.
    pub pair_count: usize,
    /// Maximum hash/set sizes swept on the x-axis of Figures 4, 5, 7–9.
    pub summary_sizes: Vec<usize>,
    /// Compression ratios α swept in Figure 10.
    pub compression_ratios: Vec<f64>,
    /// Hash size used for the Figure 10 compression experiment (the paper
    /// fixes 1,000 entries).
    pub fig10_hash_size: usize,
    /// Base RNG seed for dataset generation.
    pub seed: u64,
}

impl ExperimentScale {
    /// The full scale used in the paper.
    pub fn paper() -> Self {
        Self {
            name: "paper".to_string(),
            document_count: 10_000,
            positive_count: 1_000,
            negative_count: 1_000,
            pair_count: 5_000,
            summary_sizes: vec![50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000],
            compression_ratios: vec![1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1],
            fig10_hash_size: 1_000,
            seed: 2007,
        }
    }

    /// A laptop-friendly scale with the same sweep shape (default).
    pub fn quick() -> Self {
        Self {
            name: "quick".to_string(),
            document_count: 1_200,
            positive_count: 200,
            negative_count: 200,
            pair_count: 400,
            summary_sizes: vec![50, 100, 250, 500, 1_000, 2_500],
            compression_ratios: vec![1.0, 0.8, 0.6, 0.4, 0.2],
            fig10_hash_size: 500,
            seed: 2007,
        }
    }

    /// A smoke-test scale for CI and integration tests.
    pub fn tiny() -> Self {
        Self {
            name: "tiny".to_string(),
            document_count: 150,
            positive_count: 40,
            negative_count: 40,
            pair_count: 60,
            summary_sizes: vec![50, 250, 1_000],
            compression_ratios: vec![1.0, 0.5, 0.25],
            fig10_hash_size: 100,
            seed: 2007,
        }
    }

    /// Read the scale from the `TPS_SCALE` environment variable
    /// (`paper` / `quick` / `tiny`), defaulting to `quick`.
    pub fn from_env() -> Self {
        match std::env::var("TPS_SCALE").as_deref() {
            Ok("paper") => Self::paper(),
            Ok("tiny") => Self::tiny(),
            Ok("quick") | Ok(_) | Err(_) => Self::quick(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_section_5_1() {
        let s = ExperimentScale::paper();
        assert_eq!(s.document_count, 10_000);
        assert_eq!(s.positive_count, 1_000);
        assert_eq!(s.negative_count, 1_000);
        assert_eq!(s.pair_count, 5_000);
        assert_eq!(s.fig10_hash_size, 1_000);
        assert!(s.summary_sizes.contains(&50));
        assert!(s.summary_sizes.contains(&10_000));
    }

    #[test]
    fn scales_shrink_monotonically() {
        let paper = ExperimentScale::paper();
        let quick = ExperimentScale::quick();
        let tiny = ExperimentScale::tiny();
        assert!(paper.document_count > quick.document_count);
        assert!(quick.document_count > tiny.document_count);
        assert!(paper.pair_count > quick.pair_count);
        assert!(quick.pair_count > tiny.pair_count);
    }

    #[test]
    fn all_scales_sweep_at_least_two_sizes_and_ratios() {
        for s in [
            ExperimentScale::paper(),
            ExperimentScale::quick(),
            ExperimentScale::tiny(),
        ] {
            assert!(s.summary_sizes.len() >= 2);
            assert!(s.compression_ratios.len() >= 2);
            assert!(s
                .compression_ratios
                .iter()
                .all(|&a| (0.0..=1.0).contains(&a)));
        }
    }
}
