//! The dynamic (churn) experiment: how much staleness costs, and what
//! keeping tables fresh costs instead.
//!
//! The paper's figures evaluate a frozen workload; this sweep runs the
//! `tps-sim` discrete-event simulator over seeded churn scenarios at three
//! churn intensities and compares the recluster policies on delivery
//! recall, link precision and maintenance cost. The scenario sizes derive
//! from the shared [`ExperimentScale`], so `TPS_SCALE` / `TPS_REPRO_SCALE`
//! downscale the sweep exactly like the static figures.

use tps_routing::{BrokerTopology, DeliveryMetrics, LinkMetrics};
use tps_sim::{ReclusterPolicy, SimConfig, Simulation};
use tps_workload::{ChurnConfig, ChurnScenario, Dtd};

use crate::harness::{fmt3, Table};
use crate::scale::ExperimentScale;

/// Number of brokers in the simulated overlay (a balanced binary tree).
pub const BROKERS: usize = 15;

/// Virtual-time horizon of every scenario.
pub const HORIZON: u64 = 1_000;

/// The churn intensities swept, as `(label, arrivals+departures fraction of
/// the initial subscriber count)`.
pub fn churn_levels() -> [(&'static str, f64); 3] {
    [("none", 0.0), ("moderate", 0.5), ("heavy", 1.0)]
}

/// The recluster policies compared at every churn level.
pub fn policies() -> [ReclusterPolicy; 4] {
    [
        ReclusterPolicy::Eager,
        ReclusterPolicy::Periodic(HORIZON / 10),
        ReclusterPolicy::OnChurn(4),
        ReclusterPolicy::Never,
    ]
}

/// Scenario shape at the given scale and churn fraction.
pub fn scenario_config(scale: &ExperimentScale, churn_fraction: f64) -> ChurnConfig {
    let initial = (scale.positive_count / 4).max(8);
    let churn = ((initial as f64 * churn_fraction).round() as usize).min(initial);
    ChurnConfig {
        brokers: BROKERS,
        initial_subscribers: initial,
        arrivals: churn,
        departures: churn,
        publications: (scale.document_count / 4).max(30),
        horizon: HORIZON,
        seed: scale.seed,
        ..ChurnConfig::default()
    }
}

/// The churn sweep: one row per (churn level × recluster policy).
pub fn fig_dynamic(scale: &ExperimentScale, threads: usize) -> Table {
    let dtd = Dtd::nitf_like();
    let mut table = Table::new(
        "Dynamic churn sweep: recluster policy vs staleness cost (tps-sim)",
        &[
            "churn",
            "events",
            "policy",
            "rebuilds",
            "nodes-built",
            "msgs/doc",
            "link-prec",
            "recall",
            "matches/doc",
            "communities",
        ],
    );
    for (label, fraction) in churn_levels() {
        let config = scenario_config(scale, fraction);
        let scenario = ChurnScenario::generate(&dtd, &config);
        for policy in policies() {
            let report = Simulation::new(
                BrokerTopology::balanced_tree(BROKERS, 2),
                SimConfig {
                    recluster: policy,
                    threads,
                    ..SimConfig::default()
                },
            )
            .run(&scenario);
            let a = &report.aggregate;
            table.push_row(vec![
                label.to_string(),
                scenario.churn_count().to_string(),
                policy.label(),
                a.table_rebuilds.to_string(),
                a.rebuild_table_nodes.to_string(),
                format!("{:.1}", a.messages_per_document()),
                fmt3(a.link_precision()),
                fmt3(a.recall()),
                format!("{:.1}", a.matches_per_document()),
                a.communities.to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::ScaleConfig;

    fn tiny() -> ExperimentScale {
        let mut scale = ScaleConfig::preset("tiny").resolve();
        scale.document_count = 120;
        scale.positive_count = 32;
        scale
    }

    #[test]
    fn sweep_produces_one_row_per_level_and_policy() {
        let table = fig_dynamic(&tiny(), 1);
        assert_eq!(table.rows.len(), churn_levels().len() * policies().len());
        let rendered = table.render();
        assert!(rendered.contains("eager"), "{rendered}");
        assert!(rendered.contains("never"), "{rendered}");
        assert!(rendered.contains("heavy"), "{rendered}");
    }

    #[test]
    fn zero_churn_rows_agree_across_policies() {
        let table = fig_dynamic(&tiny(), 1);
        // The first four rows are the churn-free level: the routing columns
        // (msgs/doc, link precision, recall, matches/doc) must agree for
        // every policy. The rebuild accounting and the community count may
        // differ — `periodic` legitimately re-clusters as traffic
        // accumulates even without churn.
        let reference = &table.rows[0];
        for row in &table.rows[1..policies().len()] {
            assert_eq!(row[5..9], reference[5..9], "{row:?} vs {reference:?}");
        }
    }

    #[test]
    fn heavy_churn_with_never_is_stalest() {
        let table = fig_dynamic(&tiny(), 1);
        let row = |level: &str, policy: &str| {
            table
                .rows
                .iter()
                .find(|r| r[0] == level && r[2] == policy)
                .unwrap()
                .clone()
        };
        let eager = row("heavy", "eager");
        let never = row("heavy", "never");
        let recall = |r: &[String]| r[7].parse::<f64>().unwrap();
        let rebuilds = |r: &[String]| r[3].parse::<usize>().unwrap();
        assert!(recall(&never) <= recall(&eager) + 1e-9);
        assert!(rebuilds(&eager) > rebuilds(&never));
        assert_eq!(rebuilds(&never), 1);
    }
}
