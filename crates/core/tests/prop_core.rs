//! Property-based tests for selectivity and similarity estimation.

use proptest::prelude::*;
use tps_core::{ExactEvaluator, ProximityMetric, SelectivityEstimator, SimilarityEngine};
use tps_pattern::{PatternLabel, TreePattern};
use tps_synopsis::{ingest, Ingest, Synopsis, SynopsisConfig};
use tps_xml::XmlTree;

const TAGS: &[&str] = &["a", "b", "c", "d"];

fn gen_doc() -> impl Strategy<Value = XmlTree> {
    #[derive(Debug, Clone)]
    struct Node(usize, Vec<Node>);
    fn node() -> impl Strategy<Value = Node> {
        let leaf = (0..TAGS.len()).prop_map(|i| Node(i, vec![]));
        leaf.prop_recursive(3, 12, 3, |inner| {
            ((0..TAGS.len()), prop::collection::vec(inner, 0..3)).prop_map(|(i, c)| Node(i, c))
        })
    }
    fn build(tree: &mut XmlTree, parent: tps_xml::NodeId, n: &Node) {
        let id = tree.add_child(parent, TAGS[n.0]);
        for c in &n.1 {
            build(tree, id, c);
        }
    }
    node().prop_map(|n| {
        let mut tree = XmlTree::new(TAGS[n.0]);
        let root = tree.root();
        for c in &n.1 {
            build(&mut tree, root, c);
        }
        tree
    })
}

fn gen_docs() -> impl Strategy<Value = Vec<XmlTree>> {
    prop::collection::vec(gen_doc(), 2..10)
}

#[derive(Debug, Clone)]
enum GenPat {
    Tag(usize, Vec<GenPat>),
    Wildcard(Vec<GenPat>),
    Descendant(Box<GenPat>),
}

fn gen_pat_node() -> impl Strategy<Value = GenPat> {
    let leaf = prop_oneof![
        (0..TAGS.len()).prop_map(|i| GenPat::Tag(i, vec![])),
        Just(GenPat::Wildcard(vec![])),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            ((0..TAGS.len()), prop::collection::vec(inner.clone(), 0..2))
                .prop_map(|(i, c)| GenPat::Tag(i, c)),
            prop::collection::vec(inner.clone(), 0..2).prop_map(GenPat::Wildcard),
            inner
                .prop_filter("no nested descendants", |g| !matches!(
                    g,
                    GenPat::Descendant(_)
                ))
                .prop_map(|g| GenPat::Descendant(Box::new(g))),
        ]
    })
}

fn gen_pattern() -> impl Strategy<Value = TreePattern> {
    prop::collection::vec(gen_pat_node(), 1..3).prop_map(|children| {
        let mut p = TreePattern::new();
        let root = p.root();
        fn build(p: &mut TreePattern, parent: tps_pattern::PatternNodeId, g: &GenPat) {
            match g {
                GenPat::Tag(i, c) => {
                    let id = p.add_child(parent, PatternLabel::tag(TAGS[*i]));
                    c.iter().for_each(|g| build(p, id, g));
                }
                GenPat::Wildcard(c) => {
                    let id = p.add_child(parent, PatternLabel::Wildcard);
                    c.iter().for_each(|g| build(p, id, g));
                }
                GenPat::Descendant(c) => {
                    let id = p.add_child(parent, PatternLabel::Descendant);
                    build(p, id, c);
                }
            }
        }
        for g in &children {
            build(&mut p, root, g);
        }
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Estimates are always valid probabilities, for every representation.
    #[test]
    fn selectivity_is_a_probability(docs in gen_docs(), p in gen_pattern()) {
        for config in [
            SynopsisConfig::counters(),
            SynopsisConfig::sets(8),
            SynopsisConfig::hashes(8),
        ] {
            let synopsis = Synopsis::from_documents(config, &docs);
            let estimator = SelectivityEstimator::new(&synopsis);
            let s = estimator.selectivity(&p);
            prop_assert!((0.0..=1.0).contains(&s), "{:?} -> {s}", config.kind);
        }
    }

    /// With lossless summaries (capacity larger than the stream), linear
    /// patterns — and any pattern whose branches only occur at the document
    /// root — are estimated exactly; in general the estimate never
    /// *underestimates* the exact selectivity on exact set summaries
    /// (skeleton coalescing can only merge sibling contexts, which adds
    /// documents to path intersections).
    #[test]
    fn exact_sets_never_underestimate(docs in gen_docs(), p in gen_pattern()) {
        let exact = ExactEvaluator::new(docs.clone());
        let mut synopsis = Synopsis::from_documents(SynopsisConfig::sets(100_000), &docs);
        synopsis.prepare();
        let estimator = SelectivityEstimator::new(&synopsis);
        let estimated = estimator.selectivity(&p);
        let truth = exact.selectivity(&p);
        prop_assert!(
            estimated >= truth - 1e-9,
            "estimate {estimated} under-estimates exact {truth} for {p}"
        );
    }

    /// The estimated selectivity of the conjunction never exceeds either
    /// marginal (on exact set summaries).
    #[test]
    fn joint_selectivity_is_bounded_by_marginals(docs in gen_docs(), p in gen_pattern(), q in gen_pattern()) {
        let mut synopsis = Synopsis::from_documents(SynopsisConfig::sets(100_000), &docs);
        synopsis.prepare();
        let estimator = SelectivityEstimator::new(&synopsis);
        let joint = estimator.joint_selectivity(&p, &q);
        let sp = estimator.selectivity(&p);
        let sq = estimator.selectivity(&q);
        prop_assert!(joint <= sp + 1e-9);
        prop_assert!(joint <= sq + 1e-9);
    }

    /// Similarity scores are within [0, 1]; symmetric metrics are symmetric;
    /// self-similarity is 1 for patterns that match at least one document.
    #[test]
    fn similarity_properties(docs in gen_docs(), p in gen_pattern(), q in gen_pattern()) {
        let mut engine = SimilarityEngine::new(SynopsisConfig::sets(100_000));
        engine.ingest(ingest::trees(&docs)).unwrap();
        let (hp, hq) = (engine.register(&p), engine.register(&q));
        for metric in ProximityMetric::all() {
            let spq = engine.similarity(hp, hq, metric);
            prop_assert!((0.0..=1.0).contains(&spq), "{metric} -> {spq}");
            if metric.is_symmetric() {
                let sqp = engine.similarity(hq, hp, metric);
                prop_assert!((spq - sqp).abs() < 1e-9, "{metric} not symmetric");
            }
        }
        let self_sim = engine.similarity(hp, hp, ProximityMetric::M3);
        prop_assert!((self_sim - 1.0).abs() < 1e-9 || engine.selectivity(hp) == 0.0);
    }

    /// The batched `similarity_matrix` is bit-identical to pairwise
    /// `similarity` calls, for every metric and all three matching-set
    /// representations — the engine's caches must never change a result.
    #[test]
    fn similarity_matrix_is_bit_identical_to_pairwise(
        docs in gen_docs(),
        patterns in prop::collection::vec(gen_pattern(), 2..6),
    ) {
        for config in [
            SynopsisConfig::counters(),
            SynopsisConfig::sets(100_000),
            SynopsisConfig::hashes(64),
        ] {
            let mut engine = SimilarityEngine::new(config);
            engine.ingest(ingest::trees(&docs)).unwrap();
            let ids = engine.register_all(&patterns);
            for metric in ProximityMetric::all() {
                let matrix = engine.similarity_matrix(&ids, metric);
                prop_assert_eq!(matrix.len(), ids.len());
                prop_assert_eq!(matrix.metric(), metric);
                for i in 0..ids.len() {
                    prop_assert_eq!(matrix.get(i, i), 1.0);
                    for j in 0..ids.len() {
                        let pairwise = engine.similarity(ids[i], ids[j], metric);
                        prop_assert!(
                            matrix.get(i, j) == pairwise,
                            "({},{}) {} {:?}: matrix {} != pairwise {}",
                            i, j, metric, config.kind, matrix.get(i, j), pairwise
                        );
                    }
                }
            }
        }
    }

    /// `similarity_matrix_par(t)` is bit-identical to `similarity_matrix()`
    /// for t ∈ {1, 2, 8}, for every metric and all three matching-set
    /// representations — the thread count must never change a value. The
    /// matrix also has a unit diagonal, and is symmetric under the
    /// symmetric metrics.
    #[test]
    fn parallel_matrix_is_bit_identical_and_symmetric(
        docs in gen_docs(),
        patterns in prop::collection::vec(gen_pattern(), 2..6),
    ) {
        for config in [
            SynopsisConfig::counters(),
            SynopsisConfig::sets(100_000),
            SynopsisConfig::hashes(64),
        ] {
            let mut engine = SimilarityEngine::new(config);
            engine.ingest(ingest::trees(&docs)).unwrap();
            let ids = engine.register_all(&patterns);
            for metric in ProximityMetric::all() {
                let sequential = engine.similarity_matrix(&ids, metric);
                for threads in [1usize, 2, 8] {
                    // A cold clone (shared core, snapshotted caches — but
                    // the sequential call above already warmed them, so
                    // also test from a genuinely fresh engine).
                    let warm = engine.similarity_matrix_par(&ids, metric, threads);
                    prop_assert!(
                        warm == sequential,
                        "warm par({}) diverged for {} {:?}", threads, metric, config.kind
                    );
                    let mut fresh = SimilarityEngine::new(config);
                    fresh.ingest(ingest::trees(&docs)).unwrap();
                    let fresh_ids = fresh.register_all(&patterns);
                    let cold = fresh.similarity_matrix_par(&fresh_ids, metric, threads);
                    prop_assert!(
                        cold == sequential,
                        "cold par({}) diverged for {} {:?}", threads, metric, config.kind
                    );
                }
                for i in 0..ids.len() {
                    prop_assert_eq!(sequential.get(i, i), 1.0);
                    if metric.is_symmetric() {
                        for j in 0..ids.len() {
                            prop_assert!(
                                sequential.get(i, j) == sequential.get(j, i),
                                "{} not symmetric at ({}, {})", metric, i, j
                            );
                        }
                    }
                }
            }
        }
    }

    /// Batched selectivities equal single-handle queries bit for bit, and a
    /// fresh engine (no warm caches) reproduces them.
    #[test]
    fn batched_selectivities_are_stable(
        docs in gen_docs(),
        patterns in prop::collection::vec(gen_pattern(), 1..5),
    ) {
        let mut engine = SimilarityEngine::new(SynopsisConfig::hashes(32));
        engine.ingest(ingest::trees(&docs)).unwrap();
        let ids = engine.register_all(&patterns);
        let batch = engine.selectivities(&ids);
        for (&id, &value) in ids.iter().zip(&batch) {
            prop_assert!(engine.selectivity(id) == value);
        }
        let mut fresh = SimilarityEngine::new(SynopsisConfig::hashes(32));
        fresh.ingest(ingest::trees(&docs)).unwrap();
        let fresh_ids = fresh.register_all(&patterns);
        prop_assert_eq!(fresh.selectivities(&fresh_ids), batch);
    }

    /// Containment is sound for matching and selectivity respects it: if
    /// `contains(p, q)` then `q`'s match set is a subset of `p`'s, so the
    /// exact selectivity is monotone — and so is the estimate, on the
    /// fragment where the representation intersects faithfully. Set
    /// summaries are monotone for arbitrary patterns at *any* capacity
    /// (coalescing merges whole contexts, preserving subset order).
    /// Counters multiply per-branch marginals as if independent, which can
    /// invert branching pairs, and undersized hash tables alias distinct
    /// documents, so those two are asserted on branch-free patterns with
    /// collision-free capacity — exactly the fragment the routing
    /// compaction relies on.
    #[test]
    fn containment_implies_selectivity_monotonicity(
        docs in gen_docs(),
        patterns in prop::collection::vec(gen_pattern(), 2..6),
    ) {
        use tps_pattern::containment::contains;
        let exact = ExactEvaluator::new(docs.clone());
        // (config, whether monotonicity is unconditional for it)
        let configs = [
            (SynopsisConfig::counters(), false),
            (SynopsisConfig::sets(8), true),
            (SynopsisConfig::sets(100_000), true),
            (SynopsisConfig::hashes(64), false),
            (SynopsisConfig::hashes(100_000), false),
        ];
        let estimates: Vec<Vec<f64>> = configs
            .iter()
            .map(|(config, _)| {
                let mut engine = SimilarityEngine::new(*config);
                engine.ingest(ingest::trees(&docs)).unwrap();
                let ids = engine.register_all(&patterns);
                engine.selectivities(&ids)
            })
            .collect();
        for i in 0..patterns.len() {
            for j in 0..patterns.len() {
                if i == j || !contains(&patterns[i], &patterns[j]) {
                    continue;
                }
                let (p, q) = (&patterns[i], &patterns[j]);
                for doc in &docs {
                    prop_assert!(
                        p.matches(doc) || !q.matches(doc),
                        "contains({p}, {q}) but a document matches only {q}"
                    );
                }
                prop_assert!(
                    exact.selectivity(q) <= exact.selectivity(p) + 1e-9,
                    "exact selectivity not monotone for {q} ⊑ {p}"
                );
                let branch_free = p.branching_count() == 0 && q.branching_count() == 0;
                for ((config, unconditional), sels) in configs.iter().zip(&estimates) {
                    if *unconditional || branch_free {
                        prop_assert!(
                            sels[j] <= sels[i] + 1e-9,
                            "{:?}: sel({q}) = {} > sel({p}) = {} despite {q} ⊑ {p}",
                            config.kind, sels[j], sels[i]
                        );
                    }
                }
            }
        }
    }

    /// The exact evaluator agrees with direct matching.
    #[test]
    fn exact_evaluator_matches_direct_counting(docs in gen_docs(), p in gen_pattern()) {
        let exact = ExactEvaluator::new(docs.clone());
        let direct = docs.iter().filter(|d| p.matches(d)).count() as f64 / docs.len() as f64;
        prop_assert!((exact.selectivity(&p) - direct).abs() < 1e-12);
    }
}
