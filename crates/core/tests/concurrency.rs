//! Concurrency behaviour of the `Sync` [`SimilarityEngine`]: cross-thread
//! sharing, atomic-epoch invalidation between batched calls, and memo-merge
//! warmth after a parallel matrix.

use tps_core::{ProximityMetric, SimilarityEngine};
use tps_pattern::TreePattern;
use tps_synopsis::{ingest, Ingest, MatchingSetKind};
use tps_xml::XmlTree;

fn docs() -> Vec<XmlTree> {
    [
        "<media><CD><composer><last>Mozart</last></composer><title>Requiem</title></CD></media>",
        "<media><CD><composer><last>Bach</last></composer></CD></media>",
        "<media><book><author><last>Austen</last></author></book></media>",
        "<media><book><author><last>Mozart</last></author></book></media>",
    ]
    .iter()
    .map(|s| XmlTree::parse(s).unwrap())
    .collect()
}

fn patterns() -> Vec<TreePattern> {
    ["//CD", "//composer/last", "//book", "//Mozart"]
        .iter()
        .map(|s| TreePattern::parse(s).unwrap())
        .collect()
}

/// The documents observed mid-test by the maintenance thread; one list so
/// the observation step and the fresh-engine comparison can never drift.
fn new_docs() -> Vec<XmlTree> {
    [
        "<media><CD><title>Solo</title></CD></media>",
        "<media><CD><composer><last>Mozart</last></composer></CD></media>",
    ]
    .iter()
    .map(|s| XmlTree::parse(s).unwrap())
    .collect()
}

fn engine() -> SimilarityEngine {
    let mut engine = SimilarityEngine::builder()
        .matching_sets(MatchingSetKind::hashes(64))
        .build();
    engine.ingest(ingest::trees(&docs())).unwrap();
    engine
}

#[test]
fn engine_reference_is_shareable_across_threads() {
    let mut engine = engine();
    let ids = engine.register_all(&patterns());
    let expected = engine.similarity_matrix(&ids, ProximityMetric::M3);
    let selectivities = engine.selectivities(&ids);
    // `&SimilarityEngine` goes straight into scoped threads — no wrapper,
    // no external lock — and every thread sees the same answers.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                assert_eq!(engine.selectivities(&ids), selectivities);
                assert_eq!(
                    engine.similarity_matrix(&ids, ProximityMetric::M3),
                    expected
                );
                assert_eq!(
                    engine.similarity_matrix_par(&ids, ProximityMetric::M3, 2),
                    expected
                );
            });
        }
    });
}

#[test]
fn observation_on_another_thread_invalidates_batched_caches() {
    let mut engine = engine();
    let ids = engine.register_all(&patterns());

    // First batched call warms every cache layer.
    let before = engine.similarity_matrix_par(&ids, ProximityMetric::M3, 2);
    let epoch_before = engine.synopsis().epoch();
    let stats_before = engine.cache_stats();
    assert!(stats_before.marginal_misses > 0);

    // Another thread observes fresh documents between the two batched
    // calls, bumping the atomic epoch. The scoped move hands the whole
    // `&mut engine` to the maintenance thread, exactly like a stream
    // ingestion worker would own it between query phases.
    std::thread::scope(|scope| {
        let engine = &mut engine;
        scope.spawn(move || {
            engine.ingest(ingest::trees(&new_docs())).unwrap();
        });
    });
    assert!(
        engine.synopsis().epoch() > epoch_before,
        "observation must advance the atomic epoch"
    );

    // The second batched call must discard the stale shard memos and
    // recompute: the hit/miss counters restart with this epoch, so every
    // marginal is a miss again.
    let after = engine.similarity_matrix_par(&ids, ProximityMetric::M3, 2);
    let stats_after = engine.cache_stats();
    assert_eq!(stats_after.epoch, engine.synopsis().epoch());
    assert_eq!(
        stats_after.marginal_misses,
        ids.len() as u64,
        "stale caches must be recomputed, not reused"
    );
    assert_ne!(before, after, "the stream changed, so must the matrix");

    // And the recomputation matches an engine built fresh over the full
    // stream — stale memo entries must not leak into the new epoch.
    let mut fresh = SimilarityEngine::builder()
        .matching_sets(MatchingSetKind::hashes(64))
        .build();
    fresh.ingest(ingest::trees(&docs())).unwrap();
    fresh.ingest(ingest::trees(&new_docs())).unwrap();
    let fresh_ids = fresh.register_all(&patterns());
    assert_eq!(
        fresh.similarity_matrix(&fresh_ids, ProximityMetric::M3),
        after
    );
}

#[test]
fn parallel_matrix_leaves_sequential_queries_warm() {
    let mut engine = engine();
    let ids = engine.register_all(&patterns());
    let par = engine.similarity_matrix_par(&ids, ProximityMetric::M3, 4);
    let misses_after_par = {
        let stats = engine.cache_stats();
        (stats.marginal_misses, stats.joint_misses)
    };
    // Pairwise queries and the sequential matrix are now pure cache hits.
    for i in 0..ids.len() {
        for j in 0..ids.len() {
            assert_eq!(
                engine.similarity(ids[i], ids[j], ProximityMetric::M3),
                par.get(i, j)
            );
        }
    }
    assert_eq!(engine.similarity_matrix(&ids, ProximityMetric::M3), par);
    let stats = engine.cache_stats();
    assert_eq!(
        (stats.marginal_misses, stats.joint_misses),
        misses_after_par,
        "merged-back worker memos must serve later sequential calls"
    );
}
