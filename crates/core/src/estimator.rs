//! High-level streaming similarity estimator.
//!
//! [`SimilarityEstimator`] ties the pieces together for the content-based
//! routing use case: it owns a [`Synopsis`], observes the XML document
//! stream, and answers selectivity and similarity queries over tree
//! patterns. This is the API a broker uses to discover semantic communities
//! of subscriptions.

use tps_pattern::TreePattern;
use tps_synopsis::{PruneConfig, PruneReport, Synopsis, SynopsisConfig, SynopsisSize};
use tps_xml::XmlTree;

use crate::metrics::ProximityMetric;
use crate::selectivity::SelectivityEstimator;

/// Streaming tree-pattern similarity estimator.
///
/// # Example
///
/// ```
/// use tps_core::{ProximityMetric, SimilarityEstimator};
/// use tps_pattern::TreePattern;
/// use tps_synopsis::SynopsisConfig;
/// use tps_xml::XmlTree;
///
/// let mut estimator = SimilarityEstimator::new(SynopsisConfig::hashes(64));
/// for text in [
///     "<media><CD><composer><last>Mozart</last></composer></CD></media>",
///     "<media><book><author><last>Austen</last></author></book></media>",
/// ] {
///     estimator.observe(&XmlTree::parse(text).unwrap());
/// }
/// let p = TreePattern::parse("//CD").unwrap();
/// let q = TreePattern::parse("//composer/last").unwrap();
/// let sim = estimator.similarity(&p, &q, ProximityMetric::M3);
/// assert!(sim > 0.99, "both patterns match exactly the first document");
/// ```
#[derive(Debug, Clone)]
pub struct SimilarityEstimator {
    synopsis: Synopsis,
}

impl SimilarityEstimator {
    /// Create an estimator with an empty synopsis.
    pub fn new(config: SynopsisConfig) -> Self {
        Self {
            synopsis: Synopsis::new(config),
        }
    }

    /// Wrap an existing synopsis.
    pub fn from_synopsis(synopsis: Synopsis) -> Self {
        Self { synopsis }
    }

    /// Observe one document from the stream.
    pub fn observe(&mut self, document: &XmlTree) {
        self.synopsis.insert_document(document);
    }

    /// Observe a document that is already a skeleton tree.
    pub fn observe_skeleton(&mut self, skeleton: &XmlTree) {
        self.synopsis.insert_skeleton(skeleton);
    }

    /// Observe a batch of documents.
    pub fn observe_all<'a, I>(&mut self, documents: I)
    where
        I: IntoIterator<Item = &'a XmlTree>,
    {
        for doc in documents {
            self.observe(doc);
        }
    }

    /// Number of documents observed so far.
    pub fn document_count(&self) -> u64 {
        self.synopsis.document_count()
    }

    /// Read access to the synopsis.
    pub fn synopsis(&self) -> &Synopsis {
        &self.synopsis
    }

    /// Mutable access to the synopsis (e.g. for custom pruning schedules).
    pub fn synopsis_mut(&mut self) -> &mut Synopsis {
        &mut self.synopsis
    }

    /// Materialise the per-node matching sets; recommended before issuing a
    /// batch of queries against a Hashes synopsis.
    pub fn prepare(&mut self) {
        self.synopsis.prepare();
    }

    /// Current synopsis size decomposition.
    pub fn size(&self) -> SynopsisSize {
        self.synopsis.size()
    }

    /// Prune the synopsis to `alpha` times its current size.
    pub fn prune_to_ratio(&mut self, alpha: f64, config: PruneConfig) -> PruneReport {
        self.synopsis.prune_to_ratio(alpha, config)
    }

    /// Estimated selectivity `P(p)`.
    pub fn selectivity(&self, pattern: &TreePattern) -> f64 {
        SelectivityEstimator::new(&self.synopsis).selectivity(pattern)
    }

    /// Estimated joint selectivity `P(p ∧ q)`.
    pub fn joint_selectivity(&self, p: &TreePattern, q: &TreePattern) -> f64 {
        SelectivityEstimator::new(&self.synopsis).joint_selectivity(p, q)
    }

    /// Estimated similarity of `p` and `q` under `metric`.
    pub fn similarity(&self, p: &TreePattern, q: &TreePattern, metric: ProximityMetric) -> f64 {
        let estimator = SelectivityEstimator::new(&self.synopsis);
        let p_p = estimator.selectivity(p);
        let p_q = estimator.selectivity(q);
        let p_and = estimator.joint_selectivity(p, q);
        metric.compute(p_p, p_q, p_and)
    }

    /// Estimated similarities under all three metrics, returned in the order
    /// `[M1, M2, M3]`. Cheaper than three separate calls because the
    /// marginal and joint selectivities are evaluated once.
    pub fn similarities(&self, p: &TreePattern, q: &TreePattern) -> [f64; 3] {
        let estimator = SelectivityEstimator::new(&self.synopsis);
        let p_p = estimator.selectivity(p);
        let p_q = estimator.selectivity(q);
        let p_and = estimator.joint_selectivity(p, q);
        [
            ProximityMetric::M1.compute(p_p, p_q, p_and),
            ProximityMetric::M2.compute(p_p, p_q, p_and),
            ProximityMetric::M3.compute(p_p, p_q, p_and),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<XmlTree> {
        [
            "<media><CD><composer><last>Mozart</last></composer><title>Requiem</title></CD></media>",
            "<media><CD><composer><last>Bach</last></composer></CD></media>",
            "<media><book><author><last>Austen</last></author></book></media>",
            "<media><book><author><last>Mozart</last></author></book></media>",
        ]
        .iter()
        .map(|s| XmlTree::parse(s).unwrap())
        .collect()
    }

    fn pat(s: &str) -> TreePattern {
        TreePattern::parse(s).unwrap()
    }

    #[test]
    fn observes_documents_and_estimates_selectivity() {
        let mut est = SimilarityEstimator::new(SynopsisConfig::hashes(64));
        est.observe_all(&docs());
        est.prepare();
        assert_eq!(est.document_count(), 4);
        assert!((est.selectivity(&pat("//CD")) - 0.5).abs() < 1e-9);
        assert!((est.selectivity(&pat("//Mozart")) - 0.5).abs() < 1e-9);
        assert!((est.joint_selectivity(&pat("//CD"), &pat("//Mozart")) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn similarity_reflects_correlation() {
        let mut est = SimilarityEstimator::new(SynopsisConfig::sets(100));
        est.observe_all(&docs());
        // //CD and //composer always co-occur: high similarity.
        let high = est.similarity(&pat("//CD"), &pat("//composer"), ProximityMetric::M3);
        // //CD and //book never co-occur: zero similarity.
        let low = est.similarity(&pat("//CD"), &pat("//book"), ProximityMetric::M3);
        assert!(high > 0.99, "high = {high}");
        assert_eq!(low, 0.0);
    }

    #[test]
    fn similarities_returns_all_three_metrics_consistently() {
        let mut est = SimilarityEstimator::new(SynopsisConfig::sets(100));
        est.observe_all(&docs());
        let p = pat("//CD");
        let q = pat("//Mozart");
        let all = est.similarities(&p, &q);
        assert!((all[0] - est.similarity(&p, &q, ProximityMetric::M1)).abs() < 1e-12);
        assert!((all[1] - est.similarity(&p, &q, ProximityMetric::M2)).abs() < 1e-12);
        assert!((all[2] - est.similarity(&p, &q, ProximityMetric::M3)).abs() < 1e-12);
    }

    #[test]
    fn m1_is_asymmetric_on_contained_patterns() {
        let mut est = SimilarityEstimator::new(SynopsisConfig::sets(100));
        est.observe_all(&docs());
        // //composer/last ⊑ //composer, so P(composer | composer/last) = 1
        // while P(composer/last | composer) may be < 1... here both are 1
        // because every composer has a last; use //CD vs //media instead.
        let p = pat("//media");
        let q = pat("//CD");
        let p_given_q = est.similarity(&p, &q, ProximityMetric::M1);
        let q_given_p = est.similarity(&q, &p, ProximityMetric::M1);
        assert!((p_given_q - 1.0).abs() < 1e-9);
        assert!((q_given_p - 0.5).abs() < 1e-9);
    }

    #[test]
    fn pruning_through_the_estimator_keeps_it_usable() {
        let mut est = SimilarityEstimator::new(SynopsisConfig::hashes(64));
        est.observe_all(&docs());
        let report = est.prune_to_ratio(0.6, PruneConfig::default());
        assert!(report.final_size <= report.original_size);
        est.prepare();
        let sel = est.selectivity(&pat("//CD"));
        assert!((0.0..=1.0).contains(&sel));
        assert!(est.size().total() > 0);
    }

    #[test]
    fn from_synopsis_wraps_an_existing_synopsis() {
        let synopsis = Synopsis::from_documents(SynopsisConfig::counters(), &docs());
        let est = SimilarityEstimator::from_synopsis(synopsis);
        assert_eq!(est.document_count(), 4);
        assert!(est.synopsis().node_count() > 1);
    }

    #[test]
    fn observe_skeleton_is_equivalent_for_skeleton_documents() {
        let doc = XmlTree::parse("<a><b/><c/></a>").unwrap();
        let mut a = SimilarityEstimator::new(SynopsisConfig::counters());
        a.observe(&doc);
        let mut b = SimilarityEstimator::new(SynopsisConfig::counters());
        b.observe_skeleton(&doc.skeleton());
        assert_eq!(a.selectivity(&pat("/a/b")), b.selectivity(&pat("/a/b")));
    }
}
