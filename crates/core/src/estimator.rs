//! High-level streaming similarity estimator (deprecated shim).
//!
//! [`SimilarityEstimator`] was the original one-pattern-at-a-time entry
//! point. It is now a thin shim over [`SimilarityEngine`] and is kept for
//! one release to ease migration; new code should use the engine directly:
//!
//! ```
//! use tps_core::{ProximityMetric, SimilarityEngine};
//! use tps_pattern::TreePattern;
//! use tps_synopsis::MatchingSetKind;
//! use tps_xml::XmlTree;
//!
//! let mut engine = SimilarityEngine::builder()
//!     .matching_sets(MatchingSetKind::hashes(64))
//!     .metric(ProximityMetric::M3)
//!     .build();
//! engine.observe(&XmlTree::parse("<media><CD/></media>").unwrap());
//! let p = engine.register(&TreePattern::parse("//CD").unwrap());
//! assert_eq!(engine.selectivity(p), 1.0);
//! ```
//!
//! Migration map:
//!
//! | old (`SimilarityEstimator`)                  | new (`SimilarityEngine`)                          |
//! |----------------------------------------------|---------------------------------------------------|
//! | `new(config)` + `prepare()`                  | `builder().matching_sets(..).build()` (no prepare) |
//! | `selectivity(&p)` per call                   | `register(&p)` once, `selectivity(id)`            |
//! | `similarity(&p, &q, m)` per pair             | `similarity(p_id, q_id, m)` (cached)              |
//! | hand-rolled pairwise loops                   | `selectivities(&ids)` / `similarity_matrix(&ids, m)` |

use tps_pattern::TreePattern;
use tps_synopsis::{PruneConfig, PruneReport, Synopsis, SynopsisConfig, SynopsisSize};
use tps_xml::XmlTree;

use crate::engine::SimilarityEngine;
use crate::metrics::ProximityMetric;

/// Streaming tree-pattern similarity estimator.
///
/// Deprecated: every query re-derives its inputs instead of reusing work
/// across the workload. Use [`SimilarityEngine`] — register patterns once and
/// query through handles — which also exposes genuinely batched entry points
/// (`selectivities`, `similarity_matrix`).
///
/// # Example
///
/// ```
/// #![allow(deprecated)]
/// use tps_core::{ProximityMetric, SimilarityEstimator};
/// use tps_pattern::TreePattern;
/// use tps_synopsis::SynopsisConfig;
/// use tps_xml::XmlTree;
///
/// let mut estimator = SimilarityEstimator::new(SynopsisConfig::hashes(64));
/// for text in [
///     "<media><CD><composer><last>Mozart</last></composer></CD></media>",
///     "<media><book><author><last>Austen</last></author></book></media>",
/// ] {
///     estimator.observe(&XmlTree::parse(text).unwrap());
/// }
/// let p = TreePattern::parse("//CD").unwrap();
/// let q = TreePattern::parse("//composer/last").unwrap();
/// let sim = estimator.similarity(&p, &q, ProximityMetric::M3);
/// assert!(sim > 0.99, "both patterns match exactly the first document");
/// ```
#[deprecated(
    since = "0.1.0",
    note = "use SimilarityEngine: register patterns once and query through PatternId handles"
)]
#[derive(Debug, Clone)]
pub struct SimilarityEstimator {
    engine: SimilarityEngine,
}

#[allow(deprecated)]
impl SimilarityEstimator {
    /// Create an estimator with an empty synopsis.
    pub fn new(config: SynopsisConfig) -> Self {
        Self {
            engine: SimilarityEngine::new(config),
        }
    }

    /// Wrap an existing synopsis.
    pub fn from_synopsis(synopsis: Synopsis) -> Self {
        Self {
            engine: SimilarityEngine::from_synopsis(synopsis),
        }
    }

    /// The engine this shim queries; migrate callers to it directly.
    pub fn engine(&self) -> &SimilarityEngine {
        &self.engine
    }

    /// Consume the shim, keeping the engine (and its observed stream).
    pub fn into_engine(self) -> SimilarityEngine {
        self.engine
    }

    /// Observe one document from the stream.
    pub fn observe(&mut self, document: &XmlTree) {
        self.engine.observe(document);
    }

    /// Observe a document that is already a skeleton tree.
    pub fn observe_skeleton(&mut self, skeleton: &XmlTree) {
        self.engine.observe_skeleton(skeleton);
    }

    /// Observe a batch of documents.
    pub fn observe_all<'a, I>(&mut self, documents: I)
    where
        I: IntoIterator<Item = &'a XmlTree>,
    {
        self.engine.observe_all(documents);
    }

    /// Number of documents observed so far.
    pub fn document_count(&self) -> u64 {
        self.engine.document_count()
    }

    /// Read access to the synopsis.
    pub fn synopsis(&self) -> &Synopsis {
        self.engine.synopsis()
    }

    /// Mutable access to the synopsis (e.g. for custom pruning schedules).
    pub fn synopsis_mut(&mut self) -> &mut Synopsis {
        self.engine.synopsis_mut()
    }

    /// Materialise the per-node matching sets. The engine caches these
    /// lazily per epoch, so this is an optional warm-up nowadays.
    pub fn prepare(&mut self) {
        self.engine.prepare();
    }

    /// Current synopsis size decomposition.
    pub fn size(&self) -> SynopsisSize {
        self.engine.size()
    }

    /// Prune the synopsis to `alpha` times its current size.
    pub fn prune_to_ratio(&mut self, alpha: f64, config: PruneConfig) -> PruneReport {
        self.engine.prune_to_ratio(alpha, config)
    }

    /// Estimated selectivity `P(p)`.
    pub fn selectivity(&self, pattern: &TreePattern) -> f64 {
        self.engine.selectivity_of(pattern)
    }

    /// Estimated joint selectivity `P(p ∧ q)`.
    pub fn joint_selectivity(&self, p: &TreePattern, q: &TreePattern) -> f64 {
        self.engine.joint_selectivity_of(p, q)
    }

    /// Estimated similarity of `p` and `q` under `metric`.
    pub fn similarity(&self, p: &TreePattern, q: &TreePattern, metric: ProximityMetric) -> f64 {
        self.engine.similarity_of(p, q, metric)
    }

    /// Estimated similarities under all three metrics, returned in the order
    /// `[M1, M2, M3]`. Cheaper than three separate calls because the
    /// marginal and joint selectivities are evaluated once.
    pub fn similarities(&self, p: &TreePattern, q: &TreePattern) -> [f64; 3] {
        self.engine.similarities_of(p, q)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    fn docs() -> Vec<XmlTree> {
        [
            "<media><CD><composer><last>Mozart</last></composer><title>Requiem</title></CD></media>",
            "<media><CD><composer><last>Bach</last></composer></CD></media>",
            "<media><book><author><last>Austen</last></author></book></media>",
            "<media><book><author><last>Mozart</last></author></book></media>",
        ]
        .iter()
        .map(|s| XmlTree::parse(s).unwrap())
        .collect()
    }

    fn pat(s: &str) -> TreePattern {
        TreePattern::parse(s).unwrap()
    }

    #[test]
    fn observes_documents_and_estimates_selectivity() {
        let mut est = SimilarityEstimator::new(SynopsisConfig::hashes(64));
        est.observe_all(&docs());
        est.prepare();
        assert_eq!(est.document_count(), 4);
        assert!((est.selectivity(&pat("//CD")) - 0.5).abs() < 1e-9);
        assert!((est.selectivity(&pat("//Mozart")) - 0.5).abs() < 1e-9);
        assert!((est.joint_selectivity(&pat("//CD"), &pat("//Mozart")) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn similarity_reflects_correlation() {
        let mut est = SimilarityEstimator::new(SynopsisConfig::sets(100));
        est.observe_all(&docs());
        // //CD and //composer always co-occur: high similarity.
        let high = est.similarity(&pat("//CD"), &pat("//composer"), ProximityMetric::M3);
        // //CD and //book never co-occur: zero similarity.
        let low = est.similarity(&pat("//CD"), &pat("//book"), ProximityMetric::M3);
        assert!(high > 0.99, "high = {high}");
        assert_eq!(low, 0.0);
    }

    #[test]
    fn similarities_returns_all_three_metrics_consistently() {
        let mut est = SimilarityEstimator::new(SynopsisConfig::sets(100));
        est.observe_all(&docs());
        let p = pat("//CD");
        let q = pat("//Mozart");
        let all = est.similarities(&p, &q);
        assert!((all[0] - est.similarity(&p, &q, ProximityMetric::M1)).abs() < 1e-12);
        assert!((all[1] - est.similarity(&p, &q, ProximityMetric::M2)).abs() < 1e-12);
        assert!((all[2] - est.similarity(&p, &q, ProximityMetric::M3)).abs() < 1e-12);
    }

    #[test]
    fn m1_is_asymmetric_on_contained_patterns() {
        let mut est = SimilarityEstimator::new(SynopsisConfig::sets(100));
        est.observe_all(&docs());
        // //composer/last ⊑ //composer, so P(composer | composer/last) = 1
        // while P(composer/last | composer) may be < 1... here both are 1
        // because every composer has a last; use //CD vs //media instead.
        let p = pat("//media");
        let q = pat("//CD");
        let p_given_q = est.similarity(&p, &q, ProximityMetric::M1);
        let q_given_p = est.similarity(&q, &p, ProximityMetric::M1);
        assert!((p_given_q - 1.0).abs() < 1e-9);
        assert!((q_given_p - 0.5).abs() < 1e-9);
    }

    #[test]
    fn pruning_through_the_estimator_keeps_it_usable() {
        let mut est = SimilarityEstimator::new(SynopsisConfig::hashes(64));
        est.observe_all(&docs());
        let report = est.prune_to_ratio(0.6, PruneConfig::default());
        assert!(report.final_size <= report.original_size);
        est.prepare();
        let sel = est.selectivity(&pat("//CD"));
        assert!((0.0..=1.0).contains(&sel));
        assert!(est.size().total() > 0);
    }

    #[test]
    fn from_synopsis_wraps_an_existing_synopsis() {
        let synopsis = Synopsis::from_documents(SynopsisConfig::counters(), &docs());
        let est = SimilarityEstimator::from_synopsis(synopsis);
        assert_eq!(est.document_count(), 4);
        assert!(est.synopsis().node_count() > 1);
    }

    #[test]
    fn observe_skeleton_is_equivalent_for_skeleton_documents() {
        let doc = XmlTree::parse("<a><b/><c/></a>").unwrap();
        let mut a = SimilarityEstimator::new(SynopsisConfig::counters());
        a.observe(&doc);
        let mut b = SimilarityEstimator::new(SynopsisConfig::counters());
        b.observe_skeleton(&doc.skeleton());
        assert_eq!(a.selectivity(&pat("/a/b")), b.selectivity(&pat("/a/b")));
    }

    #[test]
    fn shim_agrees_with_the_engine_it_wraps() {
        let mut est = SimilarityEstimator::new(SynopsisConfig::hashes(64));
        est.observe_all(&docs());
        let p = pat("//CD");
        let q = pat("//Mozart");
        let shim = est.similarity(&p, &q, ProximityMetric::M3);
        let mut engine = est.into_engine();
        let (hp, hq) = (engine.register(&p), engine.register(&q));
        assert_eq!(shim, engine.similarity(hp, hq, ProximityMetric::M3));
    }
}
