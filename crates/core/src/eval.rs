//! The shared `SEL` recursion used by both [`crate::SelectivityEstimator`]
//! (one-shot, per-call memo) and [`crate::SimilarityEngine`] (persistent,
//! cross-pattern memo).
//!
//! The recursion follows Algorithms 1 and 2 of the paper (see
//! [`crate::selectivity`] for the pseudo-code and the folded-label
//! extension). It is parameterised over
//!
//! * a [`ValueSource`] — where full matching-set values `S(v)` come from
//!   (recomputed from the synopsis, or an engine-side epoch-tagged cache),
//! * a memo table keyed by `(synopsis node, canonical pattern subtree)`.
//!
//! Keying the memo by the *canonical subtree* ([`SubtreeKeyId`]) instead of
//! the pattern node id is what lets an engine share `SEL` work across every
//! registered pattern: `SEL(v, u)` depends only on the subtree below `u`, so
//! common subscription fragments — and the operand copies embedded in
//! conjunction patterns — hit the same entries.

use std::collections::HashMap;

use tps_pattern::{CompiledPattern, PatternLabel, PatternNodeId, SubtreeKeyId, TreePattern};
use tps_synopsis::{FoldedSubtree, MatchingSetKind, SummaryValue, Synopsis, SynopsisNodeId};

/// Memoisation table for `SEL(v, u)` values.
pub(crate) type SelMemo = HashMap<(SynopsisNodeId, SubtreeKeyId), SummaryValue>;

/// Where the evaluator reads full matching-set values from.
pub(crate) enum ValueSource<'a> {
    /// Ask the synopsis each time ([`Synopsis::matching_value`]); fast when
    /// the synopsis is [`Synopsis::prepare`]d, correct (but slow for the
    /// Hashes representation) otherwise.
    Direct,
    /// A caller-owned materialisation of [`Synopsis::full_values`], indexed
    /// by [`SynopsisNodeId::index`].
    Cached(&'a [SummaryValue]),
}

impl ValueSource<'_> {
    fn value(&self, synopsis: &Synopsis, v: SynopsisNodeId) -> SummaryValue {
        match self {
            ValueSource::Direct => synopsis.matching_value(v),
            ValueSource::Cached(full) => full[v.index()].clone(),
        }
    }

    /// The value representing the whole observed document set `S(rs)` — the
    /// denominator of Algorithm 2 (mirrors [`Synopsis::universe_value`]).
    pub(crate) fn universe(&self, synopsis: &Synopsis) -> SummaryValue {
        match synopsis.kind() {
            MatchingSetKind::Counters => SummaryValue::Fraction(1.0),
            _ => self.value(synopsis, synopsis.root()),
        }
    }
}

/// One `SEL` evaluation pass over a compiled pattern.
///
/// `local` is the per-evaluation memo (dropped or cleared after the pass,
/// like the paper's per-query memoisation); `shared` is a small persistent
/// read-only memo of *top-level* entries — `(root child of the synopsis,
/// root branch of a previously evaluated pattern)` — promoted by the engine.
/// A conjunction pattern's root branches are exactly its operands' root
/// branches, so with the operands' top-level entries promoted, evaluating
/// `p ∧ q` never recurses below the synopsis root at all: each branch is one
/// shared-memo hit. Keeping only the top level shared bounds the persistent
/// memory to a few entries per registered pattern while preserving the whole
/// cross-pattern amortisation.
pub(crate) struct SelEvaluator<'a> {
    pub(crate) synopsis: &'a Synopsis,
    pub(crate) source: ValueSource<'a>,
    pub(crate) shared: &'a SelMemo,
    pub(crate) local: &'a mut SelMemo,
}

impl SelEvaluator<'_> {
    /// Run `SEL` on the root nodes and return the raw document-set value.
    pub(crate) fn evaluate(&mut self, compiled: &CompiledPattern) -> SummaryValue {
        let pattern = compiled.pattern();
        let root_children = pattern.children(pattern.root());
        if root_children.is_empty() {
            // The bare `/.` pattern matches every document.
            return self.source.universe(self.synopsis);
        }
        let syn_root = self.synopsis.root();
        let mut result: Option<SummaryValue> = None;
        for &u in root_children {
            let mut sat = self.synopsis.empty_value();
            for &v in self.synopsis.children(syn_root) {
                sat = sat.union(&self.sel(v, u, compiled));
            }
            // Folded labels directly below the synopsis root (possible after
            // aggressive pruning) can also satisfy a root branch.
            if folded_satisfies(self.synopsis.folded(syn_root), pattern, u) {
                sat = sat.union(&self.source.value(self.synopsis, syn_root));
            }
            result = Some(match result {
                None => sat,
                Some(acc) => acc.intersect(&sat),
            });
        }
        result.unwrap_or_else(|| self.synopsis.empty_value())
    }

    /// Estimate `P(p)` from the evaluated value (Algorithm 2), clamped to
    /// `[0, 1]`.
    pub(crate) fn selectivity(&mut self, compiled: &CompiledPattern) -> f64 {
        let universe = self.source.universe(self.synopsis).count_units();
        if universe <= 0.0 {
            return 0.0;
        }
        let value = self.evaluate(compiled);
        (value.count_units() / universe).clamp(0.0, 1.0)
    }

    /// `SEL(v, u)` with memoisation keyed by `(v, canonical subtree of u)`.
    fn sel(
        &mut self,
        v: SynopsisNodeId,
        u: PatternNodeId,
        compiled: &CompiledPattern,
    ) -> SummaryValue {
        let key = (v, compiled.node_key(u));
        if let Some(cached) = self.local.get(&key) {
            return cached.clone();
        }
        if let Some(cached) = self.shared.get(&key) {
            return cached.clone();
        }
        let value = self.sel_uncached(v, u, compiled);
        self.local.insert(key, value.clone());
        value
    }

    fn sel_uncached(
        &mut self,
        v: SynopsisNodeId,
        u: PatternNodeId,
        compiled: &CompiledPattern,
    ) -> SummaryValue {
        let synopsis = self.synopsis;
        let pattern = compiled.pattern();
        let u_label = pattern.label(u);
        // Line 1: label compatibility (the partial order `a ⪯ * ⪯ //`).
        if !u_label.subsumes(synopsis.label(v)) {
            return synopsis.empty_value();
        }
        // Line 3-4: u is a leaf → S(v).
        if pattern.is_leaf(u) {
            return self.source.value(synopsis, v);
        }
        match u_label {
            PatternLabel::Descendant => {
                // Lines 11-14: the descendant maps to a path of length 0 or
                // recurses into the children of v.
                let mut s0: Option<SummaryValue> = None;
                for &u_child in pattern.children(u) {
                    let val = self.sel(v, u_child, compiled);
                    s0 = Some(match s0 {
                        None => val,
                        Some(acc) => acc.intersect(&val),
                    });
                }
                let mut result = s0.unwrap_or_else(|| synopsis.empty_value());
                for &v_child in synopsis.children(v) {
                    result = result.union(&self.sel(v_child, u, compiled));
                }
                // Folded labels: the descendant's target may have been folded
                // into v (or deeper); all of S(v) is then assumed to satisfy
                // it.
                if pattern.children(u).iter().all(|&u_child| {
                    folded_satisfies_descendant(synopsis.folded(v), pattern, u_child)
                }) && !pattern.children(u).is_empty()
                {
                    result = result.union(&self.source.value(synopsis, v));
                }
                result
            }
            _ => {
                // Lines 5-10: tag or wildcard with children — branch on the
                // pattern children, union over the synopsis children.
                let mut result: Option<SummaryValue> = None;
                for &u_child in pattern.children(u) {
                    let mut sat = synopsis.empty_value();
                    for &v_child in synopsis.children(v) {
                        sat = sat.union(&self.sel(v_child, u_child, compiled));
                    }
                    if folded_satisfies(synopsis.folded(v), pattern, u_child) {
                        sat = sat.union(&self.source.value(synopsis, v));
                    }
                    result = Some(match result {
                        None => sat,
                        Some(acc) => acc.intersect(&sat),
                    });
                }
                result.unwrap_or_else(|| synopsis.empty_value())
            }
        }
    }
}

/// Can the pattern subtree rooted at `u` be satisfied purely within the
/// folded (nested) labels `folded` of a synopsis node?
pub(crate) fn folded_satisfies(
    folded: &[FoldedSubtree],
    pattern: &TreePattern,
    u: PatternNodeId,
) -> bool {
    match pattern.label(u) {
        PatternLabel::Tag(tag) => folded.iter().any(|f| {
            f.label.as_ref() == tag.as_ref()
                && pattern
                    .children(u)
                    .iter()
                    .all(|&uc| folded_satisfies(&f.children, pattern, uc))
        }),
        PatternLabel::Wildcard => folded.iter().any(|f| {
            pattern
                .children(u)
                .iter()
                .all(|&uc| folded_satisfies(&f.children, pattern, uc))
        }),
        PatternLabel::Descendant => pattern
            .children(u)
            .iter()
            .all(|&uc| folded_satisfies_descendant(folded, pattern, uc)),
        PatternLabel::Root => false,
    }
}

/// Can `u` be satisfied at any depth within the folded label forest?
pub(crate) fn folded_satisfies_descendant(
    folded: &[FoldedSubtree],
    pattern: &TreePattern,
    u: PatternNodeId,
) -> bool {
    if folded_satisfies(folded, pattern, u) {
        return true;
    }
    folded
        .iter()
        .any(|f| folded_satisfies_descendant(&f.children, pattern, u))
}
