//! Proximity metrics for tree-pattern similarity (Section 4 of the paper).
//!
//! All three metrics are derived from selectivities:
//!
//! * `M1(p, q) = P(p | q) = P(p ∧ q) / P(q)` — asymmetric conditional
//!   probability,
//! * `M2(p, q) = (P(p|q) + P(q|p)) / 2` — symmetric mean of the conditionals,
//! * `M3(p, q) = P(p ∧ q) / P(p ∨ q)` — the Jaccard-style ratio of the joint
//!   to the union probability.
//!
//! `P(p ∧ q)` is obtained by evaluating the root-merge of the two patterns;
//! `P(p ∨ q) = P(p) + P(q) − P(p ∧ q)` by inclusion–exclusion.

use std::fmt;

/// The proximity metric used to turn selectivities into a similarity score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProximityMetric {
    /// `M1(p, q) = P(p | q)`.
    M1,
    /// `M2(p, q) = (P(p|q) + P(q|p)) / 2`.
    M2,
    /// `M3(p, q) = P(p ∧ q) / P(p ∨ q)`.
    M3,
}

impl ProximityMetric {
    /// All three metrics, in paper order.
    pub fn all() -> [ProximityMetric; 3] {
        [
            ProximityMetric::M1,
            ProximityMetric::M2,
            ProximityMetric::M3,
        ]
    }

    /// Whether the metric is symmetric in its arguments.
    pub fn is_symmetric(&self) -> bool {
        !matches!(self, ProximityMetric::M1)
    }

    /// Compute the metric from the three selectivities `P(p)`, `P(q)` and
    /// `P(p ∧ q)`.
    ///
    /// Degenerate cases: when a denominator is zero the metric is defined to
    /// be `1.0` if the joint probability is also zero and both marginals are
    /// zero (the patterns match the same — empty — document set), `0.0`
    /// otherwise. Results are clamped to `[0, 1]`.
    pub fn compute(&self, p_p: f64, p_q: f64, p_and: f64) -> f64 {
        let p_and = p_and.min(p_p.min(p_q)).max(0.0);
        let value = match self {
            ProximityMetric::M1 => conditional(p_and, p_q),
            ProximityMetric::M2 => (conditional(p_and, p_q) + conditional(p_and, p_p)) / 2.0,
            ProximityMetric::M3 => {
                let union = p_p + p_q - p_and;
                if union <= 0.0 {
                    if p_p == 0.0 && p_q == 0.0 {
                        1.0
                    } else {
                        0.0
                    }
                } else {
                    p_and / union
                }
            }
        };
        value.clamp(0.0, 1.0)
    }
}

fn conditional(p_and: f64, denominator: f64) -> f64 {
    if denominator <= 0.0 {
        if p_and <= 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        p_and / denominator
    }
}

impl fmt::Display for ProximityMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProximityMetric::M1 => write!(f, "M1"),
            ProximityMetric::M2 => write!(f, "M2"),
            ProximityMetric::M3 => write!(f, "M3"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m1_is_the_conditional_probability() {
        let m = ProximityMetric::M1;
        assert!((m.compute(0.4, 0.5, 0.2) - 0.4).abs() < 1e-12);
        // P(p|q) differs from P(q|p): the metric is asymmetric.
        assert!((m.compute(0.5, 0.4, 0.2) - 0.5).abs() < 1e-12);
        assert!(!m.is_symmetric());
    }

    #[test]
    fn m2_is_the_mean_of_conditionals() {
        let m = ProximityMetric::M2;
        let value = m.compute(0.4, 0.5, 0.2);
        let expected = (0.2 / 0.5 + 0.2 / 0.4) / 2.0;
        assert!((value - expected).abs() < 1e-12);
        assert!(m.is_symmetric());
    }

    #[test]
    fn m3_is_joint_over_union() {
        let m = ProximityMetric::M3;
        let value = m.compute(0.4, 0.5, 0.2);
        let expected = 0.2 / (0.4 + 0.5 - 0.2);
        assert!((value - expected).abs() < 1e-12);
        assert!(m.is_symmetric());
    }

    #[test]
    fn identical_patterns_have_similarity_one() {
        for m in ProximityMetric::all() {
            assert!((m.compute(0.3, 0.3, 0.3) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn disjoint_patterns_have_similarity_zero() {
        for m in ProximityMetric::all() {
            assert_eq!(m.compute(0.3, 0.4, 0.0), 0.0);
        }
    }

    #[test]
    fn zero_selectivity_pairs_are_considered_identical() {
        for m in ProximityMetric::all() {
            assert_eq!(m.compute(0.0, 0.0, 0.0), 1.0);
        }
    }

    #[test]
    fn zero_against_positive_is_zero() {
        for m in [ProximityMetric::M1, ProximityMetric::M3] {
            assert_eq!(m.compute(0.0, 0.5, 0.0), 0.0, "{m}");
        }
        // M2 averages the two conditionals: P(p|q) = 0, P(q|p) defined as 1
        // on the empty set — still strictly below 1.
        let m2 = ProximityMetric::M2.compute(0.0, 0.5, 0.0);
        assert!(m2 <= 0.5);
    }

    #[test]
    fn joint_probability_is_capped_by_marginals() {
        // Estimation noise can yield P(p∧q) slightly above P(p); the metric
        // must stay within [0, 1].
        for m in ProximityMetric::all() {
            let v = m.compute(0.2, 0.3, 0.35);
            assert!((0.0..=1.0).contains(&v), "{m} -> {v}");
        }
    }

    #[test]
    fn symmetric_metrics_are_symmetric() {
        for m in [ProximityMetric::M2, ProximityMetric::M3] {
            let a = m.compute(0.4, 0.7, 0.3);
            let b = m.compute(0.7, 0.4, 0.3);
            assert!((a - b).abs() < 1e-12, "{m}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ProximityMetric::M1.to_string(), "M1");
        assert_eq!(ProximityMetric::M2.to_string(), "M2");
        assert_eq!(ProximityMetric::M3.to_string(), "M3");
    }
}
