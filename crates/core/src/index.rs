//! Banded MinHash (LSH) candidate-pair index over pattern signatures.
//!
//! The full similarity matrix costs one joint-selectivity evaluation per
//! subscription pair — a non-starter at the million-subscription scale the
//! ROADMAP targets. This module provides the sub-quadratic first pass: every
//! registered pattern is summarised as a small MinHash signature of its
//! *structural features* (root-to-node path prefixes and canonical subtree
//! shapes, both computable from the [`TreePattern`] alone in `O(pattern)`
//! with no corpus scan), and the signatures are bucketed band-wise so that
//! only patterns sharing at least one band — the *candidate pairs* — are ever
//! compared with the real selectivity-based estimator.
//!
//! With `b` bands of `r` rows each, a pair of patterns whose feature sets
//! have true Jaccard similarity `s` becomes a candidate with probability
//! `1 − (1 − s^r)^b` ([`LshConfig::recall`]) — close to 1 above the
//! threshold the banding is tuned for and close to 0 well below it. Two
//! patterns with *identical* feature sets have identical signatures and are
//! therefore always candidates.
//!
//! Storage is a compact SoA layout: one flat `u32` arena holds every
//! signature (`bands · rows` values per pattern — 64 bytes each under the
//! default configuration, ~64 MB for 10⁶ subscriptions), and the per-band
//! buckets map a band key to the slots that share it.
//!
//! [`crate::SimilarityEngine::similarity_candidates`] builds on this index
//! to evaluate real similarities only on candidate pairs; `tps-cluster`
//! re-exports the index and adds incremental leader-based clustering on top.

use std::collections::HashMap;

use tps_pattern::{PatternLabel, TreePattern};

/// SplitMix64 finaliser used to derive per-permutation hashes and band keys.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over a byte string — a stable, dependency-free tag hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Domain separators keeping the two feature families (and the label kinds)
/// from colliding with each other.
const PATH_DOMAIN: u64 = 0x7061_7468; // "path"
const SUBTREE_DOMAIN: u64 = 0x7375_6274; // "subt"
const EMPTY_SENTINEL: u64 = 0x656d_7074; // "empt"

fn label_hash(label: &PatternLabel) -> u64 {
    match label {
        PatternLabel::Root => mix(1),
        PatternLabel::Wildcard => mix(2),
        PatternLabel::Descendant => mix(3),
        PatternLabel::Tag(tag) => mix(fnv1a(tag.as_bytes())),
    }
}

/// The structural feature set of a pattern: one hashed root-to-node path
/// prefix and one hashed canonical (order-insensitive) subtree shape per
/// non-root node, sorted and deduplicated.
///
/// Both families are computed from the pattern alone — `O(pattern)` work,
/// no document corpus, no synopsis — which is what makes signature
/// construction affordable at registration time for millions of
/// subscriptions. Patterns with equal canonical forms produce equal feature
/// sets, and patterns sharing paths or subtrees share features, so the
/// Jaccard similarity of two feature sets tracks structural overlap (the
/// cheap proxy the LSH index banks on; the *real* selectivity-based
/// similarity is only evaluated on candidate pairs).
pub fn pattern_features(pattern: &TreePattern) -> Vec<u64> {
    let order = pattern.preorder();
    let count = pattern.node_count();
    let mut path = vec![0u64; count];
    let mut subtree = vec![0u64; count];

    // Path prefixes, top-down: preorder visits parents before children.
    for &id in &order {
        let parent_path = match pattern.parent(id) {
            Some(parent) => path[parent.index()],
            None => mix(PATH_DOMAIN),
        };
        path[id.index()] = mix(parent_path.wrapping_add(label_hash(pattern.label(id))));
    }

    // Canonical subtree shapes, bottom-up: reverse preorder visits children
    // before parents; child hashes are sorted so sibling order is ignored
    // (tree patterns are unordered).
    for &id in order.iter().rev() {
        let mut children: Vec<u64> = pattern
            .children(id)
            .iter()
            .map(|child| subtree[child.index()])
            .collect();
        children.sort_unstable();
        let mut acc = mix(label_hash(pattern.label(id)).wrapping_add(SUBTREE_DOMAIN));
        for child in children {
            acc = mix(acc.wrapping_add(child));
        }
        subtree[id.index()] = acc;
    }

    let root = pattern.root();
    let mut features = Vec::with_capacity(2 * count.saturating_sub(1));
    for &id in &order {
        if id == root {
            // Every pattern is rooted at the same `/.` node; including it
            // would gift every pair a shared feature and inflate estimates.
            continue;
        }
        features.push(path[id.index()]);
        features.push(subtree[id.index()]);
    }
    if features.is_empty() {
        // A bare-root pattern still needs a non-empty set so its signature
        // is defined (and equal to other bare-root patterns').
        features.push(mix(EMPTY_SENTINEL));
    }
    features.sort_unstable();
    features.dedup();
    features
}

/// Banding parameters of the candidate-pair index.
///
/// `bands · rows` MinHash permutations are evaluated per pattern; a pair
/// becomes a candidate when all `rows` values of at least one band agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LshConfig {
    /// Number of bands (`b`). Zero is treated as 1.
    pub bands: usize,
    /// Rows per band (`r`). Zero is treated as 1.
    pub rows: usize,
    /// Seed the per-permutation hash functions are derived from.
    pub seed: u64,
}

impl Default for LshConfig {
    /// 8 bands × 2 rows: 16 `u32` values (64 bytes) per pattern, with the
    /// recall/precision sweet spot near Jaccard 0.3
    /// (see [`LshConfig::recall`] and `docs/SCALING.md`).
    fn default() -> Self {
        Self {
            bands: 8,
            rows: 2,
            seed: 0x0074_7073_5f6c_7368,
        }
    }
}

impl LshConfig {
    /// Effective number of bands (at least 1).
    pub fn bands(&self) -> usize {
        self.bands.max(1)
    }

    /// Effective rows per band (at least 1).
    pub fn rows(&self) -> usize {
        self.rows.max(1)
    }

    /// Signature width: `bands · rows` MinHash values per pattern.
    pub fn width(&self) -> usize {
        self.bands() * self.rows()
    }

    /// Probability that a pair with true feature-set Jaccard `s` becomes a
    /// candidate: `1 − (1 − s^r)^b`. This is the recall bound the property
    /// tests hold the index to.
    pub fn recall(&self, s: f64) -> f64 {
        let s = s.clamp(0.0, 1.0);
        1.0 - (1.0 - s.powi(self.rows() as i32)).powi(self.bands() as i32)
    }
}

/// An LSH candidate-pair index over pattern signatures.
///
/// Patterns are inserted (assigned a dense `u32` slot) and may later be
/// removed; [`CandidateIndex::candidates`] returns the live slots sharing at
/// least one band with a given slot, and [`CandidateIndex::candidate_pairs`]
/// enumerates every unordered candidate pair. Signature construction is
/// `O(pattern · width)`; a candidate lookup touches only the slot's `b`
/// buckets.
#[derive(Debug, Clone)]
pub struct CandidateIndex {
    config: LshConfig,
    /// Per-permutation seeds, hoisted out of every signature computation.
    seeds: Vec<u64>,
    /// Flat SoA signature arena: `width` values per slot.
    signatures: Vec<u32>,
    live: Vec<bool>,
    live_count: usize,
    /// Per-band buckets: band key → slots currently sharing it.
    buckets: Vec<HashMap<u64, Vec<u32>>>,
}

impl Default for CandidateIndex {
    fn default() -> Self {
        Self::new(LshConfig::default())
    }
}

impl CandidateIndex {
    /// Create an empty index with the given banding configuration.
    pub fn new(config: LshConfig) -> Self {
        let width = config.width();
        let seeds = (0..width)
            .map(|k| mix(config.seed.wrapping_add(k as u64)))
            .collect();
        Self {
            config,
            seeds,
            signatures: Vec::new(),
            live: Vec::new(),
            live_count: 0,
            buckets: vec![HashMap::new(); config.bands()],
        }
    }

    /// The banding configuration.
    pub fn config(&self) -> &LshConfig {
        &self.config
    }

    /// Total slots ever inserted (slots are never reused).
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no slot was ever inserted.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Number of live (not removed) slots.
    pub fn live_count(&self) -> usize {
        self.live_count
    }

    /// Whether `slot` exists and has not been removed.
    pub fn contains(&self, slot: u32) -> bool {
        self.live.get(slot as usize).copied().unwrap_or(false)
    }

    /// Approximate resident size of the index in bytes (signature arena
    /// plus bucket tables) — the bound the 1M-subscription bench reports.
    pub fn memory_bytes(&self) -> usize {
        let signatures = self.signatures.len() * std::mem::size_of::<u32>();
        let buckets: usize = self
            .buckets
            .iter()
            .map(|band| {
                band.len() * (std::mem::size_of::<u64>() + std::mem::size_of::<Vec<u32>>())
                    + band.values().map(|slots| slots.len() * 4).sum::<usize>()
            })
            .sum();
        signatures + buckets + self.live.len()
    }

    /// Insert a pattern; returns its slot. Equivalent to
    /// [`CandidateIndex::insert_features`] over
    /// [`pattern_features`]`(pattern)`.
    pub fn insert(&mut self, pattern: &TreePattern) -> u32 {
        self.insert_features(&pattern_features(pattern))
    }

    /// Insert a pre-computed feature set; returns its slot.
    pub fn insert_features(&mut self, features: &[u64]) -> u32 {
        let slot = self.live.len() as u32;
        let width = self.config.width();
        let base = self.signatures.len();
        self.signatures.resize(base + width, 0);
        for (k, value) in self.signatures[base..].iter_mut().enumerate() {
            let seed = self.seeds[k];
            let mut minimum = u64::MAX;
            for &feature in features {
                let hashed = mix(feature ^ seed);
                if hashed < minimum {
                    minimum = hashed;
                }
            }
            *value = (minimum >> 32) as u32;
        }
        self.live.push(true);
        self.live_count += 1;
        for band in 0..self.config.bands() {
            let key = self.band_key(slot, band);
            self.buckets[band].entry(key).or_default().push(slot);
        }
        slot
    }

    /// Remove a slot from every bucket; returns false when the slot was
    /// unknown or already removed. Slots are never reused.
    pub fn remove(&mut self, slot: u32) -> bool {
        if !self.contains(slot) {
            return false;
        }
        self.live[slot as usize] = false;
        self.live_count -= 1;
        for band in 0..self.config.bands() {
            let key = self.band_key(slot, band);
            if let Some(slots) = self.buckets[band].get_mut(&key) {
                slots.retain(|&s| s != slot);
                if slots.is_empty() {
                    self.buckets[band].remove(&key);
                }
            }
        }
        true
    }

    /// The signature of `slot` (`width` MinHash values).
    pub fn signature(&self, slot: u32) -> &[u32] {
        let width = self.config.width();
        let base = slot as usize * width;
        &self.signatures[base..base + width]
    }

    /// The bucket key of `slot` in `band`: a hash of the band's row values
    /// (salted with the band number, so equal rows in different bands do not
    /// alias).
    pub fn band_key(&self, slot: u32, band: usize) -> u64 {
        let rows = self.config.rows();
        let signature = self.signature(slot);
        let mut acc = mix(self.config.seed ^ (band as u64).wrapping_mul(0x100_0000_01b3));
        for &value in &signature[band * rows..(band + 1) * rows] {
            acc = mix(acc.wrapping_add(value as u64 + 1));
        }
        acc
    }

    /// Live slots sharing at least one band with `slot`, sorted, excluding
    /// `slot` itself. Cost: the sizes of `slot`'s `b` buckets.
    pub fn candidates(&self, slot: u32) -> Vec<u32> {
        if !self.contains(slot) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for band in 0..self.config.bands() {
            let key = self.band_key(slot, band);
            if let Some(slots) = self.buckets[band].get(&key) {
                out.extend(slots.iter().copied().filter(|&s| s != slot));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Every unordered candidate pair `(a, b)` with `a < b` among live
    /// slots, sorted. Cost: the sum of squared bucket sizes — sub-quadratic
    /// whenever the banding spreads the population.
    pub fn candidate_pairs(&self) -> Vec<(u32, u32)> {
        let mut pairs = Vec::new();
        for band in &self.buckets {
            for slots in band.values() {
                for (i, &a) in slots.iter().enumerate() {
                    for &b in &slots[i + 1..] {
                        pairs.push((a.min(b), a.max(b)));
                    }
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    /// Estimated Jaccard similarity of the two slots' feature sets: the
    /// fraction of agreeing signature positions.
    pub fn estimate(&self, a: u32, b: u32) -> f64 {
        let agreeing = self
            .signature(a)
            .iter()
            .zip(self.signature(b))
            .filter(|(x, y)| x == y)
            .count();
        agreeing as f64 / self.config.width() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> TreePattern {
        TreePattern::parse(text).unwrap()
    }

    fn exact_jaccard(a: &[u64], b: &[u64]) -> f64 {
        let sa: std::collections::HashSet<u64> = a.iter().copied().collect();
        let sb: std::collections::HashSet<u64> = b.iter().copied().collect();
        if sa.is_empty() && sb.is_empty() {
            return 0.0;
        }
        sa.intersection(&sb).count() as f64 / sa.union(&sb).count() as f64
    }

    #[test]
    fn features_are_canonical_and_order_insensitive() {
        let a = pattern_features(&parse("/a[b][c]"));
        let b = pattern_features(&parse("/a[c][b]"));
        assert_eq!(a, b, "sibling order must not change the feature set");
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted and deduplicated");
    }

    #[test]
    fn distinct_structures_have_distinct_features() {
        let a = pattern_features(&parse("/media/CD/title"));
        let b = pattern_features(&parse("/media/book/author"));
        assert_ne!(a, b);
        // The shared `/media` prefix is a shared feature; the rest differ.
        let jaccard = exact_jaccard(&a, &b);
        assert!(jaccard > 0.0 && jaccard < 0.5, "jaccard {jaccard}");
    }

    #[test]
    fn wildcard_descendant_and_tag_labels_are_distinguished() {
        let features: Vec<Vec<u64>> = ["/a/b", "/a/*", "/a//b", "//a/b"]
            .iter()
            .map(|p| pattern_features(&parse(p)))
            .collect();
        for i in 0..features.len() {
            for j in (i + 1)..features.len() {
                assert_ne!(features[i], features[j], "{i} vs {j}");
            }
        }
    }

    #[test]
    fn bare_root_patterns_share_a_sentinel_feature() {
        let features = pattern_features(&TreePattern::new());
        assert_eq!(features.len(), 1);
        assert_eq!(features, pattern_features(&TreePattern::new()));
    }

    #[test]
    fn identical_patterns_are_always_candidates() {
        for config in [
            LshConfig::default(),
            LshConfig {
                bands: 4,
                rows: 4,
                seed: 99,
            },
            LshConfig {
                bands: 1,
                rows: 1,
                seed: 7,
            },
        ] {
            let mut index = CandidateIndex::new(config);
            let a = index.insert(&parse("/media/CD[title][price]"));
            let b = index.insert(&parse("/media/CD[price][title]"));
            assert_eq!(index.estimate(a, b), 1.0);
            assert_eq!(index.candidates(a), vec![b]);
            assert_eq!(index.candidate_pairs(), vec![(a, b)]);
        }
    }

    #[test]
    fn unrelated_patterns_are_rarely_candidates() {
        let mut index = CandidateIndex::default();
        let a = index.insert(&parse("/x/y/z"));
        let b = index.insert(&parse("/q/r/s"));
        assert!(index.estimate(a, b) < 0.2);
        assert!(index.candidates(a).is_empty());
    }

    #[test]
    fn estimate_tracks_exact_feature_jaccard() {
        // Wide signatures make the estimate tight (3/sqrt(width) error).
        let config = LshConfig {
            bands: 128,
            rows: 2,
            seed: 11,
        };
        let mut index = CandidateIndex::new(config);
        let pairs = [
            ("/media/CD/title", "/media/CD/title"),
            ("/media/CD[title][price]", "/media/CD[title]"),
            ("/media/CD/title", "/media/book/author"),
            ("//a/b/c", "//a/b"),
        ];
        for (p, q) in pairs {
            let (pp, qq) = (parse(p), parse(q));
            let truth = exact_jaccard(&pattern_features(&pp), &pattern_features(&qq));
            let (a, b) = (index.insert(&pp), index.insert(&qq));
            let estimate = index.estimate(a, b);
            let bound = 3.0 / (config.width() as f64).sqrt();
            assert!(
                (estimate - truth).abs() <= bound,
                "{p} vs {q}: estimate {estimate}, truth {truth}"
            );
        }
    }

    #[test]
    fn removal_evicts_the_slot_from_candidates_and_pairs() {
        let mut index = CandidateIndex::default();
        let a = index.insert(&parse("/media/CD/title"));
        let b = index.insert(&parse("/media/CD/title"));
        let c = index.insert(&parse("/media/CD/title"));
        assert_eq!(index.candidates(a), vec![b, c]);
        assert!(index.remove(b));
        assert!(!index.remove(b), "double removal is a no-op");
        assert!(!index.contains(b));
        assert_eq!(index.live_count(), 2);
        assert_eq!(index.candidates(a), vec![c]);
        assert_eq!(index.candidate_pairs(), vec![(a, c)]);
        assert_eq!(index.candidates(b), Vec::<u32>::new());
    }

    #[test]
    fn slots_are_dense_and_never_reused() {
        let mut index = CandidateIndex::default();
        assert_eq!(index.insert(&parse("/a")), 0);
        assert_eq!(index.insert(&parse("/b")), 1);
        index.remove(0);
        assert_eq!(index.insert(&parse("/c")), 2);
        assert_eq!(index.len(), 3);
        assert_eq!(index.live_count(), 2);
    }

    #[test]
    fn config_recall_matches_the_banding_formula() {
        let config = LshConfig::default();
        assert_eq!(config.width(), 16);
        assert!((config.recall(1.0) - 1.0).abs() < 1e-12);
        assert!(config.recall(0.0) < 1e-12);
        let manual = 1.0 - (1.0 - 0.8f64.powi(2)).powi(8);
        assert!((config.recall(0.8) - manual).abs() < 1e-12);
        // Zero bands/rows are clamped, not rejected.
        let degenerate = LshConfig {
            bands: 0,
            rows: 0,
            seed: 0,
        };
        assert_eq!(degenerate.width(), 1);
    }

    #[test]
    fn memory_stays_bounded_by_width_per_pattern() {
        let mut index = CandidateIndex::default();
        for i in 0..500 {
            index.insert(&parse(&format!("/a/b{}", i % 25)));
        }
        let bytes = index.memory_bytes();
        // Signature arena alone is width * 4 bytes per slot; buckets add a
        // bounded overhead per live slot.
        assert!(bytes >= 500 * 16 * 4);
        assert!(
            bytes < 500 * 16 * 4 * 10,
            "bucket overhead blew up: {bytes}"
        );
    }
}
