//! Sharded, streaming synopsis construction.
//!
//! [`build_par`] is the build-side twin of
//! [`SimilarityEngine::similarity_matrix_par`](crate::SimilarityEngine::similarity_matrix_par):
//! where PR 3 sharded *evaluation* over worker threads, this module shards
//! *construction*. Documents are pulled from a [`DocumentStream`] in bounded
//! batches (so the corpus is never materialised), each batch is split into
//! contiguous chunks that scoped workers parse and fold into per-shard
//! partial synopses, and the partials are combined with
//! [`Synopsis::merge`]. Because every sampling decision in the synopsis is a
//! deterministic function of the synopsis seed and the document's global
//! stream position, the merged result is *estimate-identical* to a
//! sequential [`Synopsis::from_documents`] build — for any shard count and
//! any batch size.

use tps_synopsis::{DocId, IngestTarget, Synopsis, SynopsisConfig};
use tps_xml::stream::{DocumentStream, StreamError, StreamItem};

use crate::par;

/// Number of documents pulled per worker per batch. Batches hold at most
/// `shards * BATCH_PER_SHARD` items, bounding memory independently of the
/// stream length.
const BATCH_PER_SHARD: usize = 256;

/// Build a synopsis from a document stream, fanning parsing and observation
/// out over up to `shards` scoped worker threads.
///
/// `shards <= 1` runs fully inline (no threads are spawned). The result is
/// estimate-identical to the sequential build — every node carries the same
/// matching-set value as `Synopsis::from_documents` over the same documents
/// — so callers can pick the shard count purely by hardware
/// (`tps_core::par::available_workers()` is the usual choice).
///
/// On a parse or read error the build stops and the error is returned;
/// documents before the failing one may already have been observed.
pub fn build_par<S: DocumentStream>(
    config: SynopsisConfig,
    mut stream: S,
    shards: usize,
) -> Result<Synopsis, StreamError> {
    let shards = shards.clamp(1, par::MAX_WORKERS);
    let mut synopsis = Synopsis::new(config);
    if shards == 1 {
        // Single shard: observe straight into the accumulator. The batched
        // path below would buffer every item, fold it into a fresh partial
        // synopsis and merge that partial back — pure constant overhead when
        // there is no parallelism to pay for (it made `build_par/1` ~75%
        // slower than `from_documents`).
        let mut id: u64 = 0;
        while let Some(item) = stream.next_item() {
            observe_item(&mut synopsis, &item?, id)?;
            id += 1;
        }
        return Ok(synopsis);
    }
    let mut batch: Vec<StreamItem> = Vec::new();
    let mut base: u64 = 0;
    loop {
        let pulled = stream.next_batch(shards * BATCH_PER_SHARD, &mut batch)?;
        if pulled == 0 {
            break;
        }
        let partials: Vec<Result<Synopsis, StreamError>> =
            par::map_chunks(&batch, shards, |offset, chunk| {
                observe_chunk(config, base + offset as u64, chunk)
            });
        for partial in partials {
            synopsis.merge(&partial?);
        }
        base += pulled as u64;
    }
    Ok(synopsis)
}

/// Parse (when necessary) and observe one contiguous chunk of stream items
/// into a fresh partial synopsis, assigning global stream positions
/// starting at `base`.
fn observe_chunk(
    config: SynopsisConfig,
    base: u64,
    chunk: &[StreamItem],
) -> Result<Synopsis, StreamError> {
    let mut shard = Synopsis::new(config);
    for (i, item) in chunk.iter().enumerate() {
        observe_item(&mut shard, item, base + i as u64)?;
    }
    Ok(shard)
}

/// Fold one stream item into a synopsis under its global stream position.
/// Raw items — text or bytes — go through the zero-copy scanner
/// ([`IngestTarget::ingest_bytes_as`]): the worker never builds a tree for
/// them.
fn observe_item(synopsis: &mut Synopsis, item: &StreamItem, id: u64) -> Result<(), StreamError> {
    let raw: &[u8] = match item {
        StreamItem::Tree(tree) => {
            synopsis.ingest_tree_as(tree, DocId(id));
            return Ok(());
        }
        StreamItem::Raw(text) => text.as_bytes(),
        StreamItem::RawBytes(bytes) => bytes,
    };
    synopsis
        .ingest_bytes_as(raw, DocId(id))
        .map_err(|error| StreamError::Parse {
            document: id,
            error,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_xml::stream::{cloned_trees, LineStream};
    use tps_xml::XmlTree;

    fn corpus(n: usize) -> Vec<XmlTree> {
        (0..n)
            .map(|i| {
                let text = format!("<a><b{}><c/></b{}><d{}/></a>", i % 5, i % 5, i % 3);
                XmlTree::parse(&text).unwrap()
            })
            .collect()
    }

    fn canonical(s: &Synopsis) -> Vec<(Vec<String>, f64)> {
        fn walk(
            s: &Synopsis,
            id: tps_synopsis::SynopsisNodeId,
            path: &mut Vec<String>,
            out: &mut Vec<(Vec<String>, f64)>,
        ) {
            path.push(s.label(id).to_string());
            out.push((path.clone(), s.matching_value(id).count_units()));
            for &child in s.children(id) {
                walk(s, child, path, out);
            }
            path.pop();
        }
        let mut out = Vec::new();
        walk(s, s.root(), &mut Vec::new(), &mut out);
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    #[test]
    fn build_par_matches_from_documents_for_every_shard_count() {
        let docs = corpus(700);
        for config in [
            SynopsisConfig::counters(),
            SynopsisConfig::sets(16),
            SynopsisConfig::hashes(16),
        ] {
            let sequential = Synopsis::from_documents(config, &docs);
            for shards in [1usize, 2, 8] {
                let built = build_par(config, cloned_trees(&docs), shards).unwrap();
                assert_eq!(built.document_count(), sequential.document_count());
                assert_eq!(
                    canonical(&built),
                    canonical(&sequential),
                    "{:?} with {shards} shards",
                    config.kind
                );
            }
        }
    }

    #[test]
    fn build_par_spans_multiple_batches() {
        // 700 documents with 2 shards = 512-item batches: the loop runs
        // more than once, exercising the cross-batch id offsets.
        let docs = corpus(700);
        let sequential = Synopsis::from_documents(SynopsisConfig::sets(8), &docs);
        let built = build_par(SynopsisConfig::sets(8), cloned_trees(&docs), 2).unwrap();
        assert_eq!(canonical(&built), canonical(&sequential));
    }

    #[test]
    fn build_par_parses_raw_text_on_workers() {
        let docs = corpus(60);
        let text: String = docs.iter().map(|d| d.to_xml() + "\n").collect();
        let sequential = Synopsis::from_documents(SynopsisConfig::hashes(32), &docs);
        let built = build_par(
            SynopsisConfig::hashes(32),
            LineStream::new(text.as_bytes()),
            4,
        )
        .unwrap();
        assert_eq!(canonical(&built), canonical(&sequential));
    }

    #[test]
    fn build_par_surfaces_parse_errors_with_the_global_position() {
        let err = build_par(
            SynopsisConfig::counters(),
            LineStream::new("<a/>\n<b/>\n<broken\n".as_bytes()),
            2,
        )
        .unwrap_err();
        match err {
            StreamError::Parse { document, .. } => assert_eq!(document, 2),
            other => panic!("expected a parse error, got {other}"),
        }
    }

    #[test]
    fn build_par_of_an_empty_stream_is_an_empty_synopsis() {
        let built = build_par(SynopsisConfig::counters(), cloned_trees(&[]), 4).unwrap();
        assert_eq!(built.document_count(), 0);
        assert_eq!(built.node_count(), 1);
    }
}
