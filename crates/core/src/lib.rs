//! Tree-pattern selectivity and similarity estimation — the paper's primary
//! contribution (Sections 4 and 2).
//!
//! * [`SelectivityEstimator`] — the recursive `SEL` algorithm (Algorithm 1/2)
//!   evaluated over a [`tps_synopsis::Synopsis`], supporting all three
//!   matching-set representations.
//! * [`ProximityMetric`] — the `M1`, `M2`, `M3` proximity metrics of
//!   Section 4.
//! * [`SimilarityEstimator`] — the streaming facade: observe documents,
//!   query similarities.
//! * [`ExactEvaluator`] — ground-truth selectivities/similarities over a
//!   stored document collection (used by the evaluation harness and by tests).
//!
//! # Example
//!
//! ```
//! use tps_core::{ExactEvaluator, ProximityMetric, SelectivityEstimator};
//! use tps_pattern::TreePattern;
//! use tps_synopsis::{Synopsis, SynopsisConfig};
//! use tps_xml::XmlTree;
//!
//! let docs: Vec<XmlTree> = ["<a><b/><c/></a>", "<a><b/></a>", "<a><c/></a>"]
//!     .iter()
//!     .map(|s| XmlTree::parse(s).unwrap())
//!     .collect();
//!
//! let mut synopsis = Synopsis::from_documents(SynopsisConfig::hashes(64), &docs);
//! synopsis.prepare();
//! let estimator = SelectivityEstimator::new(&synopsis);
//! let p = TreePattern::parse("/a/b").unwrap();
//!
//! // The estimate agrees with the exact evaluator on this tiny stream.
//! let exact = ExactEvaluator::new(docs.clone());
//! assert!((estimator.selectivity(&p) - exact.selectivity(&p)).abs() < 1e-9);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod estimator;
pub mod exact;
pub mod metrics;
pub mod selectivity;

pub use estimator::SimilarityEstimator;
pub use exact::ExactEvaluator;
pub use metrics::ProximityMetric;
pub use selectivity::SelectivityEstimator;
