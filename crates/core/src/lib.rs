//! Tree-pattern selectivity and similarity estimation — the paper's primary
//! contribution (Sections 4 and 2).
//!
//! * [`SimilarityEngine`] — the batch-first evaluation engine: register a
//!   subscription workload once (interned, pre-compiled [`PatternId`]
//!   handles), then query selectivities, similarities and whole
//!   [`SimMatrix`] similarity matrices through epoch-tagged caches that are
//!   invalidated exactly when the synopsis changes. The engine is
//!   `Send + Sync`; [`SimilarityEngine::similarity_matrix_par`] fans the
//!   matrix evaluation out over scoped worker threads (see [`par`]).
//! * [`SelectivityEstimator`] — the recursive `SEL` algorithm (Algorithm 1/2)
//!   evaluated per call over a [`tps_synopsis::Synopsis`], supporting all
//!   three matching-set representations.
//! * [`ProximityMetric`] — the `M1`, `M2`, `M3` proximity metrics of
//!   Section 4.
//! * [`ExactEvaluator`] — ground-truth selectivities/similarities over a
//!   stored document collection (used by the evaluation harness and by tests).
//! * [`build_par`] — sharded, streaming synopsis construction: chunks of a
//!   pull-based [`DocumentStream`](tps_xml::stream::DocumentStream) are
//!   parsed and observed on scoped workers and the per-shard partial
//!   synopses [`merge`](tps_synopsis::Synopsis::merge)d, estimate-identical
//!   to the sequential build (see [`build`]).
//! * [`CandidateIndex`] / [`LshConfig`] — the sub-quadratic first pass: a
//!   banded MinHash index over structural pattern signatures that narrows
//!   all-pairs similarity work to candidate pairs
//!   ([`SimilarityEngine::similarity_candidates`]).
//!
//! The deprecated `SimilarityEstimator` shim has been removed; the engine is
//! the only evaluation surface. See the `README` migration note — in short,
//! `register` patterns once and query through handles.
//!
//! # Example
//!
//! ```
//! use tps_core::{ExactEvaluator, ProximityMetric, SimilarityEngine};
//! use tps_pattern::TreePattern;
//! use tps_synopsis::{ingest, Ingest, MatchingSetKind};
//! use tps_xml::XmlTree;
//!
//! let docs: Vec<XmlTree> = ["<a><b/><c/></a>", "<a><b/></a>", "<a><c/></a>"]
//!     .iter()
//!     .map(|s| XmlTree::parse(s).unwrap())
//!     .collect();
//!
//! let mut engine = SimilarityEngine::builder()
//!     .matching_sets(MatchingSetKind::hashes(64))
//!     .metric(ProximityMetric::M3)
//!     .build();
//! engine.ingest(ingest::trees(&docs)).unwrap();
//! let p = engine.register(&TreePattern::parse("/a/b").unwrap());
//!
//! // The estimate agrees with the exact evaluator on this tiny stream.
//! let exact = ExactEvaluator::new(docs.clone());
//! let q = TreePattern::parse("/a/b").unwrap();
//! assert!((engine.selectivity(p) - exact.selectivity(&q)).abs() < 1e-9);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod engine;
mod eval;
pub mod exact;
pub mod index;
pub mod metrics;
pub mod par;
pub mod selectivity;

pub use build::build_par;
pub use engine::{
    EngineCacheStats, PatternId, SharedContainmentOracle, SimMatrix, SimilarityEngine,
    SimilarityEngineBuilder,
};
pub use exact::ExactEvaluator;
pub use index::{pattern_features, CandidateIndex, LshConfig};
pub use metrics::ProximityMetric;
pub use selectivity::SelectivityEstimator;
