//! The batch-first similarity engine.
//!
//! The paper's whole point is *amortisation*: one compact synopsis answers
//! selectivity and similarity queries for thousands of subscriptions.
//! [`SimilarityEngine`] is the API shape that exploits it. Patterns are
//! registered once ([`SimilarityEngine::register`]) and handed back as cheap
//! [`PatternId`] handles — interned (structurally equal patterns share one
//! handle), deduplicated and pre-compiled ([`tps_pattern::CompiledPattern`])
//! into an evaluation-friendly form. All queries go through handles, and the
//! engine keeps three layers of caching behind the synopsis *epoch counter*
//! (bumped by [`Synopsis`] on every `observe`/prune mutation, so cached
//! results are invalidated exactly when the synopsis changes):
//!
//! 1. an engine-side materialisation of the per-node full matching sets
//!    (subsuming the old `SynopsisConfig`-then-`prepare()` two-step),
//! 2. per-pattern selectivities and per-pair joint selectivities,
//! 3. a `SEL` memo shared **across** patterns, keyed by
//!    `(synopsis node, canonical pattern subtree)` — common subscription
//!    fragments, and the operand copies inside conjunction patterns, hit the
//!    same entries.
//!
//! The batched entry points [`SimilarityEngine::selectivities`] and
//! [`SimilarityEngine::similarity_matrix`] evaluate a whole workload in one
//! pass over those caches: an `n × n` similarity matrix costs `n` marginal
//! evaluations plus one joint evaluation per unordered pair, instead of the
//! `2·n²` marginal and `n²` joint evaluations of per-call estimation.
//!
//! The engine is `Send + Sync` — the immutable core (synopsis, compiled
//! patterns) sits behind an [`Arc`], the caches behind a [`Mutex`] — and
//! [`SimilarityEngine::similarity_matrix_par`] splits the matrix evaluation
//! across scoped worker threads with per-worker memo shards that are merged
//! back afterwards, bit-identical to the sequential result.
//!
//! # Example
//!
//! ```
//! use tps_core::{ProximityMetric, SimilarityEngine};
//! use tps_pattern::TreePattern;
//! use tps_synopsis::{ingest, Ingest, MatchingSetKind};
//!
//! let mut engine = SimilarityEngine::builder()
//!     .matching_sets(MatchingSetKind::hashes(64))
//!     .metric(ProximityMetric::M3)
//!     .build();
//! for text in [
//!     "<media><CD><composer><last>Mozart</last></composer></CD></media>",
//!     "<media><book><author><last>Austen</last></author></book></media>",
//! ] {
//!     // Raw text folds in through the zero-copy scanner — no tree built.
//!     engine.ingest(ingest::text(text)).unwrap();
//! }
//! let p = engine.register(&TreePattern::parse("//CD").unwrap());
//! let q = engine.register(&TreePattern::parse("//composer/last").unwrap());
//! let sim = engine.similarity(p, q, ProximityMetric::M3);
//! assert!(sim > 0.99, "both patterns match exactly the first document");
//!
//! // Batched: one matrix call shares every marginal and joint evaluation.
//! let matrix = engine.similarity_matrix(&[p, q], ProximityMetric::M3);
//! assert_eq!(matrix.get(0, 1), sim);
//! ```

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use tps_pattern::{containment, ops, CompiledPattern, SubtreeInterner, TreePattern};
use tps_synopsis::{
    DocId, IngestTarget, PruneConfig, PruneReport, SummaryValue, Synopsis, SynopsisConfig,
    SynopsisSize,
};
use tps_xml::XmlTree;

use crate::eval::{SelEvaluator, SelMemo, ValueSource};
use crate::index::{CandidateIndex, LshConfig};
use crate::metrics::ProximityMetric;
use crate::par;

/// Handle of a pattern registered with a [`SimilarityEngine`].
///
/// Handles are engine-specific: using a handle obtained from one engine on
/// another is a logic error (and panics if the index is out of range).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatternId(u32);

impl PatternId {
    /// Dense registration index of the pattern.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A shareable containment decision procedure consulted during
/// analyze-on-register, in addition to the syntactic homomorphism test.
/// Same contract as [`tps_pattern::containment::ContainmentOracle`], with
/// the `Send + Sync` bounds the engine needs.
pub type SharedContainmentOracle =
    Arc<dyn Fn(&TreePattern, &TreePattern) -> Option<bool> + Send + Sync>;

/// How (and whether) registration statically analyses each new pattern for
/// redundancy against the already-registered workload.
#[derive(Clone, Default)]
enum RegisterAnalysis {
    /// No analysis: every registered pattern is active (the default).
    #[default]
    Off,
    /// Homomorphism-based containment only — sound on *every* document.
    Syntactic,
    /// Syntactic containment extended by an external oracle (typically a
    /// DTD-aware refinement check) — sound on documents of the oracle's
    /// document type.
    Oracle(SharedContainmentOracle),
}

impl std::fmt::Debug for RegisterAnalysis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegisterAnalysis::Off => f.write_str("Off"),
            RegisterAnalysis::Syntactic => f.write_str("Syntactic"),
            RegisterAnalysis::Oracle(_) => f.write_str("Oracle(..)"),
        }
    }
}

impl RegisterAnalysis {
    fn enabled(&self) -> bool {
        !matches!(self, RegisterAnalysis::Off)
    }

    /// Oracle-extended containment: is `q`'s match set included in `p`'s?
    fn covers(&self, p: &TreePattern, q: &TreePattern) -> bool {
        match self {
            RegisterAnalysis::Off => false,
            RegisterAnalysis::Syntactic => containment::contains(p, q),
            RegisterAnalysis::Oracle(oracle) => {
                containment::contains_with(p, q, &|a, b| oracle(a, b))
            }
        }
    }
}

/// Builder for [`SimilarityEngine`] — subsumes the old
/// `SynopsisConfig`-then-`prepare()` two-step.
///
/// Defaults: per-node hash samples of capacity 256 (the paper's
/// best-performing representation), the default sampling seed, the `M3`
/// proximity metric, and no analyze-on-register.
#[derive(Debug, Clone)]
pub struct SimilarityEngineBuilder {
    config: SynopsisConfig,
    seed_override: Option<u64>,
    metric: ProximityMetric,
    analysis: RegisterAnalysis,
}

impl SimilarityEngineBuilder {
    /// Choose the matching-set representation (accepts a
    /// [`tps_synopsis::MatchingSetKind`] or a full [`SynopsisConfig`],
    /// whose seed — the default one for a bare kind — is honoured unless
    /// [`Self::seed`] is also called).
    pub fn matching_sets(mut self, config: impl Into<SynopsisConfig>) -> Self {
        self.config = config.into();
        self
    }

    /// Override the sampling seed. Takes precedence over the seed carried by
    /// a [`SynopsisConfig`] passed to [`Self::matching_sets`], regardless of
    /// call order.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed_override = Some(seed);
        self
    }

    /// Choose the default proximity metric used by the `_default` query
    /// variants.
    pub fn metric(mut self, metric: ProximityMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Statically analyse each newly registered pattern against the existing
    /// workload using the syntactic containment test, mapping redundant
    /// patterns to a covering [`PatternId`]
    /// (see [`SimilarityEngine::covering`]).
    pub fn analyze_on_register(mut self, enabled: bool) -> Self {
        self.analysis = if enabled {
            RegisterAnalysis::Syntactic
        } else {
            RegisterAnalysis::Off
        };
        self
    }

    /// Like [`Self::analyze_on_register`], with containment extended by an
    /// external oracle (typically a DTD-aware refinement check built from
    /// `tps_dtd::PatternAnalyzer`). Implies analyze-on-register. The
    /// coverage map is then sound only for documents conforming to whatever
    /// document type the oracle reasons about.
    pub fn redundancy_oracle(mut self, oracle: SharedContainmentOracle) -> Self {
        self.analysis = RegisterAnalysis::Oracle(oracle);
        self
    }

    /// Build the engine with an empty synopsis.
    pub fn build(self) -> SimilarityEngine {
        let mut config = self.config;
        if let Some(seed) = self.seed_override {
            config.seed = seed;
        }
        SimilarityEngine {
            core: Arc::new(EngineCore {
                synopsis: Synopsis::new(config),
                patterns: Vec::new(),
                by_key: HashMap::new(),
                covered_by: Vec::new(),
            }),
            default_metric: self.metric,
            analysis: self.analysis,
            state: Mutex::new(EngineState::new()),
        }
    }
}

/// Counters describing how well the engine's caches are doing; useful for
/// tests and performance reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCacheStats {
    /// Synopsis epoch the current caches were built at.
    pub epoch: u64,
    /// Marginal selectivity queries answered from the cache.
    pub marginal_hits: u64,
    /// Marginal selectivity queries that ran `SEL`.
    pub marginal_misses: u64,
    /// Joint selectivity queries answered from the pair cache.
    pub joint_hits: u64,
    /// Joint selectivity queries that evaluated a conjunction.
    pub joint_misses: u64,
    /// Entries currently in the shared `SEL` memo.
    pub memo_entries: usize,
    /// Distinct canonical pattern subtrees interned so far.
    pub interned_subtrees: usize,
}

/// The immutable heart of an engine: the synopsis plus the registered,
/// compiled workload.
///
/// Shared behind an [`Arc`]: queries (including the scoped workers of
/// [`SimilarityEngine::similarity_matrix_par`]) only ever read it, while
/// maintenance methods take `&mut SimilarityEngine` and mutate it through
/// [`Arc::make_mut`] — so cloning an engine shares the core
/// copy-on-write.
#[derive(Debug, Clone)]
struct EngineCore {
    synopsis: Synopsis,
    patterns: Vec<CompiledPattern>,
    by_key: HashMap<Box<str>, PatternId>,
    /// Per pattern: the handle of another registered pattern whose match set
    /// provably includes this one's (`None` for active patterns). Only
    /// populated when analyze-on-register is enabled; parallel to
    /// `patterns`.
    covered_by: Vec<Option<PatternId>>,
}

/// One evaluation through the shared caches: clear the per-evaluation
/// scratch memo, run `SEL` with `shared` consulted read-only, and return the
/// clamped selectivity. The pure building block behind both the sequential
/// cache methods and the per-worker shards of the parallel matrix.
fn eval_selectivity(
    synopsis: &Synopsis,
    full: &[SummaryValue],
    shared: &SelMemo,
    scratch: &mut SelMemo,
    compiled: &CompiledPattern,
) -> f64 {
    scratch.clear();
    SelEvaluator {
        synopsis,
        source: ValueSource::Cached(full),
        shared,
        local: scratch,
    }
    .selectivity(compiled)
}

/// The one matrix-assembly pass behind both
/// [`SimilarityEngine::similarity_matrix`] and
/// [`SimilarityEngine::similarity_matrix_par`]: unit diagonal, `1.0` for
/// duplicate handles, marginals/joints through the cache state (computed on
/// demand when cold, pure hits when a parallel wave warmed them), and the
/// mirror entry recomputed for asymmetric metrics. A single implementation
/// is what keeps the two entry points bit-identical by construction.
fn assemble_matrix(
    st: &mut EngineState,
    synopsis: &Synopsis,
    patterns: &[CompiledPattern],
    ids: &[PatternId],
    metric: ProximityMetric,
) -> SimMatrix {
    let n = ids.len();
    let mut values = vec![0.0; n * n];
    for i in 0..n {
        values[i * n + i] = 1.0;
    }
    for i in 0..n {
        for j in (i + 1)..n {
            let (p, q) = (ids[i], ids[j]);
            if p == q {
                values[i * n + j] = 1.0;
                values[j * n + i] = 1.0;
                continue;
            }
            let p_p = st.marginal(synopsis, patterns, p);
            let p_q = st.marginal(synopsis, patterns, q);
            let p_and = st.joint(synopsis, patterns, p, q);
            let forward = metric.compute(p_p, p_q, p_and);
            values[i * n + j] = forward;
            values[j * n + i] = if metric.is_symmetric() {
                forward
            } else {
                metric.compute(p_q, p_p, p_and)
            };
        }
    }
    SimMatrix {
        len: n,
        metric,
        values,
    }
}

/// Promote the *top-level* `SEL` entries of an evaluated pattern — `(root
/// child of the synopsis, root branch of the pattern)` — from the
/// per-evaluation scratch memo into a persistent memo. `or_insert`
/// semantics: an entry already present (necessarily the same value, `SEL`
/// is a pure function) is kept, so promotion order never matters.
fn promote_top_level(
    synopsis: &Synopsis,
    compiled: &CompiledPattern,
    scratch: &SelMemo,
    memo: &mut SelMemo,
) {
    let pattern = compiled.pattern();
    for &u in pattern.children(pattern.root()) {
        let key_u = compiled.node_key(u);
        for &v in synopsis.children(synopsis.root()) {
            let key = (v, key_u);
            if let Some(entry) = scratch.get(&key) {
                memo.entry(key).or_insert_with(|| entry.clone());
            }
        }
    }
}

#[derive(Debug, Clone)]
struct EngineState {
    /// Synopsis epoch the value caches below were computed at.
    epoch: u64,
    /// Subtree-key interner (survives epoch bumps: keys are pattern-side).
    interner: SubtreeInterner,
    /// Engine-side materialisation of the full matching sets, built lazily.
    full: Option<Vec<SummaryValue>>,
    /// Persistent cross-pattern `SEL` memo, keyed by `(synopsis node,
    /// pattern subtree)`. Holds only promoted *top-level* entries (root
    /// branches at the synopsis root's children) — enough to make
    /// conjunction evaluation a handful of lookups, while staying a few
    /// entries per pattern.
    memo: SelMemo,
    /// Reusable per-evaluation memo (cleared between evaluations).
    scratch: SelMemo,
    /// Cached marginal selectivity per registered pattern.
    marginals: Vec<Option<f64>>,
    /// Cached joint selectivity per unordered pattern pair.
    joints: HashMap<(u32, u32), f64>,
    marginal_hits: u64,
    marginal_misses: u64,
    joint_hits: u64,
    joint_misses: u64,
}

impl EngineState {
    fn new() -> Self {
        Self {
            epoch: 0,
            interner: SubtreeInterner::new(),
            full: None,
            memo: SelMemo::new(),
            scratch: SelMemo::new(),
            marginals: Vec::new(),
            joints: HashMap::new(),
            marginal_hits: 0,
            marginal_misses: 0,
            joint_hits: 0,
            joint_misses: 0,
        }
    }

    /// Drop every synopsis-dependent cache (the interner survives — subtree
    /// keys do not depend on the synopsis). Hit/miss counters restart, so
    /// [`EngineCacheStats`] always describes the current epoch's caches.
    fn invalidate(&mut self, epoch: u64, pattern_count: usize) {
        self.epoch = epoch;
        self.full = None;
        self.memo.clear();
        self.scratch.clear();
        self.marginals = vec![None; pattern_count];
        self.joints.clear();
        self.marginal_hits = 0;
        self.marginal_misses = 0;
        self.joint_hits = 0;
        self.joint_misses = 0;
    }

    fn ensure_full<'a>(
        full: &'a mut Option<Vec<SummaryValue>>,
        synopsis: &Synopsis,
    ) -> &'a [SummaryValue] {
        full.get_or_insert_with(|| synopsis.full_values())
    }

    /// Selectivity of a compiled pattern through the shared caches. After
    /// the evaluation, the pattern's top-level `SEL` entries are promoted
    /// into the persistent cross-pattern memo, so later conjunctions over
    /// this pattern resolve without recursing into the synopsis.
    fn selectivity(&mut self, synopsis: &Synopsis, compiled: &CompiledPattern) -> f64 {
        let full = Self::ensure_full(&mut self.full, synopsis);
        let value = eval_selectivity(synopsis, full, &self.memo, &mut self.scratch, compiled);
        promote_top_level(synopsis, compiled, &self.scratch, &mut self.memo);
        value
    }

    /// Cached marginal selectivity of a registered pattern.
    fn marginal(
        &mut self,
        synopsis: &Synopsis,
        patterns: &[CompiledPattern],
        id: PatternId,
    ) -> f64 {
        if let Some(cached) = self.marginals[id.index()] {
            self.marginal_hits += 1;
            return cached;
        }
        self.marginal_misses += 1;
        let value = self.selectivity(synopsis, &patterns[id.index()]);
        self.marginals[id.index()] = Some(value);
        value
    }

    /// Cached joint selectivity of an unordered pair of registered patterns.
    fn joint(
        &mut self,
        synopsis: &Synopsis,
        patterns: &[CompiledPattern],
        p: PatternId,
        q: PatternId,
    ) -> f64 {
        if p == q {
            return self.marginal(synopsis, patterns, p);
        }
        let key = (p.0.min(q.0), p.0.max(q.0));
        if let Some(&cached) = self.joints.get(&key) {
            self.joint_hits += 1;
            return cached;
        }
        self.joint_misses += 1;
        let conjunction =
            ops::conjunction(patterns[p.index()].pattern(), patterns[q.index()].pattern());
        let compiled = CompiledPattern::compile(&conjunction, &mut self.interner);
        let value = self.selectivity(synopsis, &compiled);
        self.joints.insert(key, value);
        value
    }

    /// Similarity of a registered pair under `metric`.
    fn similarity(
        &mut self,
        synopsis: &Synopsis,
        patterns: &[CompiledPattern],
        p: PatternId,
        q: PatternId,
        metric: ProximityMetric,
    ) -> f64 {
        if p == q {
            return 1.0;
        }
        let p_p = self.marginal(synopsis, patterns, p);
        let p_q = self.marginal(synopsis, patterns, q);
        let p_and = self.joint(synopsis, patterns, p, q);
        metric.compute(p_p, p_q, p_and)
    }
}

/// A dense `n × n` matrix of pairwise similarities produced by
/// [`SimilarityEngine::similarity_matrix`].
///
/// Entry `(i, j)` is the similarity of `ids[i]` to `ids[j]` under the
/// matrix's metric — bit-identical to the corresponding pairwise
/// [`SimilarityEngine::similarity`] call. The diagonal is `1.0`.
#[derive(Debug, Clone, PartialEq)]
pub struct SimMatrix {
    len: usize,
    metric: ProximityMetric,
    values: Vec<f64>,
}

impl SimMatrix {
    /// Number of patterns the matrix covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The proximity metric the matrix was built with.
    pub fn metric(&self) -> ProximityMetric {
        self.metric
    }

    /// The similarity of pair `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.len && j < self.len, "index out of bounds");
        self.values[i * self.len + j]
    }

    /// One row of the matrix.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.len, "index out of bounds");
        &self.values[i * self.len..(i + 1) * self.len]
    }

    /// The backing row-major value slice (`len × len` entries).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consume the matrix into its row-major values.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }
}

/// Batch-first streaming similarity engine — see the [module docs](self).
///
/// Maintenance (observing documents, pruning, registering patterns) takes
/// `&mut self`; queries take `&self` and share interior caches, so an engine
/// can be handed to read-only consumers (clustering, routing, experiment
/// harnesses) after its workload is registered.
///
/// The engine is `Send + Sync`: the immutable core (synopsis, compiled
/// patterns) lives behind an [`Arc`] and the cache state behind a
/// [`Mutex`], so `&SimilarityEngine` can be shared across threads directly.
/// Concurrent queries serialise on the cache lock;
/// [`SimilarityEngine::similarity_matrix_par`] is the entry point that
/// genuinely fans evaluation work out over multiple cores. Cloning shares
/// the core copy-on-write and snapshots the caches.
#[derive(Debug)]
pub struct SimilarityEngine {
    core: Arc<EngineCore>,
    default_metric: ProximityMetric,
    analysis: RegisterAnalysis,
    state: Mutex<EngineState>,
}

/// The engine ingests documents exactly like its synopsis: every source
/// accepted by [`Ingest`](tps_synopsis::Ingest) — trees, skeletons, raw bytes (the zero-copy
/// scanner path), pull-based streams — folds into the engine's synopsis,
/// bumping its epoch so query caches invalidate as usual. Copy-on-write
/// applies: ingesting into a cloned engine first unshares the core.
impl IngestTarget for SimilarityEngine {
    fn next_doc_id(&self) -> DocId {
        self.core.synopsis.next_doc_id()
    }

    fn ingest_tree_as(&mut self, document: &XmlTree, doc: DocId) {
        self.core_mut().synopsis.ingest_tree_as(document, doc);
    }

    fn ingest_skeleton_as(&mut self, skeleton: &XmlTree, doc: DocId) {
        self.core_mut().synopsis.ingest_skeleton_as(skeleton, doc);
    }

    fn ingest_bytes_as(&mut self, bytes: &[u8], doc: DocId) -> Result<(), tps_xml::XmlError> {
        self.core_mut().synopsis.ingest_bytes_as(bytes, doc)
    }
}

impl Clone for SimilarityEngine {
    fn clone(&self) -> Self {
        Self {
            core: Arc::clone(&self.core),
            default_metric: self.default_metric,
            analysis: self.analysis.clone(),
            state: Mutex::new(
                self.state
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone(),
            ),
        }
    }
}

impl SimilarityEngine {
    /// Start building an engine.
    pub fn builder() -> SimilarityEngineBuilder {
        SimilarityEngineBuilder {
            config: SynopsisConfig::hashes(256),
            seed_override: None,
            metric: ProximityMetric::M3,
            analysis: RegisterAnalysis::Off,
        }
    }

    /// An engine with an empty synopsis of the given configuration and the
    /// default `M3` metric.
    pub fn new(config: SynopsisConfig) -> Self {
        Self::builder().matching_sets(config).build()
    }

    /// Wrap an existing synopsis (keeps its observed stream).
    pub fn from_synopsis(synopsis: Synopsis) -> Self {
        Self {
            core: Arc::new(EngineCore {
                synopsis,
                patterns: Vec::new(),
                by_key: HashMap::new(),
                covered_by: Vec::new(),
            }),
            default_metric: ProximityMetric::M3,
            analysis: RegisterAnalysis::Off,
            state: Mutex::new(EngineState::new()),
        }
    }

    /// Exclusive access to the shared core, cloning it first if another
    /// engine clone still holds a reference (copy-on-write).
    fn core_mut(&mut self) -> &mut EngineCore {
        Arc::make_mut(&mut self.core)
    }

    /// Exclusive access to the cache state through `&mut self` — no lock
    /// traffic, and a poisoned mutex (a panicking query thread) is recovered
    /// because the state is only ever transitioned between consistent
    /// snapshots.
    fn state_exclusive(&mut self) -> &mut EngineState {
        self.state.get_mut().unwrap_or_else(PoisonError::into_inner)
    }

    // ------------------------------------------------------------------
    // Stream maintenance
    // ------------------------------------------------------------------

    /// Build an engine by fanning a document stream's parsing and
    /// observation over up to `shards` worker threads
    /// ([`crate::build_par`]); estimate-identical to observing the stream
    /// sequentially, for any shard count.
    pub fn from_stream_par<S: tps_xml::stream::DocumentStream>(
        config: SynopsisConfig,
        stream: S,
        shards: usize,
    ) -> Result<Self, tps_xml::stream::StreamError> {
        Ok(Self::from_synopsis(crate::build_par(
            config, stream, shards,
        )?))
    }

    /// Number of documents observed so far.
    pub fn document_count(&self) -> u64 {
        self.core.synopsis.document_count()
    }

    /// Read access to the synopsis.
    pub fn synopsis(&self) -> &Synopsis {
        &self.core.synopsis
    }

    /// Mutable access to the synopsis (e.g. for custom pruning schedules).
    ///
    /// Every synopsis mutation bumps its epoch, which invalidates the
    /// engine's caches on the next query; handing out the reference also
    /// advances the epoch defensively, so even a mutation the synopsis
    /// cannot observe invalidates them. One caveat: if you *replace* the
    /// synopsis wholesale (`std::mem::replace`/`swap` through this
    /// reference), the incoming synopsis carries its own counter — call
    /// [`Synopsis::mark_dirty`] on it afterwards to rule out an accidental
    /// epoch collision with the cached tag.
    pub fn synopsis_mut(&mut self) -> &mut Synopsis {
        let core = self.core_mut();
        core.synopsis.mark_dirty();
        &mut core.synopsis
    }

    /// Current synopsis size decomposition.
    pub fn size(&self) -> SynopsisSize {
        self.core.synopsis.size()
    }

    /// Prune the synopsis to `alpha` times its current size.
    pub fn prune_to_ratio(&mut self, alpha: f64, config: PruneConfig) -> PruneReport {
        self.core_mut().synopsis.prune_to_ratio(alpha, config)
    }

    /// Eagerly materialise the engine's matching-set caches for the current
    /// epoch. Optional — queries warm the caches lazily — but useful to move
    /// the one-off cost out of a measured section.
    pub fn prepare(&self) {
        let mut st = self.state_mut();
        EngineState::ensure_full(&mut st.full, &self.core.synopsis);
    }

    /// The default proximity metric used by the `_default` query variants.
    pub fn default_metric(&self) -> ProximityMetric {
        self.default_metric
    }

    // ------------------------------------------------------------------
    // Registration
    // ------------------------------------------------------------------

    /// Register a pattern, returning its handle.
    ///
    /// Patterns are interned by canonical structure: registering a pattern
    /// that is equal (modulo sibling order and duplicate branches) to an
    /// already-registered one returns the existing handle.
    pub fn register(&mut self, pattern: &TreePattern) -> PatternId {
        let compiled = {
            let st = self.state_exclusive();
            CompiledPattern::compile(pattern, &mut st.interner)
        };
        if let Some(&existing) = self.core.by_key.get(compiled.canonical_key()) {
            return existing;
        }
        let covered = self.analyze_new_pattern(compiled.pattern());
        let core = self.core_mut();
        let id = PatternId(core.patterns.len() as u32);
        core.by_key.insert(compiled.canonical_key().into(), id);
        core.patterns.push(compiled);
        core.covered_by.push(covered);
        if covered.is_none() && self.analysis.enabled() {
            // The new pattern became the workload's newest active member;
            // earlier active patterns it covers are now redundant.
            self.demote_covered_by(id);
        }
        self.state_exclusive().marginals.push(None);
        id
    }

    /// Analyze-on-register, forward direction: find an earlier *active*
    /// pattern whose match set includes the new pattern's. Earliest
    /// registration wins, mirroring the first-occurrence rule of the routing
    /// crate's containment pruning.
    fn analyze_new_pattern(&self, pattern: &TreePattern) -> Option<PatternId> {
        if !self.analysis.enabled() {
            return None;
        }
        self.core
            .patterns
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.core.covered_by[i].is_none())
            .find(|(_, registered)| self.analysis.covers(registered.pattern(), pattern))
            .map(|(i, _)| PatternId(i as u32))
    }

    /// Analyze-on-register, reverse direction: the freshly registered active
    /// pattern `id` may cover earlier active patterns; demote every one it
    /// does. Coverage links always point at a pattern that was active when
    /// the link was created, so chains stay acyclic.
    fn demote_covered_by(&mut self, id: PatternId) {
        let demoted: Vec<usize> = self
            .core
            .patterns
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != id.index() && self.core.covered_by[i].is_none())
            .filter(|(_, registered)| {
                self.analysis.covers(
                    self.core.patterns[id.index()].pattern(),
                    registered.pattern(),
                )
            })
            .map(|(i, _)| i)
            .collect();
        if !demoted.is_empty() {
            let core = self.core_mut();
            for i in demoted {
                core.covered_by[i] = Some(id);
            }
        }
    }

    /// Register a whole workload, returning one handle per input pattern
    /// (duplicates map to the same handle).
    pub fn register_all<'a, I>(&mut self, patterns: I) -> Vec<PatternId>
    where
        I: IntoIterator<Item = &'a TreePattern>,
    {
        patterns.into_iter().map(|p| self.register(p)).collect()
    }

    /// The (normalised) pattern behind a handle.
    pub fn pattern(&self, id: PatternId) -> &TreePattern {
        self.core.patterns[id.index()].pattern()
    }

    /// Number of registered (distinct) patterns.
    pub fn pattern_count(&self) -> usize {
        self.core.patterns.len()
    }

    // ------------------------------------------------------------------
    // Analyze-on-register: redundancy map
    // ------------------------------------------------------------------

    /// Whether analyze-on-register is enabled on this engine.
    pub fn analyzes_on_register(&self) -> bool {
        self.analysis.enabled()
    }

    /// The pattern directly covering `id`, if registration analysis proved
    /// `id` redundant (its match set is included in the coverer's). `None`
    /// for active patterns and whenever analyze-on-register is off.
    pub fn covering(&self, id: PatternId) -> Option<PatternId> {
        self.core.covered_by[id.index()]
    }

    /// Follow the coverage chain from `id` to its active representative —
    /// `id` itself when it is active. Delivery semantics are preserved by
    /// construction: every document matching `id`'s pattern also matches the
    /// representative's, so a subscriber registered under `id` receives via
    /// the representative's matches.
    pub fn covering_root(&self, id: PatternId) -> PatternId {
        let mut current = id;
        while let Some(next) = self.core.covered_by[current.index()] {
            current = next;
        }
        current
    }

    /// Handles of the active (non-redundant) patterns, in registration
    /// order. This is the compacted workload: similarity matrices, clusters
    /// and routing tables built over it see a smaller `n` with unchanged
    /// match semantics on the analysed document type.
    pub fn active_ids(&self) -> Vec<PatternId> {
        self.core
            .covered_by
            .iter()
            .enumerate()
            .filter(|(_, covered)| covered.is_none())
            .map(|(i, _)| PatternId(i as u32))
            .collect()
    }

    /// Number of registered patterns proven redundant by registration
    /// analysis.
    pub fn redundant_count(&self) -> usize {
        self.core
            .covered_by
            .iter()
            .filter(|covered| covered.is_some())
            .count()
    }

    // ------------------------------------------------------------------
    // Handle-based queries
    // ------------------------------------------------------------------

    /// Estimated selectivity `P(p)` of a registered pattern (cached until
    /// the synopsis changes).
    pub fn selectivity(&self, id: PatternId) -> f64 {
        let mut st = self.state_mut();
        st.marginal(&self.core.synopsis, &self.core.patterns, id)
    }

    /// Batched selectivities of a slice of handles; all evaluations share the
    /// `SEL` memo and the per-pattern cache.
    pub fn selectivities(&self, ids: &[PatternId]) -> Vec<f64> {
        let mut st = self.state_mut();
        ids.iter()
            .map(|&id| st.marginal(&self.core.synopsis, &self.core.patterns, id))
            .collect()
    }

    /// Estimated joint selectivity `P(p ∧ q)` (cached per unordered pair).
    pub fn joint_selectivity(&self, p: PatternId, q: PatternId) -> f64 {
        let mut st = self.state_mut();
        st.joint(&self.core.synopsis, &self.core.patterns, p, q)
    }

    /// Estimated similarity of two registered patterns under `metric`.
    pub fn similarity(&self, p: PatternId, q: PatternId, metric: ProximityMetric) -> f64 {
        let mut st = self.state_mut();
        st.similarity(&self.core.synopsis, &self.core.patterns, p, q, metric)
    }

    /// Estimated similarity under the engine's default metric.
    pub fn similarity_default(&self, p: PatternId, q: PatternId) -> f64 {
        self.similarity(p, q, self.default_metric)
    }

    /// Estimated similarities of a registered pair under all three metrics,
    /// in the order `[M1, M2, M3]`; the three selectivities are evaluated
    /// (at most) once.
    pub fn similarities(&self, p: PatternId, q: PatternId) -> [f64; 3] {
        if p == q {
            return [1.0; 3];
        }
        let mut st = self.state_mut();
        let p_p = st.marginal(&self.core.synopsis, &self.core.patterns, p);
        let p_q = st.marginal(&self.core.synopsis, &self.core.patterns, q);
        let p_and = st.joint(&self.core.synopsis, &self.core.patterns, p, q);
        [
            ProximityMetric::M1.compute(p_p, p_q, p_and),
            ProximityMetric::M2.compute(p_p, p_q, p_and),
            ProximityMetric::M3.compute(p_p, p_q, p_and),
        ]
    }

    /// All-pairs similarity matrix of a workload under `metric`.
    ///
    /// Entry `(i, j)` is bit-identical to `self.similarity(ids[i], ids[j],
    /// metric)`; the batched form simply shares every marginal evaluation
    /// (`n` instead of `2·n²`) and evaluates each unordered joint once.
    pub fn similarity_matrix(&self, ids: &[PatternId], metric: ProximityMetric) -> SimMatrix {
        let mut st = self.state_mut();
        assemble_matrix(
            &mut st,
            &self.core.synopsis,
            &self.core.patterns,
            ids,
            metric,
        )
    }

    /// All-pairs similarity matrix under the engine's default metric.
    pub fn similarity_matrix_default(&self, ids: &[PatternId]) -> SimMatrix {
        self.similarity_matrix(ids, self.default_metric)
    }

    /// All-pairs similarity matrix computed on up to `threads` scoped worker
    /// threads — bit-identical to [`SimilarityEngine::similarity_matrix`].
    ///
    /// The evaluation work is fanned out in two waves over
    /// [`std::thread::scope`] workers (see [`crate::par`]): first the
    /// uncached marginal selectivities, then the uncached joint
    /// selectivities of the upper-triangle pattern pairs. Every worker
    /// evaluates into its own memo shard against the read-only shared state
    /// (synopsis, compiled patterns, materialised matching sets, the
    /// persistent `SEL` memo); after each wave the shard results — values
    /// plus promoted top-level `SEL` entries — are merged back into the
    /// engine's epoch-tagged caches, so later sequential queries stay warm.
    ///
    /// `SEL` is a pure function of the synopsis and the pattern subtree, so
    /// the partitioning (and `threads` itself) cannot change any result:
    /// every entry is bit-identical to the sequential matrix and to the
    /// corresponding pairwise [`SimilarityEngine::similarity`] call.
    ///
    /// `threads <= 1` falls back to the sequential path. The engine's cache
    /// lock is held for the whole call; concurrent queries on other threads
    /// wait, exactly as they would behind a long sequential matrix call.
    pub fn similarity_matrix_par(
        &self,
        ids: &[PatternId],
        metric: ProximityMetric,
        threads: usize,
    ) -> SimMatrix {
        let n = ids.len();
        if threads <= 1 || n < 2 {
            return self.similarity_matrix(ids, metric);
        }
        let mut guard = self.state_mut();
        let st = &mut *guard;
        let synopsis = &self.core.synopsis;
        let patterns = self.core.patterns.as_slice();
        EngineState::ensure_full(&mut st.full, synopsis);

        // Wave 1: marginal selectivities not yet cached, one entry per
        // distinct handle.
        let todo_marginals: Vec<PatternId> = {
            let mut seen = HashSet::new();
            ids.iter()
                .copied()
                .filter(|id| st.marginals[id.index()].is_none() && seen.insert(*id))
                .collect()
        };
        if !todo_marginals.is_empty() {
            let shards = {
                // invariant: `ensure_full` materialised the matrix above
                let full = st.full.as_deref().expect("materialised above");
                let shared = &st.memo;
                par::map_chunks(&todo_marginals, threads, |_, chunk| {
                    let mut scratch = SelMemo::new();
                    let mut promote = SelMemo::new();
                    let values: Vec<f64> = chunk
                        .iter()
                        .map(|id| {
                            let compiled = &patterns[id.index()];
                            let value =
                                eval_selectivity(synopsis, full, shared, &mut scratch, compiled);
                            promote_top_level(synopsis, compiled, &scratch, &mut promote);
                            value
                        })
                        .collect();
                    (values, promote)
                })
            };
            let mut pending = todo_marginals.iter();
            for (values, promote) in shards {
                for value in values {
                    // invariant: map_chunks yields exactly one value per input
                    let id = pending.next().expect("one value per marginal");
                    st.marginals[id.index()] = Some(value);
                    st.marginal_misses += 1;
                }
                for (key, entry) in promote {
                    st.memo.entry(key).or_insert(entry);
                }
            }
        }

        // Wave 2: joint selectivities of the unordered upper-triangle pairs
        // not yet cached.
        let todo_joints: Vec<(u32, u32)> = {
            let mut seen = HashSet::new();
            let mut list = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    let (p, q) = (ids[i], ids[j]);
                    if p == q {
                        continue;
                    }
                    let key = (p.0.min(q.0), p.0.max(q.0));
                    if !st.joints.contains_key(&key) && seen.insert(key) {
                        list.push(key);
                    }
                }
            }
            list
        };
        if !todo_joints.is_empty() {
            let shards = {
                // invariant: `ensure_full` materialised the matrix above
                let full = st.full.as_deref().expect("materialised above");
                let shared = &st.memo;
                let interner = &st.interner;
                par::map_chunks(&todo_joints, threads, |_, chunk| {
                    let mut scratch = SelMemo::new();
                    let mut promote = SelMemo::new();
                    let values: Vec<f64> = chunk
                        .iter()
                        .map(|&(p, q)| {
                            let conjunction = ops::conjunction(
                                patterns[p as usize].pattern(),
                                patterns[q as usize].pattern(),
                            );
                            // invariant: a conjunction of registered
                            // patterns never contains a new subtree (its
                            // non-root subtrees are copies of the
                            // operands'), so the read-only interner resolves
                            // every key — the checked form of the "never
                            // interns" rule.
                            let compiled =
                                CompiledPattern::compile_interned(&conjunction, interner)
                                    .expect("conjunction subtrees are interned at registration");
                            let value =
                                eval_selectivity(synopsis, full, shared, &mut scratch, &compiled);
                            promote_top_level(synopsis, &compiled, &scratch, &mut promote);
                            value
                        })
                        .collect();
                    (values, promote)
                })
            };
            let mut pending = todo_joints.iter();
            for (values, promote) in shards {
                for value in values {
                    // invariant: map_chunks yields exactly one value per input
                    let &key = pending.next().expect("one value per pair");
                    st.joints.insert(key, value);
                    st.joint_misses += 1;
                }
                for (key, entry) in promote {
                    st.memo.entry(key).or_insert(entry);
                }
            }
        }

        // Assembly: every marginal and joint is now a cache hit, through
        // the exact code path the sequential matrix uses.
        assemble_matrix(st, synopsis, patterns, ids, metric)
    }

    /// Sub-quadratic similarity search: the pairs of `ids` whose similarity
    /// under the engine's default metric is at least `threshold`, found via
    /// the LSH candidate-pair index with the default [`LshConfig`].
    ///
    /// See [`SimilarityEngine::similarity_candidates_with`] for the
    /// mechanics and the recall caveat.
    pub fn similarity_candidates(
        &self,
        ids: &[PatternId],
        threshold: f64,
    ) -> Vec<(usize, usize, f64)> {
        self.similarity_candidates_with(ids, self.default_metric, LshConfig::default(), threshold)
    }

    /// Sub-quadratic similarity search under an explicit metric and banding
    /// configuration.
    ///
    /// A [`CandidateIndex`] is built over the structural signatures of the
    /// registered patterns (`O(n)` — signatures derive from the patterns
    /// alone, no corpus or synopsis scan), candidate pairs are enumerated
    /// from its band buckets, and only those pairs are evaluated with the
    /// real selectivity-based `similarity`. Returned triples `(i, j, s)`
    /// index into `ids` with `i < j` and carry the symmetrised similarity
    /// `s ≥ threshold`, in lexicographic pair order — each surviving pair's
    /// value is bit-identical to the corresponding full-matrix entry.
    ///
    /// The candidate filter is probabilistic: a pair whose *structural*
    /// feature overlap is low becomes a candidate only with probability
    /// [`LshConfig::recall`], so pairs that are behaviourally similar under
    /// the observed traffic while structurally disjoint can be missed. That
    /// trade-off (and how to tune `bands`/`rows`) is quantified in
    /// `docs/SCALING.md`.
    pub fn similarity_candidates_with(
        &self,
        ids: &[PatternId],
        metric: ProximityMetric,
        lsh: LshConfig,
        threshold: f64,
    ) -> Vec<(usize, usize, f64)> {
        let mut index = CandidateIndex::new(lsh);
        for &id in ids {
            index.insert(self.pattern(id));
        }
        index
            .candidate_pairs()
            .into_iter()
            .filter_map(|(a, b)| {
                let (i, j) = (a as usize, b as usize);
                let symmetrised = if metric.is_symmetric() {
                    self.similarity(ids[i], ids[j], metric)
                } else {
                    (self.similarity(ids[i], ids[j], metric)
                        + self.similarity(ids[j], ids[i], metric))
                        / 2.0
                };
                (symmetrised >= threshold).then_some((i, j, symmetrised))
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Transient queries (unregistered patterns)
    // ------------------------------------------------------------------

    /// Selectivity of an ad-hoc pattern without registering it. The
    /// evaluation still goes through the shared `SEL` memo and matching-set
    /// caches, but its result is not cached per-pattern.
    pub fn selectivity_of(&self, pattern: &TreePattern) -> f64 {
        let mut st = self.state_mut();
        let compiled = {
            let interner = &mut st.interner;
            CompiledPattern::compile(pattern, interner)
        };
        st.selectivity(&self.core.synopsis, &compiled)
    }

    /// Joint selectivity of two ad-hoc patterns.
    pub fn joint_selectivity_of(&self, p: &TreePattern, q: &TreePattern) -> f64 {
        self.selectivity_of(&ops::conjunction(p, q))
    }

    /// Similarity of two ad-hoc patterns under `metric`.
    pub fn similarity_of(&self, p: &TreePattern, q: &TreePattern, metric: ProximityMetric) -> f64 {
        let [p_p, p_q, p_and] = self.triple_of(p, q);
        metric.compute(p_p, p_q, p_and)
    }

    /// Similarities of two ad-hoc patterns under all three metrics, in the
    /// order `[M1, M2, M3]`.
    pub fn similarities_of(&self, p: &TreePattern, q: &TreePattern) -> [f64; 3] {
        let [p_p, p_q, p_and] = self.triple_of(p, q);
        [
            ProximityMetric::M1.compute(p_p, p_q, p_and),
            ProximityMetric::M2.compute(p_p, p_q, p_and),
            ProximityMetric::M3.compute(p_p, p_q, p_and),
        ]
    }

    fn triple_of(&self, p: &TreePattern, q: &TreePattern) -> [f64; 3] {
        let mut st = self.state_mut();
        let compiled_p = CompiledPattern::compile(p, &mut st.interner);
        let compiled_q = CompiledPattern::compile(q, &mut st.interner);
        let compiled_and = CompiledPattern::compile(&ops::conjunction(p, q), &mut st.interner);
        let p_p = st.selectivity(&self.core.synopsis, &compiled_p);
        let p_q = st.selectivity(&self.core.synopsis, &compiled_q);
        let p_and = st.selectivity(&self.core.synopsis, &compiled_and);
        [p_p, p_q, p_and]
    }

    /// Cache behaviour counters (epoch, hit/miss counts, memo sizes).
    pub fn cache_stats(&self) -> EngineCacheStats {
        let st = self.state_mut();
        EngineCacheStats {
            epoch: st.epoch,
            marginal_hits: st.marginal_hits,
            marginal_misses: st.marginal_misses,
            joint_hits: st.joint_hits,
            joint_misses: st.joint_misses,
            memo_entries: st.memo.len(),
            interned_subtrees: st.interner.len(),
        }
    }

    /// Lock the cache state, invalidating it first if the synopsis epoch
    /// has moved since it was built. A poisoned lock (a panicking query on
    /// another thread) is recovered rather than propagated: the state only
    /// ever transitions between consistent snapshots, and a stale epoch tag
    /// is re-checked here anyway.
    fn state_mut(&self) -> MutexGuard<'_, EngineState> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let epoch = self.core.synopsis.epoch();
        if st.epoch != epoch {
            st.invalidate(epoch, self.core.patterns.len());
        } else if st.marginals.len() != self.core.patterns.len() {
            st.marginals.resize(self.core.patterns.len(), None);
        }
        st
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_pattern::TreePattern;
    use tps_synopsis::{ingest, Ingest, MatchingSetKind};

    fn docs() -> Vec<XmlTree> {
        [
            "<media><CD><composer><last>Mozart</last></composer><title>Requiem</title></CD></media>",
            "<media><CD><composer><last>Bach</last></composer></CD></media>",
            "<media><book><author><last>Austen</last></author></book></media>",
            "<media><book><author><last>Mozart</last></author></book></media>",
        ]
        .iter()
        .map(|s| XmlTree::parse(s).unwrap())
        .collect()
    }

    fn pat(s: &str) -> TreePattern {
        TreePattern::parse(s).unwrap()
    }

    fn engine_with(kind: MatchingSetKind) -> SimilarityEngine {
        let mut engine = SimilarityEngine::builder().matching_sets(kind).build();
        engine.ingest(ingest::trees(&docs())).unwrap();
        engine
    }

    #[test]
    fn builder_subsumes_config_and_prepare() {
        let mut engine = SimilarityEngine::builder()
            .matching_sets(MatchingSetKind::hashes(64))
            .metric(ProximityMetric::M2)
            .seed(7)
            .build();
        assert_eq!(engine.default_metric(), ProximityMetric::M2);
        assert_eq!(engine.synopsis().seed(), 7);
        engine.ingest(ingest::trees(&docs())).unwrap();
        let id = engine.register(&pat("//CD"));
        // No prepare() needed before querying.
        assert!((engine.selectivity(id) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn builder_seed_wins_regardless_of_call_order() {
        let a = SimilarityEngine::builder()
            .seed(7)
            .matching_sets(MatchingSetKind::hashes(64))
            .build();
        let b = SimilarityEngine::builder()
            .matching_sets(MatchingSetKind::hashes(64))
            .seed(7)
            .build();
        assert_eq!(a.synopsis().seed(), 7);
        assert_eq!(b.synopsis().seed(), 7);
        // A full config's seed is honoured when no explicit .seed() is set...
        let c = SimilarityEngine::builder()
            .matching_sets(SynopsisConfig::hashes(64).with_seed(9))
            .build();
        assert_eq!(c.synopsis().seed(), 9);
        // ...and overridden when one is.
        let d = SimilarityEngine::builder()
            .seed(7)
            .matching_sets(SynopsisConfig::hashes(64).with_seed(9))
            .build();
        assert_eq!(d.synopsis().seed(), 7);
    }

    #[test]
    fn synopsis_mut_access_invalidates_caches_defensively() {
        let mut engine = engine_with(MatchingSetKind::hashes(64));
        let id = engine.register(&pat("//CD"));
        let before = engine.selectivity(id);
        let epoch_before = engine.synopsis().epoch();
        // Merely taking the mutable reference (even without a structural
        // change the synopsis can observe) must advance the epoch.
        let _ = engine.synopsis_mut();
        assert!(engine.synopsis().epoch() > epoch_before);
        assert_eq!(engine.selectivity(id), before, "value unchanged, rebuilt");
    }

    #[test]
    fn joint_queries_do_not_grow_the_interner() {
        let mut engine = engine_with(MatchingSetKind::hashes(64));
        let ids = engine.register_all(&[pat("//CD"), pat("//composer"), pat("//book")]);
        engine.selectivities(&ids);
        let before = engine.cache_stats().interned_subtrees;
        engine.similarity_matrix(&ids, ProximityMetric::M3);
        assert_eq!(
            engine.cache_stats().interned_subtrees,
            before,
            "conjunction compilation must not accrue interner entries"
        );
    }

    #[test]
    fn register_interns_structurally_equal_patterns() {
        let mut engine = engine_with(MatchingSetKind::hashes(64));
        let a = engine.register(&pat("/media[CD][book]"));
        let b = engine.register(&pat("/media[book][CD]"));
        let c = engine.register(&pat("/media[CD][CD][book]"));
        let d = engine.register(&pat("//CD"));
        assert_eq!(a, b, "sibling order must not create a new handle");
        assert_eq!(a, c, "duplicate branches must not create a new handle");
        assert_ne!(a, d);
        assert_eq!(engine.pattern_count(), 2);
    }

    #[test]
    fn analyze_on_register_maps_redundant_patterns_to_their_coverer() {
        let mut engine = SimilarityEngine::builder()
            .matching_sets(MatchingSetKind::hashes(64))
            .analyze_on_register(true)
            .build();
        let general = engine.register(&pat("/a//b"));
        let specific = engine.register(&pat("/a/x/b"));
        let unrelated = engine.register(&pat("/a/c"));
        assert!(engine.analyzes_on_register());
        assert_eq!(engine.covering(general), None);
        assert_eq!(engine.covering(specific), Some(general));
        assert_eq!(engine.covering(unrelated), None);
        assert_eq!(engine.covering_root(specific), general);
        assert_eq!(engine.active_ids(), vec![general, unrelated]);
        assert_eq!(engine.redundant_count(), 1);
        // All three handles stay queryable — redundancy is metadata, not
        // deletion.
        assert_eq!(engine.pattern_count(), 3);
    }

    #[test]
    fn analyze_on_register_demotes_earlier_patterns_covered_by_a_newcomer() {
        let mut engine = SimilarityEngine::builder()
            .matching_sets(MatchingSetKind::hashes(64))
            .analyze_on_register(true)
            .build();
        let narrow_one = engine.register(&pat("/a/x/b"));
        let narrow_two = engine.register(&pat("/a/y/b"));
        let general = engine.register(&pat("/a//b"));
        assert_eq!(engine.covering(narrow_one), Some(general));
        assert_eq!(engine.covering(narrow_two), Some(general));
        assert_eq!(engine.covering(general), None);
        assert_eq!(engine.active_ids(), vec![general]);
        assert_eq!(engine.redundant_count(), 2);
        // Chains resolve transitively even after multiple demotions.
        let root = engine.register(&pat("//b"));
        assert_eq!(engine.covering(general), Some(root));
        assert_eq!(engine.covering_root(narrow_one), root);
        assert_eq!(engine.active_ids(), vec![root]);
    }

    #[test]
    fn redundancy_oracle_extends_the_syntactic_test() {
        use std::sync::Arc;
        // A toy "DTD" oracle that knows /media/CD/x and //x are equivalent.
        let oracle: crate::SharedContainmentOracle = Arc::new(|p, q| {
            let (p, q) = (p.to_string(), q.to_string());
            let pair = |a: &str, b: &str| (p == a && q == b) || (p == b && q == a);
            pair("/media/CD/x", "//x").then_some(true)
        });
        let mut engine = SimilarityEngine::builder()
            .matching_sets(MatchingSetKind::hashes(64))
            .redundancy_oracle(oracle)
            .build();
        let first = engine.register(&pat("/media/CD/x"));
        let second = engine.register(&pat("//x"));
        assert_eq!(engine.covering(second), Some(first));
        assert_eq!(engine.active_ids(), vec![first]);
    }

    #[test]
    fn registration_without_analysis_never_marks_redundancy() {
        let mut engine = engine_with(MatchingSetKind::hashes(64));
        let general = engine.register(&pat("/a//b"));
        let specific = engine.register(&pat("/a/x/b"));
        assert!(!engine.analyzes_on_register());
        assert_eq!(engine.covering(general), None);
        assert_eq!(engine.covering(specific), None);
        assert_eq!(engine.active_ids(), vec![general, specific]);
        assert_eq!(engine.redundant_count(), 0);
    }

    #[test]
    fn selectivities_match_single_calls() {
        let mut engine = engine_with(MatchingSetKind::sets(100));
        let ids = engine.register_all(&[pat("//CD"), pat("//Mozart"), pat("//book/author")]);
        let batch = engine.selectivities(&ids);
        for (&id, &value) in ids.iter().zip(&batch) {
            assert_eq!(engine.selectivity(id), value);
        }
        assert!((batch[0] - 0.5).abs() < 1e-9);
        assert!((batch[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn similarity_matrix_is_bit_identical_to_pairwise_calls() {
        for kind in [
            MatchingSetKind::counters(),
            MatchingSetKind::sets(100),
            MatchingSetKind::hashes(64),
        ] {
            let mut engine = engine_with(kind);
            let ids = engine.register_all(&[
                pat("//CD"),
                pat("//composer"),
                pat("//book"),
                pat("//Mozart"),
                pat("/media/*/title"),
            ]);
            for metric in ProximityMetric::all() {
                let matrix = engine.similarity_matrix(&ids, metric);
                for i in 0..ids.len() {
                    for j in 0..ids.len() {
                        let pairwise = engine.similarity(ids[i], ids[j], metric);
                        assert!(
                            matrix.get(i, j) == pairwise,
                            "({i},{j}) {metric} {kind:?}: {} != {}",
                            matrix.get(i, j),
                            pairwise
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn matrix_agrees_with_the_per_call_estimator_path() {
        // The engine's cached evaluation must produce the same numbers as the
        // stand-alone per-call SelectivityEstimator pipeline.
        let mut engine = engine_with(MatchingSetKind::hashes(100));
        let patterns = [pat("//CD"), pat("//composer/last"), pat("//book")];
        let ids = engine.register_all(&patterns);
        let matrix = engine.similarity_matrix(&ids, ProximityMetric::M3);
        let mut synopsis = Synopsis::from_documents(SynopsisConfig::hashes(100), &docs());
        synopsis.prepare();
        let est = crate::SelectivityEstimator::new(&synopsis);
        for i in 0..patterns.len() {
            for j in 0..patterns.len() {
                if i == j {
                    continue;
                }
                let p_p = est.selectivity(&patterns[i]);
                let p_q = est.selectivity(&patterns[j]);
                let p_and = est.joint_selectivity(&patterns[i], &patterns[j]);
                let expected = ProximityMetric::M3.compute(p_p, p_q, p_and);
                assert_eq!(matrix.get(i, j), expected, "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn epoch_bump_invalidates_cached_selectivities() {
        let mut engine = engine_with(MatchingSetKind::hashes(64));
        let id = engine.register(&pat("//CD"));
        assert!((engine.selectivity(id) - 0.5).abs() < 1e-9);
        let stats = engine.cache_stats();
        assert_eq!(stats.marginal_misses, 1);
        // A second query is a pure cache hit.
        engine.selectivity(id);
        let stats = engine.cache_stats();
        assert_eq!(stats.marginal_hits, 1);
        assert_eq!(stats.marginal_misses, 1);
        // Observing a document bumps the epoch and drops the caches: the
        // value changes and the query is a miss again.
        engine.ingest(ingest::text("<media><CD/></media>")).unwrap();
        assert!((engine.selectivity(id) - 3.0 / 5.0).abs() < 1e-9);
        let stats = engine.cache_stats();
        assert_eq!(stats.marginal_hits, 0, "caches were rebuilt");
        assert_eq!(stats.marginal_misses, 1);
    }

    #[test]
    fn epoch_bump_on_pruning_invalidates_caches() {
        let mut engine = engine_with(MatchingSetKind::hashes(64));
        let id = engine.register(&pat("//composer/last"));
        let before = engine.selectivity(id);
        assert!(before > 0.0);
        let report = engine.prune_to_ratio(0.4, PruneConfig::default());
        assert!(report.final_size <= report.original_size);
        let after = engine.selectivity(id);
        assert!((0.0..=1.0).contains(&after));
        let stats = engine.cache_stats();
        assert_eq!(
            stats.epoch,
            engine.synopsis().epoch(),
            "caches must be tagged with the post-prune epoch"
        );
    }

    #[test]
    fn transient_queries_agree_with_registered_ones() {
        let mut engine = engine_with(MatchingSetKind::sets(100));
        let p = pat("//CD");
        let q = pat("//Mozart");
        let (hp, hq) = (engine.register(&p), engine.register(&q));
        assert_eq!(engine.selectivity_of(&p), engine.selectivity(hp));
        assert_eq!(
            engine.joint_selectivity_of(&p, &q),
            engine.joint_selectivity(hp, hq)
        );
        for metric in ProximityMetric::all() {
            assert_eq!(
                engine.similarity_of(&p, &q, metric),
                engine.similarity(hp, hq, metric)
            );
        }
        let all = engine.similarities_of(&p, &q);
        assert_eq!(all, engine.similarities(hp, hq));
    }

    #[test]
    fn shared_memo_grows_across_patterns() {
        let mut engine = engine_with(MatchingSetKind::hashes(64));
        let ids = engine.register_all(&[pat("//CD/composer/last"), pat("//book/author/last")]);
        engine.selectivities(&ids);
        let stats = engine.cache_stats();
        assert!(stats.memo_entries > 0);
        assert!(stats.interned_subtrees >= 6, "subtrees of both patterns");
        // The shared //last fragments intern to the same subtree key.
        let before = stats.interned_subtrees;
        let mut engine2 = engine.clone();
        engine2.register(&pat("//last"));
        assert!(engine2.cache_stats().interned_subtrees <= before + 2);
    }

    #[test]
    fn sim_matrix_accessors() {
        let mut engine = engine_with(MatchingSetKind::sets(100));
        let ids = engine.register_all(&[pat("//CD"), pat("//book")]);
        let matrix = engine.similarity_matrix(&ids, ProximityMetric::M3);
        assert_eq!(matrix.len(), 2);
        assert!(!matrix.is_empty());
        assert_eq!(matrix.metric(), ProximityMetric::M3);
        assert_eq!(matrix.get(0, 0), 1.0);
        assert_eq!(matrix.row(0).len(), 2);
        assert_eq!(matrix.values().len(), 4);
        let empty = engine.similarity_matrix(&[], ProximityMetric::M1);
        assert!(empty.is_empty());
        assert_eq!(empty.into_values(), Vec::<f64>::new());
    }

    #[test]
    fn duplicate_handles_in_a_matrix_slice_are_unit_similar() {
        let mut engine = engine_with(MatchingSetKind::hashes(64));
        let id = engine.register(&pat("//CD"));
        let matrix = engine.similarity_matrix(&[id, id], ProximityMetric::M1);
        assert_eq!(matrix.get(0, 1), 1.0);
        assert_eq!(matrix.get(1, 0), 1.0);
    }

    #[test]
    fn from_synopsis_wraps_an_existing_stream() {
        let synopsis = Synopsis::from_documents(SynopsisConfig::counters(), &docs());
        let mut engine = SimilarityEngine::from_synopsis(synopsis);
        assert_eq!(engine.document_count(), 4);
        let id = engine.register(&pat("/media/CD"));
        assert!((engine.selectivity(id) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn engine_is_send_and_sync() {
        // Static assertion: the whole point of the sharded design. A
        // compile failure here means a non-`Sync` cache leaked back in.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimilarityEngine>();
        assert_send_sync::<SimMatrix>();
        assert_send_sync::<SimilarityEngineBuilder>();
    }

    #[test]
    fn parallel_matrix_is_bit_identical_to_sequential() {
        for kind in [
            MatchingSetKind::counters(),
            MatchingSetKind::sets(100),
            MatchingSetKind::hashes(64),
        ] {
            let mut engine = engine_with(kind);
            let ids = engine.register_all(&[
                pat("//CD"),
                pat("//composer"),
                pat("//book"),
                pat("//Mozart"),
                pat("/media/*/title"),
            ]);
            for metric in ProximityMetric::all() {
                let sequential = engine.similarity_matrix(&ids, metric);
                for threads in [1usize, 2, 3, 8] {
                    // A cold clone proves thread-count independence from
                    // scratch; the warm original proves cache reuse agrees.
                    let cold = engine.clone();
                    let par = cold.similarity_matrix_par(&ids, metric, threads);
                    assert_eq!(par, sequential, "{threads} threads, {metric} {kind:?}");
                    let warm = engine.similarity_matrix_par(&ids, metric, threads);
                    assert_eq!(warm, sequential);
                }
            }
        }
    }

    #[test]
    fn parallel_matrix_handles_degenerate_inputs() {
        let mut engine = engine_with(MatchingSetKind::hashes(64));
        let id = engine.register(&pat("//CD"));
        let empty = engine.similarity_matrix_par(&[], ProximityMetric::M3, 4);
        assert!(empty.is_empty());
        let single = engine.similarity_matrix_par(&[id], ProximityMetric::M3, 4);
        assert_eq!(single.len(), 1);
        assert_eq!(single.get(0, 0), 1.0);
        let dup = engine.similarity_matrix_par(&[id, id], ProximityMetric::M1, 4);
        assert_eq!(dup.get(0, 1), 1.0);
        assert_eq!(dup.get(1, 0), 1.0);
    }

    #[test]
    fn parallel_matrix_merges_worker_memos_back() {
        let mut engine = engine_with(MatchingSetKind::hashes(64));
        let ids = engine.register_all(&[pat("//CD"), pat("//composer"), pat("//book")]);
        engine.similarity_matrix_par(&ids, ProximityMetric::M3, 4);
        let after_par = engine.cache_stats();
        assert_eq!(after_par.marginal_misses, 3, "one evaluation per pattern");
        assert_eq!(after_par.joint_misses, 3, "one evaluation per pair");
        assert!(after_par.memo_entries > 0, "promoted SEL entries merged");
        // The sequential matrix over the same handles is now all hits.
        engine.similarity_matrix(&ids, ProximityMetric::M3);
        let after_seq = engine.cache_stats();
        assert_eq!(after_seq.marginal_misses, 3);
        assert_eq!(after_seq.joint_misses, 3);
        assert!(after_seq.marginal_hits >= 6, "marginals served warm");
        assert!(after_seq.joint_hits >= 3, "joints served warm");
    }

    #[test]
    fn parallel_queries_from_many_threads_agree() {
        let mut engine = engine_with(MatchingSetKind::sets(100));
        let ids = engine.register_all(&[pat("//CD"), pat("//composer"), pat("//book")]);
        let expected = engine.similarity_matrix(&ids, ProximityMetric::M3);
        // &engine is shared directly across scoped threads: each thread runs
        // its own batched query against the same caches.
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let matrix = engine.similarity_matrix(&ids, ProximityMetric::M3);
                    assert_eq!(matrix, expected);
                    let par = engine.similarity_matrix_par(&ids, ProximityMetric::M3, 2);
                    assert_eq!(par, expected);
                });
            }
        });
    }

    #[test]
    fn prepare_is_optional_and_idempotent() {
        let mut engine = engine_with(MatchingSetKind::hashes(64));
        let id = engine.register(&pat("//CD"));
        engine.prepare();
        engine.prepare();
        assert!((engine.selectivity(id) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn similarity_candidates_values_match_the_full_matrix() {
        let mut engine = engine_with(MatchingSetKind::sets(100));
        let ids = engine.register_all(&[
            pat("//CD"),
            pat("//CD/composer"),
            pat("//CD/composer/last"),
            pat("//book"),
            pat("//book/author"),
        ]);
        let matrix = engine.similarity_matrix(&ids, ProximityMetric::M3);
        let found = engine.similarity_candidates(&ids, 0.0);
        for &(i, j, value) in &found {
            assert!(i < j, "pairs are upper-triangle");
            assert_eq!(value, matrix.get(i, j), "pair ({i},{j})");
        }
        // The ordered output has no duplicate pairs.
        let mut pairs: Vec<(usize, usize)> = found.iter().map(|&(i, j, _)| (i, j)).collect();
        let sorted = pairs.clone();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs, sorted);
    }

    #[test]
    fn similarity_candidates_respect_the_threshold() {
        let mut engine = engine_with(MatchingSetKind::sets(100));
        let ids = engine.register_all(&[pat("//CD"), pat("//CD"), pat("//book")]);
        let found = engine.similarity_candidates(&ids, 0.9);
        // The duplicate //CD handles are structurally identical, hence
        // always candidates, and their similarity is 1.
        assert!(found.iter().any(|&(i, j, s)| (i, j) == (0, 1) && s == 1.0));
        assert!(found.iter().all(|&(_, _, s)| s >= 0.9));
    }

    #[test]
    fn similarity_candidates_symmetrise_asymmetric_metrics() {
        let mut engine = engine_with(MatchingSetKind::sets(100));
        let ids = engine.register_all(&[pat("//CD"), pat("//CD/composer")]);
        // A one-row, many-band configuration makes any shared feature an
        // all-but-certain candidate, so the test is not at the mercy of the
        // default banding's recall on this structurally close pair.
        let lsh = LshConfig {
            bands: 64,
            rows: 1,
            seed: 1,
        };
        let found = engine.similarity_candidates_with(&ids, ProximityMetric::M1, lsh, 0.0);
        let expected = (engine.similarity(ids[0], ids[1], ProximityMetric::M1)
            + engine.similarity(ids[1], ids[0], ProximityMetric::M1))
            / 2.0;
        assert_eq!(found, vec![(0, 1, expected)]);
    }
}
