//! A tiny scoped work-splitting helper.
//!
//! The build environment has no registry access, so the workspace cannot
//! pull in `rayon`; the parallel entry points of the
//! [`crate::SimilarityEngine`] only need one primitive anyway: split a slice
//! of independent work items into contiguous chunks and map one worker
//! closure over each chunk on [`std::thread::scope`] threads. Results come
//! back in chunk order, so callers can merge them deterministically.

use std::thread;

/// Number of workers worth spawning on this host:
/// [`std::thread::available_parallelism`], or `1` when it cannot be
/// determined. Callers that let users pick a thread count (e.g. the CLI's
/// `--threads 0`) use this as the "one worker per core" default.
pub fn available_workers() -> usize {
    thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
}

/// Split `len` items into at most `workers` contiguous, near-equal ranges.
///
/// Every returned range is non-empty and the ranges partition `0..len` in
/// order. Fewer than `workers` ranges are returned when there are fewer
/// items than workers; zero items yield no ranges.
pub fn partition(len: usize, workers: usize) -> Vec<std::ops::Range<usize>> {
    let workers = workers.max(1).min(len);
    if workers == 0 {
        return Vec::new();
    }
    let base = len / workers;
    let extra = len % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let size = base + usize::from(w < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Hard ceiling on the number of scoped threads one [`map_chunks`] call
/// will spawn, whatever the caller asks for. Deliberate small
/// oversubscription (benchmarks, concurrency tests) stays possible, but a
/// user-supplied worker count can never translate into thousands of OS
/// threads (which would abort the process on pid-limited hosts, since
/// `std::thread::Scope::spawn` panics when spawning fails).
pub const MAX_WORKERS: usize = 64;

/// Map `f` over contiguous chunks of `items` on up to `workers` scoped
/// threads (capped at [`MAX_WORKERS`]), returning one result per chunk in
/// chunk order.
///
/// With `workers <= 1` (or a single chunk) the closure runs inline on the
/// calling thread — no threads are spawned, so the sequential fallback has
/// zero overhead. The closure receives the chunk's starting offset into
/// `items` alongside the chunk itself. A panic in any worker propagates to
/// the caller (with its original payload) when the scope joins.
pub fn map_chunks<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let ranges = partition(items.len(), workers.min(MAX_WORKERS));
    if ranges.len() <= 1 {
        return ranges.into_iter().map(|r| f(r.start, &items[r])).collect();
    }
    thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| {
                let f = &f;
                scope.spawn(move || f(r.start, &items[r]))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                // Re-raise a worker panic with its original payload so the
                // real assertion message reaches the caller.
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_the_range_in_order() {
        for len in [0usize, 1, 2, 7, 16, 100] {
            for workers in [1usize, 2, 3, 8, 200] {
                let ranges = partition(len, workers);
                assert!(ranges.len() <= workers.max(1));
                assert!(ranges.iter().all(|r| !r.is_empty()));
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, len);
            }
        }
    }

    #[test]
    fn partition_balances_within_one_item() {
        let ranges = partition(10, 4);
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn map_chunks_matches_a_sequential_map() {
        let items: Vec<u64> = (0..97).collect();
        let expected: u64 = items.iter().map(|&x| x * x).sum();
        for workers in [1usize, 2, 5, 16] {
            let total: u64 = map_chunks(&items, workers, |_, chunk| {
                chunk.iter().map(|&x| x * x).sum::<u64>()
            })
            .into_iter()
            .sum();
            assert_eq!(total, expected, "workers = {workers}");
        }
    }

    #[test]
    fn map_chunks_passes_the_chunk_offset() {
        let items: Vec<usize> = (0..23).collect();
        let chunks = map_chunks(&items, 4, |offset, chunk| (offset, chunk.to_vec()));
        for (offset, chunk) in chunks {
            for (k, &value) in chunk.iter().enumerate() {
                assert_eq!(value, offset + k);
            }
        }
    }

    #[test]
    fn empty_input_yields_no_chunks() {
        let out = map_chunks(&[] as &[u8], 4, |_, chunk| chunk.len());
        assert!(out.is_empty());
    }

    #[test]
    fn absurd_worker_counts_are_capped() {
        // One thread per item would abort on pid-limited hosts; the cap
        // keeps the chunk count (= spawned threads) bounded.
        let items: Vec<u32> = (0..10_000).collect();
        let chunks = map_chunks(&items, usize::MAX, |_, chunk| chunk.len());
        assert!(chunks.len() <= MAX_WORKERS);
        assert_eq!(chunks.iter().sum::<usize>(), items.len());
    }
}
