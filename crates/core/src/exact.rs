//! Exact (ground-truth) selectivity and similarity over a stored document
//! collection.
//!
//! The evaluation section of the paper compares estimated selectivities and
//! similarities against exact values computed by matching every pattern
//! against every document of the data set `D` (`P(p) = |Dp| / |D|`,
//! `P(p ∧ q) = |Dp ∩ Dq| / |D|`). This module provides that reference
//! implementation; it is also what a broker without space constraints would
//! run.

use std::collections::BTreeSet;

use tps_pattern::TreePattern;
use tps_xml::XmlTree;

use crate::metrics::ProximityMetric;

/// Exact selectivity evaluation over an in-memory document collection.
#[derive(Debug, Clone, Default)]
pub struct ExactEvaluator {
    documents: Vec<XmlTree>,
}

impl ExactEvaluator {
    /// Create an evaluator over the given documents.
    pub fn new(documents: Vec<XmlTree>) -> Self {
        Self { documents }
    }

    /// Create an empty evaluator.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Add one document.
    pub fn add_document(&mut self, document: XmlTree) {
        self.documents.push(document);
    }

    /// Number of stored documents.
    pub fn document_count(&self) -> usize {
        self.documents.len()
    }

    /// The stored documents.
    pub fn documents(&self) -> &[XmlTree] {
        &self.documents
    }

    /// Indices of the documents that match `pattern` (the paper's `Dp`).
    pub fn matching_documents(&self, pattern: &TreePattern) -> BTreeSet<usize> {
        self.documents
            .iter()
            .enumerate()
            .filter(|(_, d)| pattern.matches(d))
            .map(|(i, _)| i)
            .collect()
    }

    /// Exact selectivity `P(p) = |Dp| / |D|`.
    pub fn selectivity(&self, pattern: &TreePattern) -> f64 {
        if self.documents.is_empty() {
            return 0.0;
        }
        self.matching_documents(pattern).len() as f64 / self.documents.len() as f64
    }

    /// Exact joint selectivity `P(p ∧ q) = |Dp ∩ Dq| / |D|`.
    pub fn joint_selectivity(&self, p: &TreePattern, q: &TreePattern) -> f64 {
        if self.documents.is_empty() {
            return 0.0;
        }
        let dp = self.matching_documents(p);
        let dq = self.matching_documents(q);
        dp.intersection(&dq).count() as f64 / self.documents.len() as f64
    }

    /// Exact similarity of `p` and `q` under `metric`.
    pub fn similarity(&self, p: &TreePattern, q: &TreePattern, metric: ProximityMetric) -> f64 {
        metric.compute(
            self.selectivity(p),
            self.selectivity(q),
            self.joint_selectivity(p, q),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<XmlTree> {
        [
            "<a><b/><c/></a>",
            "<a><b/></a>",
            "<a><c/></a>",
            "<x><b/></x>",
        ]
        .iter()
        .map(|s| XmlTree::parse(s).unwrap())
        .collect()
    }

    fn pat(s: &str) -> TreePattern {
        TreePattern::parse(s).unwrap()
    }

    #[test]
    fn selectivity_counts_matching_documents() {
        let ev = ExactEvaluator::new(docs());
        assert_eq!(ev.document_count(), 4);
        assert!((ev.selectivity(&pat("/a")) - 0.75).abs() < 1e-12);
        assert!((ev.selectivity(&pat("//b")) - 0.75).abs() < 1e-12);
        assert_eq!(ev.selectivity(&pat("/zzz")), 0.0);
    }

    #[test]
    fn joint_selectivity_is_intersection() {
        let ev = ExactEvaluator::new(docs());
        let joint = ev.joint_selectivity(&pat("/a/b"), &pat("/a/c"));
        assert!((joint - 0.25).abs() < 1e-12);
    }

    #[test]
    fn matching_documents_returns_indices() {
        let ev = ExactEvaluator::new(docs());
        let m = ev.matching_documents(&pat("/a/b"));
        assert_eq!(m.into_iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn similarity_uses_the_selected_metric() {
        let ev = ExactEvaluator::new(docs());
        let p = pat("/a/b");
        let q = pat("/a/c");
        // P(p)=0.5, P(q)=0.5, P(p∧q)=0.25.
        assert!((ev.similarity(&p, &q, ProximityMetric::M1) - 0.5).abs() < 1e-12);
        assert!((ev.similarity(&p, &q, ProximityMetric::M2) - 0.5).abs() < 1e-12);
        assert!((ev.similarity(&p, &q, ProximityMetric::M3) - 0.25 / 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_evaluator_returns_zero() {
        let ev = ExactEvaluator::empty();
        assert_eq!(ev.selectivity(&pat("/a")), 0.0);
        assert_eq!(ev.joint_selectivity(&pat("/a"), &pat("/b")), 0.0);
    }

    #[test]
    fn add_document_extends_the_collection() {
        let mut ev = ExactEvaluator::empty();
        ev.add_document(XmlTree::parse("<a><b/></a>").unwrap());
        assert_eq!(ev.document_count(), 1);
        assert_eq!(ev.selectivity(&pat("/a/b")), 1.0);
        assert_eq!(ev.documents().len(), 1);
    }

    #[test]
    fn identical_patterns_have_exact_similarity_one() {
        let ev = ExactEvaluator::new(docs());
        let p = pat("//b");
        for m in ProximityMetric::all() {
            assert!((ev.similarity(&p, &p, m) - 1.0).abs() < 1e-12);
        }
    }
}
