//! The recursive selectivity algorithm (Algorithms 1 and 2 of the paper).
//!
//! `SEL(v, u)` parses pattern nodes `u` against synopsis nodes `v` and
//! returns (an approximation of) the set of documents whose subtree at `v`
//! satisfies the sub-pattern rooted at `u`:
//!
//! ```text
//! 1: if label(v) not compatible with label(u):  SEL(v,u) = ∅
//! 2: else if u is a leaf:                        SEL(v,u) = S(v)
//! 3: else if label(u) ≠ //:
//! 4:     SEL(v,u) = ⋂_{u'∈Children(u)} ⋃_{v'∈Children(v)} SEL(v',u')
//! 5: else (label(u) = //):
//! 6:     S0  = ⋂_{u'∈Children(u)} SEL(v,u')        (path of length 0)
//! 7:     S≥1 = ⋃_{v'∈Children(v)} SEL(v',u)        (descend one level)
//! 8:     SEL(v,u) = S0 ∪ S≥1
//! ```
//!
//! The values are [`SummaryValue`]s, so the same code covers the three
//! matching-set representations: sets/hash-samples use genuine set algebra;
//! counters use the max/product substitution described at the end of
//! Section 4.
//!
//! Two extensions beyond the paper's pseudo-code are needed for a complete
//! system:
//!
//! * **memoisation** of `(v, u)` pairs, which the paper mentions in prose to
//!   obtain the `O(|HS|·|p|)` bound, and
//! * support for **folded nested labels** produced by the pruning operations
//!   of Section 3.3: a pattern child that cannot be matched by a real
//!   synopsis child may still be satisfied by a label folded into `v`, in
//!   which case its document set is (approximated by) `S(v)`.

use tps_pattern::{CompiledPattern, SubtreeInterner, TreePattern};
use tps_synopsis::{SummaryValue, Synopsis};

use crate::eval::{SelEvaluator, SelMemo, ValueSource};

/// Selectivity estimation over a [`Synopsis`].
///
/// Borrows the synopsis immutably; build one estimator and evaluate as many
/// patterns as needed. For the Hashes representation, calling
/// [`Synopsis::prepare`] beforehand caches the per-node full matching sets
/// and makes repeated evaluations much faster.
///
/// Every call compiles the pattern and evaluates it from scratch; nothing is
/// shared between calls. For workloads that evaluate many patterns against
/// the same synopsis, prefer [`crate::SimilarityEngine`], which registers
/// patterns once and shares `SEL` memoisation and selectivity caches across
/// the whole batch.
#[derive(Debug, Clone, Copy)]
pub struct SelectivityEstimator<'a> {
    synopsis: &'a Synopsis,
}

impl<'a> SelectivityEstimator<'a> {
    /// Create an estimator over `synopsis`.
    pub fn new(synopsis: &'a Synopsis) -> Self {
        Self { synopsis }
    }

    /// The underlying synopsis.
    pub fn synopsis(&self) -> &'a Synopsis {
        self.synopsis
    }

    /// Estimate `P(p)`: the fraction of observed documents that match `p`
    /// (Algorithm 2). The result is clamped to `[0, 1]`.
    pub fn selectivity(&self, pattern: &TreePattern) -> f64 {
        let universe = self.synopsis.universe_value().count_units();
        if universe <= 0.0 {
            return 0.0;
        }
        let value = self.evaluate(pattern);
        (value.count_units() / universe).clamp(0.0, 1.0)
    }

    /// Estimate the joint selectivity `P(p ∧ q)` by evaluating the root-merge
    /// of the two patterns (Section 4).
    pub fn joint_selectivity(&self, p: &TreePattern, q: &TreePattern) -> f64 {
        let conjunction = tps_pattern::ops::conjunction(p, q);
        self.selectivity(&conjunction)
    }

    /// Run `SEL` on the root nodes and return the raw document-set value.
    ///
    /// The pattern is normalised first (duplicate sibling subtrees collapse
    /// to one), so requiring the same branch twice does not double-count it.
    pub fn evaluate(&self, pattern: &TreePattern) -> SummaryValue {
        let mut interner = SubtreeInterner::new();
        let compiled = CompiledPattern::compile(pattern, &mut interner);
        let shared = SelMemo::new();
        let mut local = SelMemo::new();
        SelEvaluator {
            synopsis: self.synopsis,
            source: ValueSource::Direct,
            shared: &shared,
            local: &mut local,
        }
        .evaluate(&compiled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_synopsis::SynopsisConfig;
    use tps_xml::XmlTree;

    /// The six documents of Figure 2.
    fn figure2_documents() -> Vec<XmlTree> {
        [
            "<a><b><e><k/></e><e><m/></e><g><m/></g></b></a>",
            "<a><b><e><k/></e><g><k/><n/></g><f><n/></f></b></a>",
            "<a><b><e><k/></e><g><n/></g></b><c><f><n/></f><o><n/></o><f><h/></f></c></a>",
            "<a><c><f><k/></f><o><n/></o><e><m/></e><h/></c><d><e><k/></e><q><m/></q></d></a>",
            "<a><d><e><k/></e><e><m/></e><p/></d></a>",
            "<a><d><e><m/></e></d></a>",
        ]
        .iter()
        .map(|s| XmlTree::parse(s).unwrap())
        .collect()
    }

    fn pat(s: &str) -> TreePattern {
        TreePattern::parse(s).unwrap()
    }

    fn exact_fraction(docs: &[XmlTree], p: &TreePattern) -> f64 {
        docs.iter().filter(|d| p.matches(d)).count() as f64 / docs.len() as f64
    }

    #[test]
    fn exact_representations_reproduce_true_selectivity() {
        // With a lossless synopsis (Sets with a huge reservoir, or Hashes with
        // huge capacity), the estimate must equal the exact fraction for
        // branching and descendant patterns alike.
        let docs = figure2_documents();
        let patterns = [
            "/a",
            "/a/b",
            "/a/b/e/k",
            "/a[b][d]",
            "/a[c/f][c/o]",
            "//n",
            "//e/m",
            "/a//k",
            "/a/*/e",
            "/a[d/e/m]",
            "//g[m]",
            "/x",
            "/a/z",
            ".[//k][//m]",
        ];
        for config in [SynopsisConfig::sets(1000), SynopsisConfig::hashes(1000)] {
            let mut synopsis = Synopsis::from_documents(config, &docs);
            synopsis.prepare();
            let est = SelectivityEstimator::new(&synopsis);
            for p_text in patterns {
                let p = pat(p_text);
                let expected = exact_fraction(&docs, &p);
                let got = est.selectivity(&p);
                assert!(
                    (got - expected).abs() < 1e-9,
                    "{p_text}: expected {expected}, got {got} ({:?})",
                    config.kind
                );
            }
        }
    }

    #[test]
    fn counter_mode_matches_paper_example_for_mutually_exclusive_branches() {
        // Section 3.2: counters estimate P(a[b][d]) as 1/2 * 1/2 = 1/4 even
        // though the true value is 0.
        let docs = figure2_documents();
        let synopsis = Synopsis::from_documents(SynopsisConfig::counters(), &docs);
        let est = SelectivityEstimator::new(&synopsis);
        let p = pat("/a[b][d]");
        assert!((est.selectivity(&p) - 0.25).abs() < 1e-9);
        assert_eq!(exact_fraction(&docs, &p), 0.0);
    }

    #[test]
    fn counter_mode_underestimates_correlated_branches() {
        // Section 3.2: P(a[c/f][c/o]) is under-estimated by counters (the
        // true value is 1/3 because f and o co-occur under c).
        let docs = figure2_documents();
        let synopsis = Synopsis::from_documents(SynopsisConfig::counters(), &docs);
        let est = SelectivityEstimator::new(&synopsis);
        let p = pat("/a[c/f][c/o]");
        let counters_estimate = est.selectivity(&p);
        let truth = exact_fraction(&docs, &p);
        assert!((truth - 1.0 / 3.0).abs() < 1e-9);
        assert!(
            counters_estimate < truth,
            "counters ({counters_estimate}) should under-estimate {truth}"
        );
    }

    #[test]
    fn hash_mode_captures_cross_pattern_correlations() {
        // The same two queries evaluated with hash samples should be exact
        // here (small stream, large capacity).
        let docs = figure2_documents();
        let mut synopsis = Synopsis::from_documents(SynopsisConfig::hashes(100), &docs);
        synopsis.prepare();
        let est = SelectivityEstimator::new(&synopsis);
        assert!((est.selectivity(&pat("/a[b][d]")) - 0.0).abs() < 1e-9);
        assert!((est.selectivity(&pat("/a[c/f][c/o]")) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn negative_queries_evaluate_to_zero() {
        let docs = figure2_documents();
        for config in [
            SynopsisConfig::counters(),
            SynopsisConfig::sets(100),
            SynopsisConfig::hashes(100),
        ] {
            let synopsis = Synopsis::from_documents(config, &docs);
            let est = SelectivityEstimator::new(&synopsis);
            for p_text in ["/zzz", "/a/zzz", "//zzz", "/a[b][zzz]", "/b/a"] {
                assert_eq!(
                    est.selectivity(&pat(p_text)),
                    0.0,
                    "{p_text} should be a negative query"
                );
            }
        }
    }

    #[test]
    fn bare_root_has_selectivity_one() {
        let docs = figure2_documents();
        let synopsis = Synopsis::from_documents(SynopsisConfig::hashes(100), &docs);
        let est = SelectivityEstimator::new(&synopsis);
        assert_eq!(est.selectivity(&pat("/.")), 1.0);
    }

    #[test]
    fn empty_synopsis_gives_zero_selectivity() {
        let synopsis = Synopsis::new(SynopsisConfig::hashes(16));
        let est = SelectivityEstimator::new(&synopsis);
        assert_eq!(est.selectivity(&pat("/a")), 0.0);
    }

    #[test]
    fn joint_selectivity_equals_selectivity_of_conjunction() {
        let docs = figure2_documents();
        let mut synopsis = Synopsis::from_documents(SynopsisConfig::hashes(100), &docs);
        synopsis.prepare();
        let est = SelectivityEstimator::new(&synopsis);
        let p = pat("/a/b");
        let q = pat("//n");
        let joint = est.joint_selectivity(&p, &q);
        let exact =
            docs.iter().filter(|d| p.matches(d) && q.matches(d)).count() as f64 / docs.len() as f64;
        assert!((joint - exact).abs() < 1e-9);
    }

    #[test]
    fn descendant_matches_empty_path() {
        // /a//e : e directly below a's children... and /a//a should match
        // documents whose root is a (empty descendant path).
        let docs = figure2_documents();
        let mut synopsis = Synopsis::from_documents(SynopsisConfig::sets(100), &docs);
        synopsis.prepare();
        let est = SelectivityEstimator::new(&synopsis);
        assert_eq!(est.selectivity(&pat("//a")), 1.0);
        let expected = exact_fraction(&docs, &pat("/a//e"));
        assert!((est.selectivity(&pat("/a//e")) - expected).abs() < 1e-9);
    }

    #[test]
    fn folded_labels_still_satisfy_patterns() {
        // Fold the mandatory child "b" into "a"; /a/b must still evaluate to
        // (approximately) the documents of S(a).
        let docs: Vec<XmlTree> = ["<a><b/><c/></a>", "<a><b/></a>", "<a><b/><d/></a>"]
            .iter()
            .map(|s| XmlTree::parse(s).unwrap())
            .collect();
        let mut synopsis = Synopsis::from_documents(SynopsisConfig::sets(100), &docs);
        let folds = synopsis.fold_identical_leaves(0.999);
        assert!(folds >= 1);
        synopsis.prepare();
        let est = SelectivityEstimator::new(&synopsis);
        assert!((est.selectivity(&pat("/a/b")) - 1.0).abs() < 1e-9);
        assert!((est.selectivity(&pat("//b")) - 1.0).abs() < 1e-9);
        assert!((est.selectivity(&pat("/a[b][c]")) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn estimates_survive_heavy_pruning() {
        let docs = figure2_documents();
        let mut synopsis = Synopsis::from_documents(SynopsisConfig::hashes(100), &docs);
        synopsis.prune_to_ratio(0.5, tps_synopsis::PruneConfig::default());
        synopsis.prepare();
        let est = SelectivityEstimator::new(&synopsis);
        for p_text in ["/a", "/a/b", "//n", "/a[b][d]"] {
            let sel = est.selectivity(&pat(p_text));
            assert!((0.0..=1.0).contains(&sel), "{p_text} out of range: {sel}");
        }
        // The root path is always preserved.
        assert_eq!(est.selectivity(&pat("/a")), 1.0);
    }

    #[test]
    fn wildcard_branches_combine_correctly() {
        let docs = figure2_documents();
        let mut synopsis = Synopsis::from_documents(SynopsisConfig::sets(100), &docs);
        synopsis.prepare();
        let est = SelectivityEstimator::new(&synopsis);
        for p_text in ["/a/*[e][g]", "/*/b", "/*[d]"] {
            let p = pat(p_text);
            let expected = exact_fraction(&docs, &p);
            assert!(
                (est.selectivity(&p) - expected).abs() < 1e-9,
                "{p_text}: expected {expected}, got {}",
                est.selectivity(&p)
            );
        }
    }
}
