//! Vendored stand-in for the `criterion` benchmark harness (API subset).
//!
//! The build environment of this workspace has no access to crates.io, so
//! this package supplies — under the same crate name, macros and call
//! syntax — the slice of the Criterion 0.5 API used by the `tps-bench`
//! benches: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`BatchSize`], [`black_box`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Instead of Criterion's statistical sampling it runs every benchmark for a
//! fixed, small number of *warm-up* iterations (untimed, to populate caches
//! and branch predictors; override with `TPS_BENCH_WARMUP`) followed by a
//! fixed number of individually-timed iterations (override with
//! `TPS_BENCH_ITERS`), and prints one line per benchmark with the mean,
//! minimum and maximum nanoseconds per iteration — enough to compare hot
//! paths (and their variance) between commits while keeping `cargo bench`
//! runs fast.
//!
//! When `TPS_BENCH_JSON` names a file, every completed benchmark also
//! records its result in that file as a JSON document of the shape
//! `{"benchmarks": [{"id", "mean_ns", "min_ns", "max_ns", "iters",
//! "warmup"}, …]}`. The file is rewritten after each benchmark (so it is
//! valid JSON at all times), and records already present from *other*
//! bench targets — each target is its own process — are preserved unless
//! re-measured, so a multi-target `cargo bench` accumulates one combined
//! snapshot. CI's bench-snapshot step uses this to diff the perf
//! trajectory against a committed snapshot.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn env_count(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn iterations() -> u64 {
    env_count("TPS_BENCH_ITERS", 5).max(1)
}

fn warmup_iterations() -> u64 {
    env_count("TPS_BENCH_WARMUP", 2)
}

/// How batched inputs are grouped (accepted for API compatibility; every
/// batch holds exactly one input here).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Throughput annotation (accepted and ignored).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Values accepted where Criterion takes either a string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Convert into a concrete [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::from_parameter(self)
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::from_parameter(self)
    }
}

/// Timing state handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    warmup: u64,
    /// One entry per timed iteration.
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`: `warmup` untimed iterations, then one timing sample
    /// per configured iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.warmup {
            black_box(routine());
        }
        self.samples.clear();
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` over fresh inputs produced by `setup`; only the
    /// routine is timed (warm-up inputs included).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.warmup {
            let input = setup();
            black_box(routine(input));
        }
        self.samples.clear();
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// One completed benchmark, as recorded in the `TPS_BENCH_JSON` file.
struct JsonRecord {
    id: String,
    mean_ns: u128,
    min_ns: u128,
    max_ns: u128,
    iters: usize,
    warmup: u64,
}

/// Sink state for the `TPS_BENCH_JSON` file.
///
/// `cargo bench` runs each bench target as its own process, all pointed at
/// the same file; on its first write a process therefore loads the file's
/// existing record lines and *preserves* every benchmark it does not itself
/// re-measure, so consecutive targets accumulate into one snapshot instead
/// of clobbering each other. The file is rewritten in full after every
/// benchmark, so it is valid JSON at all times.
#[derive(Default)]
struct JsonSink {
    /// `(escaped id, rendered record line)` pairs carried over from the
    /// pre-existing file.
    preserved: Vec<(String, String)>,
    /// Benchmarks completed by this process.
    records: Vec<JsonRecord>,
    loaded: bool,
}

fn json_sink() -> &'static Mutex<JsonSink> {
    static SINK: OnceLock<Mutex<JsonSink>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(JsonSink::default()))
}

/// Extract the escaped `id` value from one rendered record line.
fn line_id(line: &str) -> Option<&str> {
    let rest = line.trim_start().strip_prefix("{\"id\": \"")?;
    let mut end = 0;
    let bytes = rest.as_bytes();
    while end < bytes.len() {
        match bytes[end] {
            b'"' => return Some(&rest[..end]),
            b'\\' => end += 2,
            _ => end += 1,
        }
    }
    None
}

/// Load the record lines of a previously written snapshot file.
fn load_existing_records(path: &str) -> Vec<(String, String)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let record = line.trim().trim_end_matches(',');
            let id = line_id(record)?;
            Some((id.to_string(), record.to_string()))
        })
        .collect()
}

fn render_record(r: &JsonRecord) -> String {
    format!(
        "{{\"id\": \"{}\", \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"iters\": {}, \"warmup\": {}}}",
        json_escape(&r.id),
        r.mean_ns,
        r.min_ns,
        r.max_ns,
        r.iters,
        r.warmup,
    )
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => r#"\""#.chars().collect::<Vec<_>>(),
            '\\' => r"\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn record_json(record: JsonRecord) {
    let Ok(path) = std::env::var("TPS_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    record_json_to(&path, record);
}

fn record_json_to(path: &str, record: JsonRecord) {
    let mut sink = json_sink().lock().unwrap_or_else(|e| e.into_inner());
    if !sink.loaded {
        sink.preserved = load_existing_records(path);
        sink.loaded = true;
    }
    sink.records.push(record);
    // Foreign records (other bench targets) first, unless this process has
    // re-measured the same id; then everything measured here.
    let fresh_ids: Vec<String> = sink.records.iter().map(|r| json_escape(&r.id)).collect();
    let lines: Vec<String> = sink
        .preserved
        .iter()
        .filter(|(id, _)| !fresh_ids.contains(id))
        .map(|(_, line)| line.clone())
        .chain(sink.records.iter().map(render_record))
        .collect();
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, line) in lines.iter().enumerate() {
        out.push_str("    ");
        out.push_str(line);
        out.push_str(if i + 1 < lines.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    if let Err(err) = std::fs::write(path, out) {
        eprintln!("bench: could not write TPS_BENCH_JSON file {path}: {err}");
    }
}

fn run_benchmark(full_id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iters: iterations(),
        warmup: warmup_iterations(),
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("bench: {full_id:<60} (no samples)");
        return;
    }
    let nanos: Vec<u128> = bencher.samples.iter().map(Duration::as_nanos).collect();
    let mean = nanos.iter().sum::<u128>() / nanos.len() as u128;
    let min = *nanos.iter().min().expect("non-empty samples");
    let max = *nanos.iter().max().expect("non-empty samples");
    println!(
        "bench: {full_id:<60} {mean:>14} ns/iter  (min {min}, max {max}, {} iters + {} warmup)",
        nanos.len(),
        bencher.warmup
    );
    record_json(JsonRecord {
        id: full_id.to_string(),
        mean_ns: mean,
        min_ns: min,
        max_ns: max,
        iters: nanos.len(),
        warmup: bencher.warmup,
    });
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&id.into_benchmark_id().id, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: group_name.into(),
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; sampling is fixed in this shim.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; measurement time is fixed in this shim.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Accepted and ignored.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_benchmark(&full, &mut f);
        self
    }

    /// Run one benchmark that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_benchmark(&full, &mut |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate the `main` function running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_one_sample_per_iteration_after_warmup() {
        let mut calls = 0u64;
        let mut bencher = Bencher {
            iters: 4,
            warmup: 3,
            samples: Vec::new(),
        };
        bencher.iter(|| calls += 1);
        assert_eq!(calls, 7, "3 warm-up + 4 timed iterations");
        assert_eq!(bencher.samples.len(), 4);
    }

    #[test]
    fn iter_batched_sets_up_fresh_inputs_for_warmup_and_samples() {
        let mut setups = 0u64;
        let mut bencher = Bencher {
            iters: 2,
            warmup: 1,
            samples: Vec::new(),
        };
        bencher.iter_batched(
            || {
                setups += 1;
                setups
            },
            |input| input * 2,
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 3, "1 warm-up + 2 timed setups");
        assert_eq!(bencher.samples.len(), 2);
    }

    #[test]
    fn env_count_falls_back_to_default() {
        assert_eq!(env_count("TPS_BENCH_NO_SUCH_VAR", 7), 7);
    }

    #[test]
    fn json_escape_handles_quotes_and_control_characters() {
        assert_eq!(json_escape("plain/id_42"), "plain/id_42");
        assert_eq!(json_escape(r#"a"b"#), r#"a\"b"#);
        assert_eq!(json_escape("a\\b"), r"a\\b");
        assert_eq!(json_escape("a\nb"), "a\\u000ab");
    }

    #[test]
    fn json_records_merge_with_existing_files_and_render_valid_shape() {
        // Exercise the record path end to end through a scratch file that
        // already carries another bench target's records plus a stale
        // measurement of the id re-measured here. (Single test for the
        // stateful sink: the process-global `loaded` flag only reads the
        // pre-existing file once.)
        let path =
            std::env::temp_dir().join(format!("tps-bench-json-test-{}.json", std::process::id()));
        std::fs::write(
            &path,
            concat!(
                "{\n  \"benchmarks\": [\n",
                "    {\"id\": \"other_target/kept\", \"mean_ns\": 7, \"min_ns\": 7, \"max_ns\": 7, \"iters\": 1, \"warmup\": 0},\n",
                "    {\"id\": \"group/case\", \"mean_ns\": 999999, \"min_ns\": 9, \"max_ns\": 9, \"iters\": 1, \"warmup\": 0}\n",
                "  ]\n}\n"
            ),
        )
        .unwrap();
        // Call the path-taking layer directly: mutating TPS_BENCH_JSON via
        // set_var would race with sibling tests reading the environment on
        // other threads.
        record_json_to(
            path.to_str().unwrap(),
            JsonRecord {
                id: "group/case".to_string(),
                mean_ns: 100,
                min_ns: 90,
                max_ns: 120,
                iters: 5,
                warmup: 2,
            },
        );
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(text.contains("\"benchmarks\""), "{text}");
        // The foreign target's record survives; the stale measurement of
        // the re-measured id is replaced by the fresh one.
        assert!(text.contains("\"id\": \"other_target/kept\""), "{text}");
        assert!(text.contains("\"id\": \"group/case\""));
        assert!(text.contains("\"mean_ns\": 100"));
        assert!(!text.contains("999999"), "{text}");
        assert!(text.trim_end().ends_with('}'));
    }

    #[test]
    fn line_id_handles_escapes_and_rejects_non_records() {
        assert_eq!(
            line_id(r#"{"id": "group/case", "mean_ns": 1}"#),
            Some("group/case")
        );
        assert_eq!(
            line_id(r#"  {"id": "we\"ird", "mean_ns": 1}"#),
            Some(r#"we\"ird"#)
        );
        assert_eq!(line_id("\"benchmarks\": ["), None);
        assert_eq!(line_id("{"), None);
    }

    #[test]
    fn load_existing_records_reads_record_lines_only() {
        let path = std::env::temp_dir().join(format!(
            "tps-bench-json-load-test-{}.json",
            std::process::id()
        ));
        std::fs::write(
            &path,
            "{\n  \"benchmarks\": [\n    {\"id\": \"a/b\", \"mean_ns\": 1, \"min_ns\": 1, \"max_ns\": 1, \"iters\": 1, \"warmup\": 0}\n  ]\n}\n",
        )
        .unwrap();
        let records = load_existing_records(path.to_str().unwrap());
        std::fs::remove_file(&path).ok();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].0, "a/b");
        assert!(records[0].1.starts_with("{\"id\": \"a/b\""));
        assert!(load_existing_records("/nonexistent/snapshot.json").is_empty());
    }
}
