//! Vendored stand-in for the `criterion` benchmark harness (API subset).
//!
//! The build environment of this workspace has no access to crates.io, so
//! this package supplies — under the same crate name, macros and call
//! syntax — the slice of the Criterion 0.5 API used by the `tps-bench`
//! benches: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`BatchSize`], [`black_box`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Instead of Criterion's statistical sampling it runs every benchmark for a
//! fixed, small number of *warm-up* iterations (untimed, to populate caches
//! and branch predictors; override with `TPS_BENCH_WARMUP`) followed by a
//! fixed number of individually-timed iterations (override with
//! `TPS_BENCH_ITERS`), and prints one line per benchmark with the mean,
//! minimum and maximum nanoseconds per iteration — enough to compare hot
//! paths (and their variance) between commits while keeping `cargo bench`
//! runs fast.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn env_count(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn iterations() -> u64 {
    env_count("TPS_BENCH_ITERS", 5).max(1)
}

fn warmup_iterations() -> u64 {
    env_count("TPS_BENCH_WARMUP", 2)
}

/// How batched inputs are grouped (accepted for API compatibility; every
/// batch holds exactly one input here).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Throughput annotation (accepted and ignored).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Values accepted where Criterion takes either a string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Convert into a concrete [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::from_parameter(self)
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::from_parameter(self)
    }
}

/// Timing state handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    warmup: u64,
    /// One entry per timed iteration.
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`: `warmup` untimed iterations, then one timing sample
    /// per configured iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.warmup {
            black_box(routine());
        }
        self.samples.clear();
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` over fresh inputs produced by `setup`; only the
    /// routine is timed (warm-up inputs included).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.warmup {
            let input = setup();
            black_box(routine(input));
        }
        self.samples.clear();
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark(full_id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iters: iterations(),
        warmup: warmup_iterations(),
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("bench: {full_id:<60} (no samples)");
        return;
    }
    let nanos: Vec<u128> = bencher.samples.iter().map(Duration::as_nanos).collect();
    let mean = nanos.iter().sum::<u128>() / nanos.len() as u128;
    let min = *nanos.iter().min().expect("non-empty samples");
    let max = *nanos.iter().max().expect("non-empty samples");
    println!(
        "bench: {full_id:<60} {mean:>14} ns/iter  (min {min}, max {max}, {} iters + {} warmup)",
        nanos.len(),
        bencher.warmup
    );
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&id.into_benchmark_id().id, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: group_name.into(),
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; sampling is fixed in this shim.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; measurement time is fixed in this shim.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Accepted and ignored.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_benchmark(&full, &mut f);
        self
    }

    /// Run one benchmark that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_benchmark(&full, &mut |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate the `main` function running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_one_sample_per_iteration_after_warmup() {
        let mut calls = 0u64;
        let mut bencher = Bencher {
            iters: 4,
            warmup: 3,
            samples: Vec::new(),
        };
        bencher.iter(|| calls += 1);
        assert_eq!(calls, 7, "3 warm-up + 4 timed iterations");
        assert_eq!(bencher.samples.len(), 4);
    }

    #[test]
    fn iter_batched_sets_up_fresh_inputs_for_warmup_and_samples() {
        let mut setups = 0u64;
        let mut bencher = Bencher {
            iters: 2,
            warmup: 1,
            samples: Vec::new(),
        };
        bencher.iter_batched(
            || {
                setups += 1;
                setups
            },
            |input| input * 2,
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 3, "1 warm-up + 2 timed setups");
        assert_eq!(bencher.samples.len(), 2);
    }

    #[test]
    fn env_count_falls_back_to_default() {
        assert_eq!(env_count("TPS_BENCH_NO_SUCH_VAR", 7), 7);
    }
}
