//! Vendored stand-in for the `rand` crate (0.8-style API subset).
//!
//! The build environment of this workspace has no access to crates.io, so
//! this package provides — under the same crate name and call syntax — the
//! exact slice of the `rand` 0.8 API the workspace uses:
//!
//! * [`rngs::StdRng`] with [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen`], [`Rng::gen_range`] and [`Rng::gen_bool`],
//! * [`seq::SliceRandom::choose`], [`seq::SliceRandom::choose_multiple`]
//!   and [`seq::SliceRandom::shuffle`].
//!
//! `StdRng` is a xoshiro256++ generator seeded through SplitMix64. It does
//! not reproduce upstream `rand`'s stream, but every consumer in this
//! workspace only relies on *determinism for a fixed seed*, which this
//! implementation guarantees (the state transition is pure integer
//! arithmetic, identical on every platform).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Produce the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Produce 32 uniformly distributed bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the full bit pattern of the
/// generator (the `Standard` distribution of upstream `rand`).
pub trait StandardValue: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardValue for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }
}

impl StandardValue for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / 16_777_216.0)
    }
}

impl StandardValue for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardValue for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a uniform value can be drawn from (`gen_range` argument).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                ((self.start as i128) + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = ((end as i128) - (start as i128) + 1) as u128;
                let offset = (rng.next_u64() as u128) % span;
                ((start as i128) + offset as i128) as $t
            }
        }
    )*};
}
impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        // 53-bit grid including both endpoints.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_991.0);
        start + unit * (end - start)
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value from the standard (full bit pattern) distribution.
    fn gen<T: StandardValue>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Return `true` with probability `p` (which must lie in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut x = state;
            let s = [
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Random operations on slices.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// A uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in random order (fewer if the slice is
        /// shorter than `amount`).
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..indices.len());
                indices.swap(i, j);
            }
            indices
                .into_iter()
                .take(amount)
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn identical_seeds_reproduce_identical_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(3usize..=17);
            assert!((3..=17).contains(&w));
            let f = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_and_choose_are_permutations() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let picked: Vec<usize> = v.choose_multiple(&mut rng, 2).copied().collect();
        assert_eq!(picked.len(), 2);
        assert_ne!(picked[0], picked[1]);
    }
}
