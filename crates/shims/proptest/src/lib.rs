//! Vendored stand-in for the `proptest` crate (API subset).
//!
//! The build environment of this workspace has no access to crates.io, so
//! this package supplies — under the same crate name and call syntax — the
//! slice of the proptest 1.x API used by the workspace's property suites:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map`, `prop_filter`, `prop_flat_map`,
//!   `prop_recursive` and `boxed`,
//! * range, tuple, [`Just`](strategy::Just), [`any`](arbitrary::any) and regex-string strategies,
//! * [`collection::vec`] and [`collection::btree_set`],
//! * [`sample::select`],
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], [`prop_assert_ne!`] and [`prop_assume!`] macros.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-case seed (FNV-1a of the test name mixed with the case index) so
//! failures are reproducible, and shrinking is **minimal**: instead of
//! walking a shrink tree, a failing case is regenerated from its own seed
//! while a *size factor* in `(0, 1]` is binary-searched toward `0`. The
//! factor scales every size-like choice a strategy makes — numeric range
//! spans, collection lengths, recursion depth, regex repeats — so smaller
//! factors reproduce the same random decisions over smaller domains. The
//! smallest factor that still fails is reported together with its
//! regenerated (minimal) input and the original failing input.
#![forbid(unsafe_code)]

/// Test-case bookkeeping: configuration, runner and error types.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Subset of `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Upper bound on rejected (filtered or assumed-away) inputs.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    impl ProptestConfig {
        /// A default configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case failed an assertion.
        Fail(String),
        /// The case asked to be discarded (`prop_assume!`).
        Reject(String),
    }

    impl TestCaseError {
        /// A failing case with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        /// A discarded case with the given reason.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }

    /// Outcome of one test case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Drives value generation for one property test.
    pub struct TestRunner {
        rng: StdRng,
        /// The configuration the surrounding `proptest!` block runs under.
        pub config: ProptestConfig,
        size_factor: f64,
    }

    fn fnv1a(name: &str) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Deterministic per-test base seed (FNV-1a of the test name).
    pub fn seed_from_name(name: &str) -> u64 {
        fnv1a(name)
    }

    /// Mix the per-test base seed with a case index into the case's own
    /// seed (splitmix64 finaliser), so every case can be regenerated in
    /// isolation — the hook shrinking relies on.
    pub fn case_seed(base: u64, attempt: u64) -> u64 {
        let mut z = base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRunner {
        /// A runner with an explicit seed (full-size generation).
        pub fn new(config: ProptestConfig, seed: u64) -> Self {
            Self::with_size_factor(config, seed, 1.0)
        }

        /// A runner with an explicit seed and size factor in `(0, 1]`.
        /// Strategies scale their size-like choices by the factor, which is
        /// how shrinking regenerates a failing case "smaller".
        pub fn with_size_factor(config: ProptestConfig, seed: u64, size_factor: f64) -> Self {
            TestRunner {
                rng: StdRng::seed_from_u64(seed),
                config,
                size_factor: size_factor.clamp(0.0, 1.0),
            }
        }

        /// A runner deterministically seeded from the test function name.
        pub fn from_test_name(config: ProptestConfig, name: &str) -> Self {
            Self::new(config, fnv1a(name))
        }

        /// The runner's random source.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }

        /// The current size factor (`1.0` = full-size generation).
        pub fn size_factor(&self) -> f64 {
            self.size_factor
        }

        /// Scale a count of possible values by the size factor, never below
        /// `1` so every strategy still yields a value (used for numeric
        /// range spans).
        pub fn scaled_count(&self, count: u128) -> u128 {
            if self.size_factor >= 1.0 || count <= 1 {
                return count;
            }
            ((count as f64) * self.size_factor).ceil().max(1.0) as u128
        }

        /// Scale a width beyond a minimum (extra collection length,
        /// recursion depth, repeat count); shrinks all the way to `0`.
        pub fn scaled_extra(&self, extra: u64) -> u64 {
            if self.size_factor >= 1.0 {
                return extra;
            }
            ((extra as f64) * self.size_factor).floor() as u64
        }
    }

    /// Binary-search the size factor toward `0`, keeping the smallest
    /// factor whose regenerated case still fails. `probe(factor)` re-runs
    /// the failing case at `factor` and returns `Some((input, message))`
    /// when it still fails. Returns the minimal `(factor, input, message)`
    /// found, or `None` when no probe below `1.0` failed.
    pub fn shrink_search<F>(mut probe: F, steps: u32) -> Option<(f64, String, String)>
    where
        F: FnMut(f64) -> Option<(String, String)>,
    {
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        let mut best: Option<(f64, String, String)> = None;
        for _ in 0..steps {
            let mid = (lo + hi) / 2.0;
            match probe(mid) {
                Some((input, message)) => {
                    best = Some((mid, input, message));
                    hi = mid;
                }
                None => lo = mid,
            }
        }
        best
    }
}

/// The [`Strategy`](strategy::Strategy) trait and its combinators.
pub mod strategy {
    use crate::test_runner::TestRunner;
    use rand::Rng;
    use std::rc::Rc;

    /// Why a strategy could not produce a value (filter exhaustion).
    #[derive(Clone, Debug)]
    pub struct Rejection(pub String);

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value (or a rejection, e.g. from `prop_filter`).
        fn new_value(&self, runner: &mut TestRunner) -> Result<Self::Value, Rejection>;

        /// Transform every generated value with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Keep only values satisfying `f`; `whence` names the filter in
        /// rejection reports.
        fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                source: self,
                whence: whence.into(),
                f,
            }
        }

        /// Generate a value, then generate from the strategy `f` derives
        /// from it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { source: self, f }
        }

        /// Build recursive values: `self` generates leaves and `recurse`
        /// wraps an inner strategy into the next nesting level. `depth`
        /// bounds the nesting; the size hints are accepted for API
        /// compatibility.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
        {
            Recursive {
                base: self.boxed(),
                recurse: Rc::new(move |inner| recurse(inner).boxed()),
                depth,
            }
        }

        /// Type-erase the strategy (the result is cheaply cloneable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A cloneable, type-erased [`Strategy`].
    pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn new_value(&self, runner: &mut TestRunner) -> Result<V, Rejection> {
            self.0.new_value(runner)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, runner: &mut TestRunner) -> Result<O, Rejection> {
            Ok((self.f)(self.source.new_value(runner)?))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone, Debug)]
    pub struct Filter<S, F> {
        source: S,
        whence: String,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn new_value(&self, runner: &mut TestRunner) -> Result<S::Value, Rejection> {
            for _ in 0..64 {
                let value = self.source.new_value(runner)?;
                if (self.f)(&value) {
                    return Ok(value);
                }
            }
            Err(Rejection(self.whence.clone()))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn new_value(&self, runner: &mut TestRunner) -> Result<S2::Value, Rejection> {
            let seed = self.source.new_value(runner)?;
            (self.f)(seed).new_value(runner)
        }
    }

    /// A strategy producing clones of a fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _runner: &mut TestRunner) -> Result<T, Rejection> {
            Ok(self.0.clone())
        }
    }

    /// Uniform choice between several strategies of a common value type
    /// (the expansion of [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over the given non-empty list of options.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn new_value(&self, runner: &mut TestRunner) -> Result<V, Rejection> {
            let len = self.options.len();
            let start = runner.rng().gen_range(0..len);
            let mut last = None;
            // If the chosen arm rejects (filters), fall through to the
            // remaining arms before giving up on the whole union.
            for offset in 0..len {
                match self.options[(start + offset) % len].new_value(runner) {
                    Ok(value) => return Ok(value),
                    Err(rejection) => last = Some(rejection),
                }
            }
            Err(last.expect("non-empty union"))
        }
    }

    /// See [`Strategy::prop_recursive`].
    pub struct Recursive<V> {
        base: BoxedStrategy<V>,
        recurse: Rc<dyn Fn(BoxedStrategy<V>) -> BoxedStrategy<V>>,
        depth: u32,
    }

    impl<V> Clone for Recursive<V> {
        fn clone(&self) -> Self {
            Recursive {
                base: self.base.clone(),
                recurse: Rc::clone(&self.recurse),
                depth: self.depth,
            }
        }
    }

    impl<V> Strategy for Recursive<V> {
        type Value = V;

        fn new_value(&self, runner: &mut TestRunner) -> Result<V, Rejection> {
            // Shrinking support: nesting depth scales with the size factor
            // (a factor near 0 generates leaves only).
            let depth = runner.scaled_extra(u64::from(self.depth)) as u32;
            let levels = runner.rng().gen_range(0..=depth);
            let mut strategy = self.base.clone();
            for _ in 0..levels {
                strategy = (self.recurse)(strategy);
            }
            strategy.new_value(runner)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, runner: &mut TestRunner) -> Result<$t, Rejection> {
                    // Shrinking support: scale the span toward the lower
                    // bound by the runner's size factor (at least one value
                    // stays generable).
                    let span = (self.end as i128) - (self.start as i128);
                    if span <= 1 {
                        return Ok(runner.rng().gen_range(self.clone()));
                    }
                    let scaled = runner.scaled_count(span as u128) as i128;
                    let end = ((self.start as i128) + scaled) as $t;
                    Ok(runner.rng().gen_range(self.start..end))
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, runner: &mut TestRunner) -> Result<$t, Rejection> {
                    let span = (*self.end() as i128) - (*self.start() as i128);
                    if span <= 0 {
                        return Ok(runner.rng().gen_range(self.clone()));
                    }
                    let count = span as u128 + 1;
                    let scaled = runner.scaled_count(count) as i128;
                    let end = ((*self.start() as i128) + scaled - 1) as $t;
                    Ok(runner.rng().gen_range(*self.start()..=end))
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn new_value(&self, runner: &mut TestRunner) -> Result<f64, Rejection> {
            let factor = runner.size_factor();
            if factor >= 1.0 {
                return Ok(runner.rng().gen_range(self.clone()));
            }
            let end = self.start + (self.end - self.start) * factor;
            if end > self.start {
                Ok(runner.rng().gen_range(self.start..end))
            } else {
                Ok(self.start)
            }
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;

        fn new_value(&self, runner: &mut TestRunner) -> Result<f64, Rejection> {
            let factor = runner.size_factor();
            if factor >= 1.0 {
                return Ok(runner.rng().gen_range(self.clone()));
            }
            let end = self.start() + (self.end() - self.start()) * factor;
            Ok(runner.rng().gen_range(*self.start()..=end))
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn new_value(&self, runner: &mut TestRunner) -> Result<Self::Value, Rejection> {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    Ok(($($name.new_value(runner)?,)+))
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Regex-subset string strategy: a `&str` literal *is* a strategy whose
    /// values are strings matching the pattern (see [`crate::string`]).
    impl Strategy for &'static str {
        type Value = String;

        fn new_value(&self, runner: &mut TestRunner) -> Result<String, Rejection> {
            Ok(crate::string::generate(self, runner))
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::{Rejection, Strategy};
    use crate::test_runner::TestRunner;
    use rand::{Rng, StandardValue};
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;

        /// The canonical strategy value.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Full-bit-pattern strategy backing `any` for primitive types.
    #[derive(Clone, Debug, Default)]
    pub struct StandardAny<T>(PhantomData<T>);

    impl<T: StandardValue> Strategy for StandardAny<T> {
        type Value = T;

        fn new_value(&self, runner: &mut TestRunner) -> Result<T, Rejection> {
            Ok(runner.rng().gen::<T>())
        }
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = StandardAny<$t>;

                fn arbitrary() -> Self::Strategy {
                    StandardAny(PhantomData)
                }
            }
        )*};
    }
    impl_arbitrary!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use crate::strategy::{Rejection, Strategy};
    use crate::test_runner::TestRunner;
    use rand::Rng;
    use std::collections::BTreeSet;

    /// Accepted sizes for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl SizeRange {
        fn pick(&self, runner: &mut TestRunner) -> usize {
            // Shrinking support: the length beyond the required minimum
            // scales with the size factor.
            let extra = runner.scaled_extra((self.max_inclusive - self.min) as u64) as usize;
            runner.rng().gen_range(self.min..=self.min + extra)
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max_inclusive: exact,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(range: core::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty collection size range");
            SizeRange {
                min: range.start,
                max_inclusive: range.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: core::ops::RangeInclusive<usize>) -> Self {
            assert!(range.start() <= range.end(), "empty collection size range");
            SizeRange {
                min: *range.start(),
                max_inclusive: *range.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with sizes drawn from a [`SizeRange`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector strategy with the given element strategy and size range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, runner: &mut TestRunner) -> Result<Vec<S::Value>, Rejection> {
            let len = self.size.pick(runner);
            (0..len).map(|_| self.element.new_value(runner)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A set strategy with the given element strategy and size range. The
    /// element domain must be large enough to reach the minimum size.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn new_value(&self, runner: &mut TestRunner) -> Result<BTreeSet<S::Value>, Rejection> {
            let target = self.size.pick(runner);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 16 + 64 {
                set.insert(self.element.new_value(runner)?);
                attempts += 1;
            }
            if set.len() < self.size.min {
                return Err(Rejection(format!(
                    "btree_set: could not reach minimum size {} (domain too small?)",
                    self.size.min
                )));
            }
            Ok(set)
        }
    }
}

/// Sampling strategies over fixed option lists.
pub mod sample {
    use crate::strategy::{Rejection, Strategy};
    use crate::test_runner::TestRunner;
    use rand::Rng;

    /// Strategy yielding uniformly chosen clones of fixed options.
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// A strategy choosing uniformly among `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select needs options");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn new_value(&self, runner: &mut TestRunner) -> Result<T, Rejection> {
            let index = runner.rng().gen_range(0..self.options.len());
            Ok(self.options[index].clone())
        }
    }
}

/// Generation of strings from a regex subset.
///
/// Supported syntax: literal characters, `.` and `\PC` (printable ASCII),
/// escapes (`\xHH`, `\n`, `\t`, `\r`, `\d`, `\w`, `\s`, plus escaped
/// punctuation), character classes with ranges and negation, groups with
/// alternation, and the quantifiers `?`, `*`, `+`, `{n}`, `{n,}` and
/// `{n,m}` (`*`/`+`/open-ended repeats are capped at 8).
pub mod string {
    use crate::test_runner::TestRunner;
    use rand::Rng;

    #[derive(Debug, Clone)]
    enum Ast {
        Seq(Vec<Ast>),
        Alt(Vec<Ast>),
        Lit(char),
        Class {
            negated: bool,
            ranges: Vec<(char, char)>,
        },
        AnyPrintable,
        Repeat(Box<Ast>, u32, u32),
    }

    struct Parser {
        chars: Vec<char>,
        pos: usize,
    }

    const OPEN_REPEAT_CAP: u32 = 8;

    impl Parser {
        fn peek(&self) -> Option<char> {
            self.chars.get(self.pos).copied()
        }

        fn bump(&mut self) -> Option<char> {
            let c = self.peek();
            if c.is_some() {
                self.pos += 1;
            }
            c
        }

        fn parse_alternatives(&mut self) -> Ast {
            let mut alternatives = vec![self.parse_sequence()];
            while self.peek() == Some('|') {
                self.bump();
                alternatives.push(self.parse_sequence());
            }
            if alternatives.len() == 1 {
                alternatives.pop().unwrap()
            } else {
                Ast::Alt(alternatives)
            }
        }

        fn parse_sequence(&mut self) -> Ast {
            let mut items = Vec::new();
            while let Some(c) = self.peek() {
                if c == '|' || c == ')' {
                    break;
                }
                let atom = self.parse_atom();
                items.push(self.parse_quantifier(atom));
            }
            Ast::Seq(items)
        }

        fn parse_quantifier(&mut self, atom: Ast) -> Ast {
            match self.peek() {
                Some('?') => {
                    self.bump();
                    Ast::Repeat(Box::new(atom), 0, 1)
                }
                Some('*') => {
                    self.bump();
                    Ast::Repeat(Box::new(atom), 0, OPEN_REPEAT_CAP)
                }
                Some('+') => {
                    self.bump();
                    Ast::Repeat(Box::new(atom), 1, OPEN_REPEAT_CAP)
                }
                Some('{') => {
                    self.bump();
                    let mut low = String::new();
                    while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                        low.push(self.bump().unwrap());
                    }
                    let low: u32 = low.parse().expect("regex repeat lower bound");
                    let high = if self.peek() == Some(',') {
                        self.bump();
                        let mut high = String::new();
                        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                            high.push(self.bump().unwrap());
                        }
                        if high.is_empty() {
                            low + OPEN_REPEAT_CAP
                        } else {
                            high.parse().expect("regex repeat upper bound")
                        }
                    } else {
                        low
                    };
                    assert_eq!(self.bump(), Some('}'), "unterminated regex repeat");
                    Ast::Repeat(Box::new(atom), low, high)
                }
                _ => atom,
            }
        }

        fn parse_atom(&mut self) -> Ast {
            match self.bump().expect("regex atom") {
                '(' => {
                    let inner = self.parse_alternatives();
                    assert_eq!(self.bump(), Some(')'), "unterminated regex group");
                    inner
                }
                '[' => self.parse_class(),
                '\\' => self.parse_escape(),
                '.' => Ast::AnyPrintable,
                c => Ast::Lit(c),
            }
        }

        fn parse_escape(&mut self) -> Ast {
            match self.bump().expect("regex escape") {
                'x' => {
                    let hi = self.bump().expect("hex escape");
                    let lo = self.bump().expect("hex escape");
                    let code =
                        u32::from_str_radix(&format!("{hi}{lo}"), 16).expect("valid hex escape");
                    Ast::Lit(char::from_u32(code).expect("valid escape code point"))
                }
                // `\PC` — everything outside the Unicode "Other" category;
                // generate printable ASCII.
                'P' => {
                    self.bump();
                    Ast::AnyPrintable
                }
                'd' => Ast::Class {
                    negated: false,
                    ranges: vec![('0', '9')],
                },
                'w' => Ast::Class {
                    negated: false,
                    ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
                },
                's' => Ast::Lit(' '),
                'n' => Ast::Lit('\n'),
                't' => Ast::Lit('\t'),
                'r' => Ast::Lit('\r'),
                c => Ast::Lit(c),
            }
        }

        fn class_char(&mut self) -> char {
            match self.bump().expect("class member") {
                '\\' => match self.parse_escape() {
                    Ast::Lit(c) => c,
                    _ => panic!("unsupported escape inside character class"),
                },
                c => c,
            }
        }

        fn parse_class(&mut self) -> Ast {
            let negated = if self.peek() == Some('^') {
                self.bump();
                true
            } else {
                false
            };
            let mut ranges = Vec::new();
            while let Some(c) = self.peek() {
                if c == ']' {
                    self.bump();
                    return Ast::Class { negated, ranges };
                }
                let start = self.class_char();
                if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                    self.bump();
                    let end = self.class_char();
                    assert!(start <= end, "inverted class range");
                    ranges.push((start, end));
                } else {
                    ranges.push((start, start));
                }
            }
            panic!("unterminated character class");
        }
    }

    fn parse(pattern: &str) -> Ast {
        let mut parser = Parser {
            chars: pattern.chars().collect(),
            pos: 0,
        };
        let ast = parser.parse_alternatives();
        assert_eq!(parser.pos, parser.chars.len(), "trailing regex input");
        ast
    }

    fn printable(runner: &mut TestRunner) -> char {
        char::from_u32(runner.rng().gen_range(0x20u32..0x7F)).unwrap()
    }

    fn emit(ast: &Ast, runner: &mut TestRunner, out: &mut String) {
        match ast {
            Ast::Seq(items) => {
                for item in items {
                    emit(item, runner, out);
                }
            }
            Ast::Alt(alternatives) => {
                let index = runner.rng().gen_range(0..alternatives.len());
                emit(&alternatives[index], runner, out);
            }
            Ast::Lit(c) => out.push(*c),
            Ast::AnyPrintable => out.push(printable(runner)),
            Ast::Class { negated, ranges } => {
                if *negated {
                    for _ in 0..1_000 {
                        let c = printable(runner);
                        if !ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&c)) {
                            out.push(c);
                            return;
                        }
                    }
                    panic!("negated class excludes all printable ASCII");
                }
                let total: u32 = ranges
                    .iter()
                    .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                    .sum();
                let mut index = runner.rng().gen_range(0..total);
                for &(lo, hi) in ranges {
                    let size = hi as u32 - lo as u32 + 1;
                    if index < size {
                        out.push(char::from_u32(lo as u32 + index).expect("class code point"));
                        return;
                    }
                    index -= size;
                }
                unreachable!("class index in range");
            }
            Ast::Repeat(inner, low, high) => {
                // Shrinking support: repeats beyond the required minimum
                // scale with the runner's size factor.
                let extra = runner.scaled_extra(u64::from(high - low)) as u32;
                let count = runner.rng().gen_range(*low..=low + extra);
                for _ in 0..count {
                    emit(inner, runner, out);
                }
            }
        }
    }

    /// Generate one string matching `pattern`.
    pub fn generate(pattern: &str, runner: &mut TestRunner) -> String {
        let ast = parse(pattern);
        let mut out = String::new();
        emit(&ast, runner, &mut out);
        out
    }
}

/// The conventional `prop::` module alias (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::{collection, sample, strategy, string};
}

/// The conventional glob-import surface.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Fail the current test case (early `Err` return) if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current test case if `left != right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `left == right` (left: `{:?}`, right: `{:?}`)",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)+),
            __left,
            __right
        );
    }};
}

/// Fail the current test case if `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left != *__right,
            "assertion failed: `left != right` (both: `{:?}`)",
            __left
        );
    }};
}

/// Discard the current test case (does not count towards `cases`) if
/// `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a test running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
///
/// Every case runs from its own seed
/// ([`test_runner::case_seed`](crate::test_runner::case_seed) of the
/// test-name hash and the attempt index), so a failing case can be
/// regenerated in isolation. On failure the case is re-run with a
/// binary-searched size factor
/// ([`test_runner::shrink_search`](crate::test_runner::shrink_search)) and
/// the smallest still-failing input is reported next to the original one.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident ( $( $arg:pat_param in $strategy:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let __base_seed = $crate::test_runner::seed_from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                // Run one case at (seed, size factor): `Err` = generation
                // rejected, `Ok((debug-repr, body outcome))` otherwise.
                let mut __run_at = |__seed: u64, __factor: f64|
                    -> ::core::result::Result<
                        (::std::string::String, $crate::test_runner::TestCaseResult),
                        $crate::strategy::Rejection,
                    > {
                    let mut __runner = $crate::test_runner::TestRunner::with_size_factor(
                        __config.clone(),
                        __seed,
                        __factor,
                    );
                    let __values = (
                        $( $crate::strategy::Strategy::new_value(&($strategy), &mut __runner)?, )+
                    );
                    let __repr = ::std::format!("{:?}", &__values);
                    let ( $( $arg, )+ ) = __values;
                    let __result: $crate::test_runner::TestCaseResult =
                        (move || { $body ::core::result::Result::Ok(()) })();
                    ::core::result::Result::Ok((__repr, __result))
                };
                let mut __rejects: u32 = 0;
                let mut __case: u32 = 0;
                let mut __attempt: u64 = 0;
                while __case < __config.cases {
                    __attempt += 1;
                    let __seed = $crate::test_runner::case_seed(__base_seed, __attempt);
                    let __outcome = __run_at(__seed, 1.0);
                    match __outcome {
                        ::core::result::Result::Err($crate::strategy::Rejection(__why)) => {
                            __rejects += 1;
                            assert!(
                                __rejects <= __config.max_global_rejects,
                                "proptest '{}': too many rejected inputs (last: {})",
                                stringify!($name),
                                __why
                            );
                        }
                        ::core::result::Result::Ok((_, ::core::result::Result::Ok(()))) => {
                            __case += 1;
                        }
                        ::core::result::Result::Ok((
                            _,
                            ::core::result::Result::Err(
                                $crate::test_runner::TestCaseError::Reject(__why),
                            ),
                        )) => {
                            __rejects += 1;
                            assert!(
                                __rejects <= __config.max_global_rejects,
                                "proptest '{}': too many rejected cases (last: {})",
                                stringify!($name),
                                __why
                            );
                        }
                        ::core::result::Result::Ok((
                            __repr,
                            ::core::result::Result::Err(
                                $crate::test_runner::TestCaseError::Fail(__message),
                            ),
                        )) => {
                            // Shrink: binary-search the size factor toward 0,
                            // regenerating this case from its own seed; keep
                            // the smallest input that still fails.
                            let __minimal = $crate::test_runner::shrink_search(
                                |__factor| match __run_at(__seed, __factor) {
                                    ::core::result::Result::Ok((
                                        __small_repr,
                                        ::core::result::Result::Err(
                                            $crate::test_runner::TestCaseError::Fail(__small_msg),
                                        ),
                                    )) => ::core::option::Option::Some((__small_repr, __small_msg)),
                                    _ => ::core::option::Option::None,
                                },
                                12,
                            );
                            match __minimal {
                                ::core::option::Option::Some((
                                    __factor,
                                    __small_repr,
                                    __small_msg,
                                )) => panic!(
                                    "proptest '{}' failed at case {}: {}\n\
                                     minimal failing input (size factor {:.4}, seed {:#018x}): {}\n\
                                     original failing input: {}",
                                    stringify!($name),
                                    __case,
                                    __small_msg,
                                    __factor,
                                    __seed,
                                    __small_repr,
                                    __repr
                                ),
                                ::core::option::Option::None => panic!(
                                    "proptest '{}' failed at case {}: {}\n\
                                     failing input (seed {:#018x}): {}",
                                    stringify!($name),
                                    __case,
                                    __message,
                                    __seed,
                                    __repr
                                ),
                            }
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn regex_subset_generator_matches_shapes() {
        let config = ProptestConfig::with_cases(1);
        let mut runner = TestRunner::from_test_name(config, "regex_shapes");
        for _ in 0..200 {
            let s =
                crate::string::generate("[A-Za-z][A-Za-z0-9 &<>']{0,12}[A-Za-z0-9]", &mut runner);
            assert!(s.len() >= 2, "generated {s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            let t = crate::string::generate("\\PC{0,200}", &mut runner);
            assert!(t.chars().count() <= 200);
            let d = crate::string::generate(
                r"<!(ELEMENT|ATTLIST|ENTITY|DOCTYPE)? ?[A-Za-z0-9 #(),|?*+%;'\x22-]{0,80}>?",
                &mut runner,
            );
            assert!(d.starts_with("<!"), "generated {d:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples_generate_in_bounds(
            (a, b) in (0usize..10, 5u64..=9),
            x in 0.0f64..=1.0,
        ) {
            prop_assert!(a < 10);
            prop_assert!((5..=9).contains(&b));
            prop_assert!((0.0..=1.0).contains(&x));
        }

        #[test]
        fn collections_respect_size_ranges(
            v in prop::collection::vec(0usize..6, 0..30),
            s in prop::collection::btree_set(0u64..400, 1..120),
        ) {
            prop_assert!(v.len() < 30);
            prop_assert!(!s.is_empty() && s.len() < 120);
            prop_assert!(v.iter().all(|&e| e < 6));
        }

        #[test]
        fn oneof_filter_and_recursive_compose(n in recursive_depth_strategy()) {
            prop_assert!(n <= 16, "depth bound violated: {n}");
        }
    }

    fn recursive_depth_strategy() -> impl Strategy<Value = u32> {
        let leaf = prop_oneof![Just(0u32), (1u32..2).prop_map(|v| v)];
        leaf.prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner)
                .prop_map(|(a, b)| (a.max(b) + 1).min(16))
                .prop_filter("cap", |&v| v <= 16)
        })
    }

    #[test]
    fn assume_rejects_do_not_count_as_cases() {
        let mut seen = BTreeSet::new();
        let config = ProptestConfig::with_cases(8);
        let mut runner = TestRunner::from_test_name(config, "assume_check");
        for _ in 0..8 {
            seen.insert(Strategy::new_value(&(0u64..1_000_000), &mut runner).unwrap());
        }
        assert!(seen.len() > 1, "rng must advance between cases");
    }

    #[test]
    fn size_factor_scales_ranges_collections_and_recursion() {
        let config = ProptestConfig::with_cases(1);
        let mut tiny = TestRunner::with_size_factor(config.clone(), 7, 0.01);
        for _ in 0..50 {
            let v = Strategy::new_value(&(0u64..10_000), &mut tiny).unwrap();
            assert!(v < 100, "scaled range produced {v}");
            let w = Strategy::new_value(&(100i64..=10_000), &mut tiny).unwrap();
            assert!((100..200).contains(&w), "scaled inclusive range: {w}");
            let x = Strategy::new_value(&(0.0f64..=1.0), &mut tiny).unwrap();
            assert!(x <= 0.011, "scaled float range: {x}");
            let vec =
                Strategy::new_value(&crate::collection::vec(0u8..5, 2..100), &mut tiny).unwrap();
            assert_eq!(vec.len(), 2, "scaled collection keeps its minimum");
            // The leaf strategy yields 0 or 1; any recursion step would
            // increment past 1, so a tiny factor must stay at leaf values.
            let d = Strategy::new_value(&recursive_depth_strategy(), &mut tiny).unwrap();
            assert!(d <= 1, "scaled recursion generates leaves: {d}");
            let s = crate::string::generate("a{1,40}", &mut tiny);
            assert_eq!(s.len(), 1, "scaled regex repeat keeps its minimum");
        }
        // Factor 1.0 leaves the full domains reachable.
        let mut full = TestRunner::with_size_factor(ProptestConfig::with_cases(1), 7, 1.0);
        let mut max_seen = 0;
        for _ in 0..200 {
            max_seen = max_seen.max(Strategy::new_value(&(0u64..10_000), &mut full).unwrap());
        }
        assert!(max_seen > 5_000, "full-size generation covers the range");
    }

    #[test]
    fn case_seeds_are_distinct_and_stable() {
        let base = crate::test_runner::seed_from_name("some::test");
        let mut seeds = BTreeSet::new();
        for attempt in 1..=256u64 {
            seeds.insert(crate::test_runner::case_seed(base, attempt));
        }
        assert_eq!(seeds.len(), 256, "per-case seeds must not collide");
        assert_eq!(
            crate::test_runner::case_seed(base, 1),
            crate::test_runner::case_seed(base, 1),
            "per-case seeds must be deterministic"
        );
    }

    // A deliberately failing property used to exercise the shrink loop (not
    // annotated #[test]; invoked via catch_unwind below).
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        fn fails_above_nine(n in 0u64..100_000) {
            prop_assert!(n < 10, "value too large: {n}");
        }
    }

    #[test]
    fn failing_property_reports_a_minimal_input() {
        let panic = std::panic::catch_unwind(fails_above_nine).expect_err("the property must fail");
        let message = panic
            .downcast_ref::<String>()
            .expect("panic payload is the report")
            .clone();
        assert!(
            message.contains("minimal failing input (size factor"),
            "report must include the shrunk input: {message}"
        );
        assert!(
            message.contains("original failing input:"),
            "report must keep the original input: {message}"
        );
        // The minimal regenerated value must be far below the original
        // domain: with `fails iff n >= 10` over `0..100_000`, the binary
        // search lands just above the failure threshold. The input tuple is
        // the last `: `-separated field of the report line.
        let digits: String = message
            .lines()
            .find(|l| l.contains("minimal failing input"))
            .map(|l| l.rsplit(':').next().unwrap_or(""))
            .unwrap_or("")
            .chars()
            .filter(|c| c.is_ascii_digit())
            .collect();
        let minimal: u64 = digits.parse().expect("minimal input is a number");
        assert!(
            minimal < 1_000,
            "shrinking should move far below the 100 000 domain: {minimal}"
        );
        assert!(minimal >= 10, "the minimal input must still fail");
    }
}
