//! Vendored stand-in for the `proptest` crate (API subset).
//!
//! The build environment of this workspace has no access to crates.io, so
//! this package supplies — under the same crate name and call syntax — the
//! slice of the proptest 1.x API used by the workspace's property suites:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map`, `prop_filter`, `prop_flat_map`,
//!   `prop_recursive` and `boxed`,
//! * range, tuple, [`Just`](strategy::Just), [`any`](arbitrary::any) and regex-string strategies,
//! * [`collection::vec`] and [`collection::btree_set`],
//! * [`sample::select`],
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], [`prop_assert_ne!`] and [`prop_assume!`] macros.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (FNV-1a of the test name) so failures are reproducible,
//! and there is **no shrinking** — a failing case reports the failure
//! message and case index as-is.
#![forbid(unsafe_code)]

/// Test-case bookkeeping: configuration, runner and error types.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Subset of `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Upper bound on rejected (filtered or assumed-away) inputs.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    impl ProptestConfig {
        /// A default configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case failed an assertion.
        Fail(String),
        /// The case asked to be discarded (`prop_assume!`).
        Reject(String),
    }

    impl TestCaseError {
        /// A failing case with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        /// A discarded case with the given reason.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }

    /// Outcome of one test case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Drives value generation for one property test.
    pub struct TestRunner {
        rng: StdRng,
        /// The configuration the surrounding `proptest!` block runs under.
        pub config: ProptestConfig,
    }

    fn fnv1a(name: &str) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    impl TestRunner {
        /// A runner with an explicit seed.
        pub fn new(config: ProptestConfig, seed: u64) -> Self {
            TestRunner {
                rng: StdRng::seed_from_u64(seed),
                config,
            }
        }

        /// A runner deterministically seeded from the test function name.
        pub fn from_test_name(config: ProptestConfig, name: &str) -> Self {
            Self::new(config, fnv1a(name))
        }

        /// The runner's random source.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and its combinators.
pub mod strategy {
    use crate::test_runner::TestRunner;
    use rand::Rng;
    use std::rc::Rc;

    /// Why a strategy could not produce a value (filter exhaustion).
    #[derive(Clone, Debug)]
    pub struct Rejection(pub String);

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value (or a rejection, e.g. from `prop_filter`).
        fn new_value(&self, runner: &mut TestRunner) -> Result<Self::Value, Rejection>;

        /// Transform every generated value with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Keep only values satisfying `f`; `whence` names the filter in
        /// rejection reports.
        fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                source: self,
                whence: whence.into(),
                f,
            }
        }

        /// Generate a value, then generate from the strategy `f` derives
        /// from it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { source: self, f }
        }

        /// Build recursive values: `self` generates leaves and `recurse`
        /// wraps an inner strategy into the next nesting level. `depth`
        /// bounds the nesting; the size hints are accepted for API
        /// compatibility.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
        {
            Recursive {
                base: self.boxed(),
                recurse: Rc::new(move |inner| recurse(inner).boxed()),
                depth,
            }
        }

        /// Type-erase the strategy (the result is cheaply cloneable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A cloneable, type-erased [`Strategy`].
    pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn new_value(&self, runner: &mut TestRunner) -> Result<V, Rejection> {
            self.0.new_value(runner)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, runner: &mut TestRunner) -> Result<O, Rejection> {
            Ok((self.f)(self.source.new_value(runner)?))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone, Debug)]
    pub struct Filter<S, F> {
        source: S,
        whence: String,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn new_value(&self, runner: &mut TestRunner) -> Result<S::Value, Rejection> {
            for _ in 0..64 {
                let value = self.source.new_value(runner)?;
                if (self.f)(&value) {
                    return Ok(value);
                }
            }
            Err(Rejection(self.whence.clone()))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn new_value(&self, runner: &mut TestRunner) -> Result<S2::Value, Rejection> {
            let seed = self.source.new_value(runner)?;
            (self.f)(seed).new_value(runner)
        }
    }

    /// A strategy producing clones of a fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _runner: &mut TestRunner) -> Result<T, Rejection> {
            Ok(self.0.clone())
        }
    }

    /// Uniform choice between several strategies of a common value type
    /// (the expansion of [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over the given non-empty list of options.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn new_value(&self, runner: &mut TestRunner) -> Result<V, Rejection> {
            let len = self.options.len();
            let start = runner.rng().gen_range(0..len);
            let mut last = None;
            // If the chosen arm rejects (filters), fall through to the
            // remaining arms before giving up on the whole union.
            for offset in 0..len {
                match self.options[(start + offset) % len].new_value(runner) {
                    Ok(value) => return Ok(value),
                    Err(rejection) => last = Some(rejection),
                }
            }
            Err(last.expect("non-empty union"))
        }
    }

    /// See [`Strategy::prop_recursive`].
    pub struct Recursive<V> {
        base: BoxedStrategy<V>,
        recurse: Rc<dyn Fn(BoxedStrategy<V>) -> BoxedStrategy<V>>,
        depth: u32,
    }

    impl<V> Clone for Recursive<V> {
        fn clone(&self) -> Self {
            Recursive {
                base: self.base.clone(),
                recurse: Rc::clone(&self.recurse),
                depth: self.depth,
            }
        }
    }

    impl<V> Strategy for Recursive<V> {
        type Value = V;

        fn new_value(&self, runner: &mut TestRunner) -> Result<V, Rejection> {
            let levels = runner.rng().gen_range(0..=self.depth);
            let mut strategy = self.base.clone();
            for _ in 0..levels {
                strategy = (self.recurse)(strategy);
            }
            strategy.new_value(runner)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, runner: &mut TestRunner) -> Result<$t, Rejection> {
                    Ok(runner.rng().gen_range(self.clone()))
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, runner: &mut TestRunner) -> Result<$t, Rejection> {
                    Ok(runner.rng().gen_range(self.clone()))
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn new_value(&self, runner: &mut TestRunner) -> Result<Self::Value, Rejection> {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    Ok(($($name.new_value(runner)?,)+))
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Regex-subset string strategy: a `&str` literal *is* a strategy whose
    /// values are strings matching the pattern (see [`crate::string`]).
    impl Strategy for &'static str {
        type Value = String;

        fn new_value(&self, runner: &mut TestRunner) -> Result<String, Rejection> {
            Ok(crate::string::generate(self, runner))
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::{Rejection, Strategy};
    use crate::test_runner::TestRunner;
    use rand::{Rng, StandardValue};
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;

        /// The canonical strategy value.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Full-bit-pattern strategy backing `any` for primitive types.
    #[derive(Clone, Debug, Default)]
    pub struct StandardAny<T>(PhantomData<T>);

    impl<T: StandardValue> Strategy for StandardAny<T> {
        type Value = T;

        fn new_value(&self, runner: &mut TestRunner) -> Result<T, Rejection> {
            Ok(runner.rng().gen::<T>())
        }
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = StandardAny<$t>;

                fn arbitrary() -> Self::Strategy {
                    StandardAny(PhantomData)
                }
            }
        )*};
    }
    impl_arbitrary!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use crate::strategy::{Rejection, Strategy};
    use crate::test_runner::TestRunner;
    use rand::Rng;
    use std::collections::BTreeSet;

    /// Accepted sizes for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl SizeRange {
        fn pick(&self, runner: &mut TestRunner) -> usize {
            runner.rng().gen_range(self.min..=self.max_inclusive)
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max_inclusive: exact,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(range: core::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty collection size range");
            SizeRange {
                min: range.start,
                max_inclusive: range.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: core::ops::RangeInclusive<usize>) -> Self {
            assert!(range.start() <= range.end(), "empty collection size range");
            SizeRange {
                min: *range.start(),
                max_inclusive: *range.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with sizes drawn from a [`SizeRange`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector strategy with the given element strategy and size range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, runner: &mut TestRunner) -> Result<Vec<S::Value>, Rejection> {
            let len = self.size.pick(runner);
            (0..len).map(|_| self.element.new_value(runner)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A set strategy with the given element strategy and size range. The
    /// element domain must be large enough to reach the minimum size.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn new_value(&self, runner: &mut TestRunner) -> Result<BTreeSet<S::Value>, Rejection> {
            let target = self.size.pick(runner);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 16 + 64 {
                set.insert(self.element.new_value(runner)?);
                attempts += 1;
            }
            if set.len() < self.size.min {
                return Err(Rejection(format!(
                    "btree_set: could not reach minimum size {} (domain too small?)",
                    self.size.min
                )));
            }
            Ok(set)
        }
    }
}

/// Sampling strategies over fixed option lists.
pub mod sample {
    use crate::strategy::{Rejection, Strategy};
    use crate::test_runner::TestRunner;
    use rand::Rng;

    /// Strategy yielding uniformly chosen clones of fixed options.
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// A strategy choosing uniformly among `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select needs options");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn new_value(&self, runner: &mut TestRunner) -> Result<T, Rejection> {
            let index = runner.rng().gen_range(0..self.options.len());
            Ok(self.options[index].clone())
        }
    }
}

/// Generation of strings from a regex subset.
///
/// Supported syntax: literal characters, `.` and `\PC` (printable ASCII),
/// escapes (`\xHH`, `\n`, `\t`, `\r`, `\d`, `\w`, `\s`, plus escaped
/// punctuation), character classes with ranges and negation, groups with
/// alternation, and the quantifiers `?`, `*`, `+`, `{n}`, `{n,}` and
/// `{n,m}` (`*`/`+`/open-ended repeats are capped at 8).
pub mod string {
    use crate::test_runner::TestRunner;
    use rand::Rng;

    #[derive(Debug, Clone)]
    enum Ast {
        Seq(Vec<Ast>),
        Alt(Vec<Ast>),
        Lit(char),
        Class {
            negated: bool,
            ranges: Vec<(char, char)>,
        },
        AnyPrintable,
        Repeat(Box<Ast>, u32, u32),
    }

    struct Parser {
        chars: Vec<char>,
        pos: usize,
    }

    const OPEN_REPEAT_CAP: u32 = 8;

    impl Parser {
        fn peek(&self) -> Option<char> {
            self.chars.get(self.pos).copied()
        }

        fn bump(&mut self) -> Option<char> {
            let c = self.peek();
            if c.is_some() {
                self.pos += 1;
            }
            c
        }

        fn parse_alternatives(&mut self) -> Ast {
            let mut alternatives = vec![self.parse_sequence()];
            while self.peek() == Some('|') {
                self.bump();
                alternatives.push(self.parse_sequence());
            }
            if alternatives.len() == 1 {
                alternatives.pop().unwrap()
            } else {
                Ast::Alt(alternatives)
            }
        }

        fn parse_sequence(&mut self) -> Ast {
            let mut items = Vec::new();
            while let Some(c) = self.peek() {
                if c == '|' || c == ')' {
                    break;
                }
                let atom = self.parse_atom();
                items.push(self.parse_quantifier(atom));
            }
            Ast::Seq(items)
        }

        fn parse_quantifier(&mut self, atom: Ast) -> Ast {
            match self.peek() {
                Some('?') => {
                    self.bump();
                    Ast::Repeat(Box::new(atom), 0, 1)
                }
                Some('*') => {
                    self.bump();
                    Ast::Repeat(Box::new(atom), 0, OPEN_REPEAT_CAP)
                }
                Some('+') => {
                    self.bump();
                    Ast::Repeat(Box::new(atom), 1, OPEN_REPEAT_CAP)
                }
                Some('{') => {
                    self.bump();
                    let mut low = String::new();
                    while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                        low.push(self.bump().unwrap());
                    }
                    let low: u32 = low.parse().expect("regex repeat lower bound");
                    let high = if self.peek() == Some(',') {
                        self.bump();
                        let mut high = String::new();
                        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                            high.push(self.bump().unwrap());
                        }
                        if high.is_empty() {
                            low + OPEN_REPEAT_CAP
                        } else {
                            high.parse().expect("regex repeat upper bound")
                        }
                    } else {
                        low
                    };
                    assert_eq!(self.bump(), Some('}'), "unterminated regex repeat");
                    Ast::Repeat(Box::new(atom), low, high)
                }
                _ => atom,
            }
        }

        fn parse_atom(&mut self) -> Ast {
            match self.bump().expect("regex atom") {
                '(' => {
                    let inner = self.parse_alternatives();
                    assert_eq!(self.bump(), Some(')'), "unterminated regex group");
                    inner
                }
                '[' => self.parse_class(),
                '\\' => self.parse_escape(),
                '.' => Ast::AnyPrintable,
                c => Ast::Lit(c),
            }
        }

        fn parse_escape(&mut self) -> Ast {
            match self.bump().expect("regex escape") {
                'x' => {
                    let hi = self.bump().expect("hex escape");
                    let lo = self.bump().expect("hex escape");
                    let code =
                        u32::from_str_radix(&format!("{hi}{lo}"), 16).expect("valid hex escape");
                    Ast::Lit(char::from_u32(code).expect("valid escape code point"))
                }
                // `\PC` — everything outside the Unicode "Other" category;
                // generate printable ASCII.
                'P' => {
                    self.bump();
                    Ast::AnyPrintable
                }
                'd' => Ast::Class {
                    negated: false,
                    ranges: vec![('0', '9')],
                },
                'w' => Ast::Class {
                    negated: false,
                    ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
                },
                's' => Ast::Lit(' '),
                'n' => Ast::Lit('\n'),
                't' => Ast::Lit('\t'),
                'r' => Ast::Lit('\r'),
                c => Ast::Lit(c),
            }
        }

        fn class_char(&mut self) -> char {
            match self.bump().expect("class member") {
                '\\' => match self.parse_escape() {
                    Ast::Lit(c) => c,
                    _ => panic!("unsupported escape inside character class"),
                },
                c => c,
            }
        }

        fn parse_class(&mut self) -> Ast {
            let negated = if self.peek() == Some('^') {
                self.bump();
                true
            } else {
                false
            };
            let mut ranges = Vec::new();
            while let Some(c) = self.peek() {
                if c == ']' {
                    self.bump();
                    return Ast::Class { negated, ranges };
                }
                let start = self.class_char();
                if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                    self.bump();
                    let end = self.class_char();
                    assert!(start <= end, "inverted class range");
                    ranges.push((start, end));
                } else {
                    ranges.push((start, start));
                }
            }
            panic!("unterminated character class");
        }
    }

    fn parse(pattern: &str) -> Ast {
        let mut parser = Parser {
            chars: pattern.chars().collect(),
            pos: 0,
        };
        let ast = parser.parse_alternatives();
        assert_eq!(parser.pos, parser.chars.len(), "trailing regex input");
        ast
    }

    fn printable(runner: &mut TestRunner) -> char {
        char::from_u32(runner.rng().gen_range(0x20u32..0x7F)).unwrap()
    }

    fn emit(ast: &Ast, runner: &mut TestRunner, out: &mut String) {
        match ast {
            Ast::Seq(items) => {
                for item in items {
                    emit(item, runner, out);
                }
            }
            Ast::Alt(alternatives) => {
                let index = runner.rng().gen_range(0..alternatives.len());
                emit(&alternatives[index], runner, out);
            }
            Ast::Lit(c) => out.push(*c),
            Ast::AnyPrintable => out.push(printable(runner)),
            Ast::Class { negated, ranges } => {
                if *negated {
                    for _ in 0..1_000 {
                        let c = printable(runner);
                        if !ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&c)) {
                            out.push(c);
                            return;
                        }
                    }
                    panic!("negated class excludes all printable ASCII");
                }
                let total: u32 = ranges
                    .iter()
                    .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                    .sum();
                let mut index = runner.rng().gen_range(0..total);
                for &(lo, hi) in ranges {
                    let size = hi as u32 - lo as u32 + 1;
                    if index < size {
                        out.push(char::from_u32(lo as u32 + index).expect("class code point"));
                        return;
                    }
                    index -= size;
                }
                unreachable!("class index in range");
            }
            Ast::Repeat(inner, low, high) => {
                let count = runner.rng().gen_range(*low..=*high);
                for _ in 0..count {
                    emit(inner, runner, out);
                }
            }
        }
    }

    /// Generate one string matching `pattern`.
    pub fn generate(pattern: &str, runner: &mut TestRunner) -> String {
        let ast = parse(pattern);
        let mut out = String::new();
        emit(&ast, runner, &mut out);
        out
    }
}

/// The conventional `prop::` module alias (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::{collection, sample, strategy, string};
}

/// The conventional glob-import surface.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Fail the current test case (early `Err` return) if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current test case if `left != right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `left == right` (left: `{:?}`, right: `{:?}`)",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)+),
            __left,
            __right
        );
    }};
}

/// Fail the current test case if `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left != *__right,
            "assertion failed: `left != right` (both: `{:?}`)",
            __left
        );
    }};
}

/// Discard the current test case (does not count towards `cases`) if
/// `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a test running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident ( $( $arg:pat_param in $strategy:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __runner = $crate::test_runner::TestRunner::from_test_name(
                    __config.clone(),
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut __rejects: u32 = 0;
                let mut __case: u32 = 0;
                while __case < __config.cases {
                    let __generated = (|__runner: &mut $crate::test_runner::TestRunner|
                        -> ::core::result::Result<_, $crate::strategy::Rejection> {
                        ::core::result::Result::Ok((
                            $( $crate::strategy::Strategy::new_value(&($strategy), __runner)?, )+
                        ))
                    })(&mut __runner);
                    let ( $( $arg, )+ ) = match __generated {
                        ::core::result::Result::Ok(__values) => __values,
                        ::core::result::Result::Err($crate::strategy::Rejection(__why)) => {
                            __rejects += 1;
                            assert!(
                                __rejects <= __config.max_global_rejects,
                                "proptest '{}': too many rejected inputs (last: {})",
                                stringify!($name),
                                __why
                            );
                            continue;
                        }
                    };
                    let __result: $crate::test_runner::TestCaseResult =
                        (move || { $body ::core::result::Result::Ok(()) })();
                    match __result {
                        ::core::result::Result::Ok(()) => {
                            __case += 1;
                        }
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(__why),
                        ) => {
                            __rejects += 1;
                            assert!(
                                __rejects <= __config.max_global_rejects,
                                "proptest '{}': too many rejected cases (last: {})",
                                stringify!($name),
                                __why
                            );
                        }
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__message),
                        ) => {
                            panic!(
                                "proptest '{}' failed at case {}: {}",
                                stringify!($name),
                                __case,
                                __message
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn regex_subset_generator_matches_shapes() {
        let config = ProptestConfig::with_cases(1);
        let mut runner = TestRunner::from_test_name(config, "regex_shapes");
        for _ in 0..200 {
            let s =
                crate::string::generate("[A-Za-z][A-Za-z0-9 &<>']{0,12}[A-Za-z0-9]", &mut runner);
            assert!(s.len() >= 2, "generated {s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            let t = crate::string::generate("\\PC{0,200}", &mut runner);
            assert!(t.chars().count() <= 200);
            let d = crate::string::generate(
                r"<!(ELEMENT|ATTLIST|ENTITY|DOCTYPE)? ?[A-Za-z0-9 #(),|?*+%;'\x22-]{0,80}>?",
                &mut runner,
            );
            assert!(d.starts_with("<!"), "generated {d:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples_generate_in_bounds(
            (a, b) in (0usize..10, 5u64..=9),
            x in 0.0f64..=1.0,
        ) {
            prop_assert!(a < 10);
            prop_assert!((5..=9).contains(&b));
            prop_assert!((0.0..=1.0).contains(&x));
        }

        #[test]
        fn collections_respect_size_ranges(
            v in prop::collection::vec(0usize..6, 0..30),
            s in prop::collection::btree_set(0u64..400, 1..120),
        ) {
            prop_assert!(v.len() < 30);
            prop_assert!(!s.is_empty() && s.len() < 120);
            prop_assert!(v.iter().all(|&e| e < 6));
        }

        #[test]
        fn oneof_filter_and_recursive_compose(n in recursive_depth_strategy()) {
            prop_assert!(n <= 16, "depth bound violated: {n}");
        }
    }

    fn recursive_depth_strategy() -> impl Strategy<Value = u32> {
        let leaf = prop_oneof![Just(0u32), (1u32..2).prop_map(|v| v)];
        leaf.prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner)
                .prop_map(|(a, b)| (a.max(b) + 1).min(16))
                .prop_filter("cap", |&v| v <= 16)
        })
    }

    #[test]
    fn assume_rejects_do_not_count_as_cases() {
        let mut seen = BTreeSet::new();
        let config = ProptestConfig::with_cases(8);
        let mut runner = TestRunner::from_test_name(config, "assume_check");
        for _ in 0..8 {
            seen.insert(Strategy::new_value(&(0u64..1_000_000), &mut runner).unwrap());
        }
        assert!(seen.len() > 1, "rng must advance between cases");
    }
}
