//! Property-based tests for the XML substrate.

use proptest::prelude::*;
use std::collections::BTreeSet;
use tps_xml::XmlTree;

/// A recursively generated element description used to build random trees.
#[derive(Debug, Clone)]
enum GenNode {
    Element(String, Vec<GenNode>),
    Text(String),
}

fn tag_name() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "a", "b", "c", "d", "media", "CD", "book", "title", "author", "last", "first",
    ])
    .prop_map(str::to_string)
}

fn text_value() -> impl Strategy<Value = String> {
    // Text that survives trimming and entity escaping round trips.
    "[A-Za-z][A-Za-z0-9 &<>']{0,12}[A-Za-z0-9]".prop_map(|s| s)
}

fn gen_node() -> impl Strategy<Value = GenNode> {
    let leaf = prop_oneof![
        tag_name().prop_map(|t| GenNode::Element(t, vec![])),
        text_value().prop_map(GenNode::Text),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        (tag_name(), prop::collection::vec(inner, 0..4))
            .prop_map(|(t, children)| GenNode::Element(t, drop_adjacent_text(children)))
    })
}

/// The XML parser concatenates adjacent character data, so two consecutive
/// text siblings would not round-trip structurally. Keep only the first text
/// node in every run of consecutive text siblings.
fn drop_adjacent_text(children: Vec<GenNode>) -> Vec<GenNode> {
    let mut out: Vec<GenNode> = Vec::with_capacity(children.len());
    for child in children {
        if matches!(child, GenNode::Text(_)) && matches!(out.last(), Some(GenNode::Text(_))) {
            continue;
        }
        out.push(child);
    }
    out
}

fn gen_document() -> impl Strategy<Value = XmlTree> {
    (tag_name(), prop::collection::vec(gen_node(), 0..4)).prop_map(|(root, children)| {
        let mut tree = XmlTree::new(&root);
        let root_id = tree.root();
        for child in &drop_adjacent_text(children) {
            build(&mut tree, root_id, child);
        }
        tree
    })
}

fn build(tree: &mut XmlTree, parent: tps_xml::NodeId, node: &GenNode) {
    match node {
        GenNode::Element(tag, children) => {
            let id = tree.add_child(parent, tag);
            for c in children {
                build(tree, id, c);
            }
        }
        GenNode::Text(text) => {
            tree.add_text_child(parent, text.trim());
        }
    }
}

fn label_path_set(tree: &XmlTree) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    for node in tree.preorder() {
        set.insert(tree.path_labels(node).join("\u{1}"));
    }
    set
}

proptest! {
    /// Writing a tree and parsing the output yields an equal tree, as long as
    /// text leaves do not contain leading/trailing whitespace (which the
    /// parser trims by design) and no two text siblings are adjacent.
    #[test]
    fn write_parse_round_trip(tree in gen_document()) {
        let xml = tree.to_xml();
        let reparsed = XmlTree::parse(&xml).expect("writer output must parse");
        // Compare label paths rather than structural equality: adjacent text
        // siblings are concatenated by the parser, which is the only accepted
        // normalisation.
        prop_assert_eq!(label_path_set(&tree).len(), label_path_set(&reparsed).len());
        prop_assert_eq!(tree.depth(), reparsed.depth());
        prop_assert_eq!(tree.label(tree.root()), reparsed.label(reparsed.root()));
    }

    /// The skeleton has at most one child per label at every node.
    #[test]
    fn skeleton_is_a_skeleton(tree in gen_document()) {
        let s = tree.skeleton();
        prop_assert!(tps_xml::skeleton::is_skeleton(&s));
    }

    /// Skeleton construction preserves the set of root-to-node label paths.
    #[test]
    fn skeleton_preserves_label_paths(tree in gen_document()) {
        let s = tree.skeleton();
        prop_assert_eq!(label_path_set(&tree), label_path_set(&s));
    }

    /// Skeleton construction is idempotent.
    #[test]
    fn skeleton_is_idempotent(tree in gen_document()) {
        let s = tree.skeleton();
        prop_assert_eq!(s.skeleton(), s);
    }

    /// The skeleton never has more nodes than the original document.
    #[test]
    fn skeleton_never_grows(tree in gen_document()) {
        prop_assert!(tree.skeleton().node_count() <= tree.node_count());
    }

    /// Every root-to-leaf path of the original document exists in the skeleton.
    #[test]
    fn document_paths_exist_in_skeleton(tree in gen_document()) {
        let skeleton_paths: BTreeSet<String> = tree
            .skeleton()
            .root_to_leaf_paths()
            .map(|p| p.join("\u{1}"))
            .collect();
        for path in tree.root_to_leaf_paths() {
            // A document leaf may map to an interior skeleton node (if a
            // sibling subtree extends the same label path), so check prefix
            // membership against all skeleton paths.
            let joined = path.join("\u{1}");
            let found = skeleton_paths
                .iter()
                .any(|sp| sp == &joined || sp.starts_with(&(joined.clone() + "\u{1}")));
            prop_assert!(found, "path {:?} missing from skeleton", path);
        }
    }

    /// Parsing never panics on arbitrary input (errors are fine).
    #[test]
    fn parser_never_panics(input in "\\PC{0,200}") {
        let _ = XmlTree::parse(&input);
    }

    /// node_count equals the number of nodes visited in pre-order.
    #[test]
    fn preorder_count_matches_node_count(tree in gen_document()) {
        prop_assert_eq!(tree.preorder().count(), tree.node_count());
    }
}
