//! Scanner-vs-parser conformance: the zero-copy streaming scanner
//! (`tps_xml::scan`) must agree with the tree parser on every input —
//! accept/reject **error-for-error** (same kind, same byte offset), and on
//! accepted documents the event stream must rebuild the exact parse tree.
//!
//! The suite replays a committed conformance corpus plus every case in the
//! repository's fuzz corpora (`fuzz/corpus/xml`, `fuzz/corpus/ingest`), so
//! each crash the fuzzers ever minimized doubles as a scanner conformance
//! fixture.

use std::borrow::Cow;

use tps_xml::error::XmlErrorKind;
use tps_xml::{scan_document, NullSink, ScanLimits, SkeletonSink, XmlTree};

/// Rebuilds an [`XmlTree`] from scanner events: `open` pushes a child,
/// `text` adds a text leaf, `close` pops. Event order equals the parser's
/// construction order, so an equal document yields an arena-identical tree.
#[derive(Default)]
struct TreeBuilder {
    tree: Option<XmlTree>,
    stack: Vec<tps_xml::tree::NodeId>,
}

impl SkeletonSink for TreeBuilder {
    fn open(&mut self, label: Cow<'_, str>) {
        match self.tree.as_mut() {
            None => {
                let tree = XmlTree::new(&label);
                self.stack.push(tree.root());
                self.tree = Some(tree);
            }
            Some(tree) => {
                let parent = *self.stack.last().expect("open events are balanced");
                let child = tree.add_child(parent, &label);
                self.stack.push(child);
            }
        }
    }

    fn text(&mut self, text: Cow<'_, str>) {
        let tree = self.tree.as_mut().expect("text only under an open root");
        let parent = *self.stack.last().expect("text only under an open element");
        tree.add_text_child(parent, &text);
    }

    fn close(&mut self) {
        self.stack.pop();
    }
}

/// One differential run: scanner and parser must agree on acceptance, on
/// the exact error (kind **and** byte offset), and on the resulting tree.
fn check_conformance(bytes: &[u8], provenance: &str) {
    let limits = ScanLimits::default();
    let mut builder = TreeBuilder::default();
    let scanned = scan_document(bytes, &limits, &mut builder);
    let Ok(text) = std::str::from_utf8(bytes) else {
        // The lossy re-decode the parser would need changes the bytes, so
        // the only conformance requirement is a typed `InvalidUtf8`.
        match scanned {
            Err(err) => assert!(
                matches!(err.kind(), XmlErrorKind::InvalidUtf8),
                "{provenance}: non-UTF-8 input produced {err:?}"
            ),
            Ok(()) => panic!("{provenance}: non-UTF-8 input was accepted"),
        }
        return;
    };
    match (scanned, XmlTree::parse(text)) {
        (Ok(()), Ok(parsed)) => {
            let rebuilt = builder.tree.expect("accepted document has a root");
            assert_eq!(
                rebuilt.to_xml(),
                parsed.to_xml(),
                "{provenance}: scanner events diverge from the parse tree of {text:?}"
            );
            assert_eq!(
                rebuilt.skeleton().to_xml(),
                parsed.skeleton().to_xml(),
                "{provenance}: skeletons diverge for {text:?}"
            );
        }
        (Err(scan_err), Err(parse_err)) => {
            assert_eq!(
                scan_err, parse_err,
                "{provenance}: scanner and parser reject {text:?} differently"
            );
        }
        (Ok(()), Err(parse_err)) => {
            panic!("{provenance}: scanner accepted what the parser rejects ({parse_err}): {text:?}")
        }
        (Err(scan_err), Ok(_)) => {
            panic!("{provenance}: scanner rejected what the parser accepts ({scan_err}): {text:?}")
        }
    }
}

/// The committed conformance corpus: every construct the scanner handles,
/// valid and invalid, including the error taxonomy.
const CONFORMANCE_CORPUS: &[&str] = &[
    // Plain structure.
    "<a/>",
    "<a></a>",
    "<media><CD><title>Requiem</title></CD></media>",
    "<a><b/><b><c/></b><b/></a>",
    // Prolog, DOCTYPE, comments, processing instructions, epilog.
    "<?xml version=\"1.0\" encoding=\"UTF-8\"?><a><b/></a>",
    "<!DOCTYPE a [<!ELEMENT a ANY>]><a>x</a>",
    "<a><!-- comment --><b/><!-- another --></a>",
    "<a><?pi data?><b/></a>",
    "<a/><!-- trailing comment --> ",
    // Text handling: trimming, whitespace-only runs, mixed content.
    "<a>  padded  </a>",
    "<a>\n\t \r</a>",
    "<a>one<b/>two<b/>three</a>",
    "<a>before<!-- split -->after</a>",
    // CDATA splices into the surrounding run; entities decode.
    "<a><![CDATA[ <raw> & ]]></a>",
    "<a>x<![CDATA[y]]>z</a>",
    "<a>&lt;&gt;&amp;&apos;&quot;</a>",
    "<a>&#65;&#x42;</a>",
    "<a k=\"&lt;v&gt;\">t</a>",
    // Attributes, including single quotes and many of them.
    "<a k='single' l=\"double\"/>",
    "<a one=\"1\" two=\"2\" three=\"3\" four=\"4\"/>",
    // Non-ASCII names and text.
    "<h\u{e9}llo>caf\u{e9}</h\u{e9}llo>",
    // Errors: each kind of rejection, scanner and parser must agree on
    // kind and offset.
    "",
    "   ",
    "<a>",
    "<a><b></a>",
    "</a>",
    "<a></a><b/>",
    "<a></a>tail",
    "<1a/>",
    "<a b=1/>",
    "<a>&unknown;</a>",
    "<a>&#xZZ;</a>",
    "<a",
    "<a /",
    "<!-- unterminated",
    "<a><![CDATA[never closed</a>",
    "<?pi never closed",
];

#[test]
fn committed_corpus_scans_identically_to_the_parser() {
    for (i, doc) in CONFORMANCE_CORPUS.iter().enumerate() {
        check_conformance(doc.as_bytes(), &format!("conformance[{i}]"));
    }
}

#[test]
fn deeply_nested_documents_hit_the_same_depth_limit() {
    // One level under, at, and over the default limit.
    for depth in [
        ScanLimits::default().max_depth - 1,
        ScanLimits::default().max_depth,
        ScanLimits::default().max_depth + 1,
    ] {
        let mut doc = String::new();
        for _ in 0..depth {
            doc.push_str("<a>");
        }
        for _ in 0..depth {
            doc.push_str("</a>");
        }
        check_conformance(doc.as_bytes(), &format!("depth {depth}"));
    }
}

#[test]
fn fuzz_corpora_replay_through_the_differential() {
    // Every minimized fuzz case doubles as a conformance fixture. The
    // corpus lives at the repository root; a missing directory (e.g. a
    // stripped-down source distribution) is an empty corpus.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fuzz/corpus");
    let mut replayed = 0usize;
    for target in ["xml", "ingest"] {
        let Ok(entries) = std::fs::read_dir(root.join(target)) else {
            continue;
        };
        for entry in entries {
            let path = entry.expect("corpus directory entry").path();
            if path.extension().and_then(|e| e.to_str()) != Some("case") {
                continue;
            }
            let bytes = std::fs::read(&path).expect("corpus case is readable");
            check_conformance(&bytes, &path.display().to_string());
            replayed += 1;
        }
    }
    assert!(
        replayed >= 5,
        "expected the committed fuzz corpora to replay"
    );
}

#[test]
fn custom_limits_reject_exactly_at_the_boundary() {
    let limits = ScanLimits {
        max_depth: 3,
        max_attributes: 2,
    };
    assert!(scan_document(b"<a><b><c/></b></a>", &limits, &mut NullSink).is_ok());
    let too_deep = scan_document(b"<a><b><c><d/></c></b></a>", &limits, &mut NullSink);
    assert!(
        matches!(
            too_deep.unwrap_err().kind(),
            XmlErrorKind::LimitExceeded { limit: 3, .. }
        ),
        "depth 4 under a limit of 3 must be rejected"
    );
    assert!(scan_document(b"<a p=\"1\" q=\"2\"/>", &limits, &mut NullSink).is_ok());
    let too_wide = scan_document(b"<a p=\"1\" q=\"2\" r=\"3\"/>", &limits, &mut NullSink);
    assert!(
        matches!(
            too_wide.unwrap_err().kind(),
            XmlErrorKind::LimitExceeded { limit: 2, .. }
        ),
        "3 attributes under a limit of 2 must be rejected"
    );
}
