//! XML substrate for tree-pattern similarity estimation.
//!
//! This crate provides the document-side data model used throughout the
//! workspace:
//!
//! * [`XmlTree`] — an arena-based, node-labelled tree representation of an
//!   XML document (Section 2 of the paper represents documents as
//!   node-labelled trees; leaf text values such as `"Mozart"` become leaf
//!   nodes whose label is the text itself).
//! * [`parser`] — a small, dependency-free XML parser for the element/text
//!   subset needed by the evaluation (attributes, comments, processing
//!   instructions and CDATA sections are accepted and skipped or inlined).
//! * [`scan`] — a zero-copy streaming scanner over raw bytes emitting
//!   skeleton events into a [`SkeletonSink`]; accepts and rejects exactly
//!   the same documents as [`parser`] but never materialises a tree.
//! * [`skeleton`] — *skeleton tree* construction: children of a node that
//!   share a tag are coalesced so that every node has at most one child per
//!   tag (Section 3.1).
//! * [`paths`] — enumeration of root-to-leaf label paths, the unit of
//!   insertion into the document synopsis.
//! * [`LabelTable`] — a string interner used by downstream crates to avoid
//!   repeated string hashing when labels are compared frequently.
//!
//! # Example
//!
//! ```
//! use tps_xml::XmlTree;
//!
//! let doc = XmlTree::parse(
//!     "<media><CD><composer><last>Mozart</last></composer></CD></media>",
//! )
//! .unwrap();
//! assert_eq!(doc.label(doc.root()), "media");
//! // Text content becomes a leaf node labelled with the text value.
//! let paths: Vec<String> = doc.root_to_leaf_paths().map(|p| p.join("/")).collect();
//! assert_eq!(paths, vec!["media/CD/composer/last/Mozart".to_string()]);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod label;
pub mod parser;
pub mod paths;
pub mod scan;
pub mod skeleton;
pub mod stream;
pub mod tree;
pub mod writer;

pub use error::XmlError;
pub use label::{LabelId, LabelTable};
pub use scan::{scan_document, scan_str, NullSink, ScanLimits, SkeletonSink};
pub use stream::{BorrowedTrees, DocumentStream, LineStream, StreamError, StreamItem, TreeStream};
pub use tree::{NodeId, XmlNode, XmlTree};
