//! Error types for XML parsing.

use std::fmt;

/// An error produced while parsing an XML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    kind: XmlErrorKind,
    /// Byte offset in the input at which the error was detected.
    offset: usize,
}

/// The different classes of parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlErrorKind {
    /// The input ended while an element or construct was still open.
    UnexpectedEof,
    /// A closing tag did not match the innermost open element.
    MismatchedClosingTag {
        /// Tag that was open.
        expected: String,
        /// Tag that was found.
        found: String,
    },
    /// A closing tag appeared with no element open.
    UnexpectedClosingTag(String),
    /// An element or attribute name was empty or contained invalid characters.
    InvalidName(String),
    /// Malformed markup (e.g. `<` followed by an unexpected character).
    Malformed(String),
    /// The document contained no root element.
    NoRootElement,
    /// Content was found after the root element closed.
    TrailingContent,
    /// An unknown or malformed entity reference such as `&foo`.
    InvalidEntity(String),
    /// The raw document bytes are not valid UTF-8 (byte-level ingest only;
    /// the offset is the end of the longest valid prefix).
    InvalidUtf8,
    /// A parser limit was exceeded (defence against pathological inputs
    /// such as pathologically deep nesting or enormous attribute lists).
    LimitExceeded {
        /// Which limit was hit (e.g. `"element nesting depth"`).
        what: &'static str,
        /// The configured limit value.
        limit: usize,
    },
}

impl XmlError {
    pub(crate) fn new(kind: XmlErrorKind, offset: usize) -> Self {
        Self { kind, offset }
    }

    /// The byte offset in the input at which the error was detected.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// The kind of failure.
    pub fn kind(&self) -> &XmlErrorKind {
        &self.kind
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            XmlErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            XmlErrorKind::MismatchedClosingTag { expected, found } => write!(
                f,
                "mismatched closing tag: expected </{expected}>, found </{found}>"
            ),
            XmlErrorKind::UnexpectedClosingTag(tag) => {
                write!(f, "closing tag </{tag}> with no matching open element")
            }
            XmlErrorKind::InvalidName(name) => write!(f, "invalid name {name:?}"),
            XmlErrorKind::Malformed(msg) => write!(f, "malformed XML: {msg}"),
            XmlErrorKind::NoRootElement => write!(f, "document has no root element"),
            XmlErrorKind::TrailingContent => write!(f, "content after the root element"),
            XmlErrorKind::InvalidEntity(e) => write!(f, "invalid entity reference &{e};"),
            XmlErrorKind::InvalidUtf8 => write!(f, "input is not valid UTF-8"),
            XmlErrorKind::LimitExceeded { what, limit } => {
                write!(f, "{what} limit ({limit}) exceeded")
            }
        }?;
        write!(f, " at byte offset {}", self.offset)
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset() {
        let err = XmlError::new(XmlErrorKind::UnexpectedEof, 42);
        let msg = err.to_string();
        assert!(msg.contains("42"));
        assert!(msg.contains("unexpected end of input"));
    }

    #[test]
    fn accessors_return_fields() {
        let err = XmlError::new(XmlErrorKind::TrailingContent, 7);
        assert_eq!(err.offset(), 7);
        assert_eq!(*err.kind(), XmlErrorKind::TrailingContent);
    }

    #[test]
    fn mismatched_tag_message_mentions_both_tags() {
        let err = XmlError::new(
            XmlErrorKind::MismatchedClosingTag {
                expected: "a".into(),
                found: "b".into(),
            },
            0,
        );
        let msg = err.to_string();
        assert!(msg.contains("</a>"));
        assert!(msg.contains("</b>"));
    }
}
