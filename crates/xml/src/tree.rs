//! Arena-based XML tree representation.
//!
//! Documents are node-labelled trees, as in Section 2 of the paper. Element
//! tags and leaf text values are both represented as labelled nodes: the text
//! content `Mozart` of `<last>Mozart</last>` becomes a child node whose label
//! is `"Mozart"` and whose [`XmlNode::is_text`] flag is set. This mirrors the
//! document trees in Figure 1 of the paper, where values appear as leaves.

use crate::error::XmlError;
use crate::parser;
use crate::paths::RootToLeafPaths;
use crate::skeleton;
use crate::writer;

/// Identifier of a node within one [`XmlTree`].
///
/// Node ids are indices into the tree's internal arena; they are only
/// meaningful for the tree that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The arena index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single node of an [`XmlTree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlNode {
    label: Box<str>,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    is_text: bool,
}

impl XmlNode {
    /// The node's label: an element tag, or the text value for text nodes.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Parent node, or `None` for the root.
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Child node ids in document order.
    pub fn children(&self) -> &[NodeId] {
        &self.children
    }

    /// Whether this node represents text content rather than an element.
    pub fn is_text(&self) -> bool {
        self.is_text
    }

    /// Whether this node has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// An XML document as an unordered node-labelled tree.
///
/// The tree is stored in an arena (`Vec<XmlNode>`); the root always exists
/// and is created by [`XmlTree::new`].
///
/// # Example
///
/// ```
/// use tps_xml::XmlTree;
///
/// let mut tree = XmlTree::new("media");
/// let cd = tree.add_child(tree.root(), "CD");
/// let composer = tree.add_child(cd, "composer");
/// let last = tree.add_child(composer, "last");
/// tree.add_text_child(last, "Mozart");
/// assert_eq!(tree.node_count(), 5);
/// assert_eq!(tree.depth(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlTree {
    nodes: Vec<XmlNode>,
}

impl XmlTree {
    /// Create a tree consisting of a single root element labelled
    /// `root_label`.
    pub fn new(root_label: &str) -> Self {
        Self {
            nodes: vec![XmlNode {
                label: root_label.into(),
                parent: None,
                children: Vec::new(),
                is_text: false,
            }],
        }
    }

    /// Parse an XML document from text.
    ///
    /// See [`crate::parser`] for the supported subset.
    pub fn parse(input: &str) -> Result<Self, XmlError> {
        parser::parse_document(input)
    }

    /// The root node id (always valid).
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Append a new element child labelled `label` under `parent` and return
    /// its id.
    pub fn add_child(&mut self, parent: NodeId, label: &str) -> NodeId {
        self.push_node(parent, label, false)
    }

    /// Append a new text child (a leaf whose label is the text value).
    pub fn add_text_child(&mut self, parent: NodeId, text: &str) -> NodeId {
        self.push_node(parent, text, true)
    }

    fn push_node(&mut self, parent: NodeId, label: &str, is_text: bool) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(XmlNode {
            label: label.into(),
            parent: Some(parent),
            children: Vec::new(),
            is_text,
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Access a node by id.
    pub fn node(&self, id: NodeId) -> &XmlNode {
        &self.nodes[id.index()]
    }

    /// The label of a node.
    pub fn label(&self, id: NodeId) -> &str {
        self.node(id).label()
    }

    /// The children of a node, in document order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        self.node(id).children()
    }

    /// The parent of a node (`None` for the root).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent()
    }

    /// Total number of nodes in the tree (elements plus text leaves).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of nodes that represent element tags (excludes text leaves).
    pub fn element_count(&self) -> usize {
        self.nodes.iter().filter(|n| !n.is_text).count()
    }

    /// Maximum number of nodes on any root-to-leaf path.
    pub fn depth(&self) -> usize {
        self.depth_of(self.root())
    }

    fn depth_of(&self, id: NodeId) -> usize {
        1 + self
            .children(id)
            .iter()
            .map(|&c| self.depth_of(c))
            .max()
            .unwrap_or(0)
    }

    /// Iterate over all node ids in pre-order (root first).
    pub fn preorder(&self) -> Preorder<'_> {
        Preorder {
            tree: self,
            stack: vec![self.root()],
        }
    }

    /// Iterate over all node ids of the subtree rooted at `start`, pre-order.
    pub fn preorder_from(&self, start: NodeId) -> Preorder<'_> {
        Preorder {
            tree: self,
            stack: vec![start],
        }
    }

    /// Iterate over the descendants of `id` including `id` itself.
    pub fn descendants_or_self(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.preorder_from(id)
    }

    /// Number of nodes in the subtree rooted at `id` (including `id`).
    pub fn subtree_size(&self, id: NodeId) -> usize {
        self.preorder_from(id).count()
    }

    /// The sequence of labels from the root down to `id` (inclusive).
    pub fn path_labels(&self, id: NodeId) -> Vec<&str> {
        let mut labels = Vec::new();
        let mut cur = Some(id);
        while let Some(n) = cur {
            labels.push(self.label(n));
            cur = self.parent(n);
        }
        labels.reverse();
        labels
    }

    /// Enumerate all root-to-leaf label paths of the document.
    pub fn root_to_leaf_paths(&self) -> RootToLeafPaths<'_> {
        RootToLeafPaths::new(self)
    }

    /// Build the *skeleton tree* of this document: children of every node
    /// that share a label are coalesced so that each node has at most one
    /// child per label (Section 3.1 of the paper).
    pub fn skeleton(&self) -> XmlTree {
        skeleton::skeleton_of(self)
    }

    /// Serialise the tree back to XML text.
    pub fn to_xml(&self) -> String {
        writer::write_document(self)
    }

    /// Count nodes with a given label.
    pub fn count_label(&self, label: &str) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.label.as_ref() == label)
            .count()
    }

    /// Iterate over the distinct labels used in the tree (arbitrary order,
    /// no duplicates).
    pub fn distinct_labels(&self) -> Vec<&str> {
        let mut labels: Vec<&str> = self.nodes.iter().map(|n| n.label.as_ref()).collect();
        labels.sort_unstable();
        labels.dedup();
        labels
    }

    /// Number of parent-child tag pairs (edges) in the document; the paper's
    /// generator targets roughly 100 *tag pairs* per document.
    pub fn edge_count(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }
}

/// Pre-order iterator over node ids, returned by [`XmlTree::preorder`].
#[derive(Debug)]
pub struct Preorder<'a> {
    tree: &'a XmlTree,
    stack: Vec<NodeId>,
}

impl Iterator for Preorder<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let next = self.stack.pop()?;
        // Push children in reverse so the leftmost child is visited first.
        for &child in self.tree.children(next).iter().rev() {
            self.stack.push(child);
        }
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> XmlTree {
        // media
        //   CD
        //     composer
        //       last -> "Mozart"
        //     title -> "Requiem"
        //   book
        //     author
        let mut t = XmlTree::new("media");
        let cd = t.add_child(t.root(), "CD");
        let composer = t.add_child(cd, "composer");
        let last = t.add_child(composer, "last");
        t.add_text_child(last, "Mozart");
        let title = t.add_child(cd, "title");
        t.add_text_child(title, "Requiem");
        let book = t.add_child(t.root(), "book");
        t.add_child(book, "author");
        t
    }

    #[test]
    fn new_tree_has_single_root() {
        let t = XmlTree::new("root");
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.label(t.root()), "root");
        assert!(t.parent(t.root()).is_none());
        assert!(t.node(t.root()).is_leaf());
    }

    #[test]
    fn add_child_links_parent_and_children() {
        let mut t = XmlTree::new("a");
        let b = t.add_child(t.root(), "b");
        let c = t.add_child(b, "c");
        assert_eq!(t.parent(b), Some(t.root()));
        assert_eq!(t.parent(c), Some(b));
        assert_eq!(t.children(t.root()), &[b]);
        assert_eq!(t.children(b), &[c]);
    }

    #[test]
    fn text_children_are_flagged() {
        let mut t = XmlTree::new("last");
        let txt = t.add_text_child(t.root(), "Mozart");
        assert!(t.node(txt).is_text());
        assert!(!t.node(t.root()).is_text());
        assert_eq!(t.label(txt), "Mozart");
    }

    #[test]
    fn counts_and_depth() {
        let t = sample_tree();
        assert_eq!(t.node_count(), 9);
        assert_eq!(t.element_count(), 7);
        assert_eq!(t.depth(), 5);
        assert_eq!(t.edge_count(), 8);
    }

    #[test]
    fn preorder_visits_every_node_once_root_first() {
        let t = sample_tree();
        let order: Vec<NodeId> = t.preorder().collect();
        assert_eq!(order.len(), t.node_count());
        assert_eq!(order[0], t.root());
        let mut sorted = order.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), t.node_count());
    }

    #[test]
    fn preorder_is_leftmost_first() {
        let t = sample_tree();
        let labels: Vec<&str> = t.preorder().map(|id| t.label(id)).collect();
        assert_eq!(
            labels,
            vec!["media", "CD", "composer", "last", "Mozart", "title", "Requiem", "book", "author"]
        );
    }

    #[test]
    fn path_labels_walks_from_root() {
        let t = sample_tree();
        let mozart = t
            .preorder()
            .find(|&id| t.label(id) == "Mozart")
            .expect("Mozart node");
        assert_eq!(
            t.path_labels(mozart),
            vec!["media", "CD", "composer", "last", "Mozart"]
        );
    }

    #[test]
    fn subtree_size_counts_descendants() {
        let t = sample_tree();
        let cd = t
            .preorder()
            .find(|&id| t.label(id) == "CD")
            .expect("CD node");
        assert_eq!(t.subtree_size(cd), 6);
        assert_eq!(t.subtree_size(t.root()), t.node_count());
    }

    #[test]
    fn count_label_and_distinct_labels() {
        let t = sample_tree();
        assert_eq!(t.count_label("CD"), 1);
        assert_eq!(t.count_label("missing"), 0);
        let distinct = t.distinct_labels();
        assert!(distinct.contains(&"Mozart"));
        assert!(distinct.contains(&"media"));
        assert_eq!(distinct.len(), 9);
    }

    #[test]
    fn descendants_or_self_includes_self() {
        let t = sample_tree();
        let book = t.preorder().find(|&id| t.label(id) == "book").unwrap();
        let descendants: Vec<&str> = t.descendants_or_self(book).map(|id| t.label(id)).collect();
        assert_eq!(descendants, vec!["book", "author"]);
    }
}
