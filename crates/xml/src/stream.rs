//! Pull-based document streams.
//!
//! The synopsis of the paper is explicitly a *streaming* summary: documents
//! arrive one at a time and are folded into the synopsis without the corpus
//! ever being materialised. [`DocumentStream`] is the pull-based source
//! abstraction that build paths consume: a stream yields [`StreamItem`]s,
//! each either an already-parsed [`XmlTree`] or the raw text of one document
//! still to be parsed. Keeping the *raw* form in the item type is what lets
//! a sharded builder (`tps_core::build_par`) move parsing itself onto worker
//! threads instead of serialising it on the reader.
//!
//! Sources provided here:
//!
//! * [`TreeStream`] — an owned batch of parsed trees (tests, migrations of
//!   existing `Vec<XmlTree>` call sites),
//! * [`cloned_trees`] — the borrowed-slice variant,
//! * [`LineStream`] — line-delimited XML documents from any [`BufRead`]
//!   (files, stdin, in-memory buffers); one non-empty line is one document,
//!   exactly the format `tps generate` emits.
//!
//! Generator-backed streams (documents produced on the fly from a DTD) live
//! in `tps-workload`, which implements [`DocumentStream`] for its
//! [`DocumentGenerator`](https://docs.rs/tps-workload)-driven stream.

use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader};
use std::path::Path;

use crate::error::XmlError;
use crate::tree::XmlTree;

/// One document pulled from a stream: either parsed already, or the raw
/// text of a single document for the consumer to parse (possibly on a
/// worker thread).
#[derive(Debug, Clone)]
pub enum StreamItem {
    /// An already-parsed document tree.
    Tree(XmlTree),
    /// The raw XML text of one document.
    Raw(String),
    /// The raw bytes of one document, not yet validated as UTF-8. This is
    /// what byte-oriented readers ([`LineStream`]) yield: no per-document
    /// `String` is ever allocated on the reader, and byte-level consumers
    /// ([`crate::scan`], `Synopsis::ingest`) fold the buffer without any
    /// UTF-8 re-copy. Validation happens wherever the bytes are consumed.
    RawBytes(Vec<u8>),
}

impl StreamItem {
    /// Parse the item into a tree (a no-op for [`StreamItem::Tree`]).
    ///
    /// Lossless for every variant: [`StreamItem::RawBytes`] is UTF-8
    /// validated first ([`crate::error::XmlErrorKind::InvalidUtf8`] with the
    /// offset of the longest valid prefix on failure) and then parsed like
    /// raw text.
    pub fn into_tree(self) -> Result<XmlTree, XmlError> {
        match self {
            StreamItem::Tree(tree) => Ok(tree),
            StreamItem::Raw(text) => XmlTree::parse(&text),
            StreamItem::RawBytes(bytes) => match std::str::from_utf8(&bytes) {
                Ok(text) => XmlTree::parse(text),
                Err(e) => Err(XmlError::new(
                    crate::error::XmlErrorKind::InvalidUtf8,
                    e.valid_up_to(),
                )),
            },
        }
    }
}

/// An error produced while pulling from a document stream.
#[derive(Debug)]
pub enum StreamError {
    /// The underlying reader failed.
    Io(io::Error),
    /// A document failed to parse.
    Parse {
        /// 0-based index of the offending document in the stream.
        document: u64,
        /// The parse failure.
        error: XmlError,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Io(err) => write!(f, "stream read error: {err}"),
            StreamError::Parse { document, error } => {
                write!(f, "document {document} failed to parse: {error}")
            }
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Io(err) => Some(err),
            StreamError::Parse { error, .. } => Some(error),
        }
    }
}

impl From<io::Error> for StreamError {
    fn from(err: io::Error) -> Self {
        StreamError::Io(err)
    }
}

/// A pull-based stream of XML documents.
///
/// Implementations yield one [`StreamItem`] per document and `None` at end
/// of stream; after an error or `None` the stream should keep returning
/// `None`. The items carry either parsed trees or raw text — callers that
/// need trees use [`DocumentStream::next_document`], callers that want to
/// parallelise parsing pull items and parse them on workers.
pub trait DocumentStream {
    /// Pull the next document item, `None` at end of stream.
    fn next_item(&mut self) -> Option<Result<StreamItem, StreamError>>;

    /// Pull and parse the next document.
    ///
    /// `index` is the 0-based stream position used to report parse errors;
    /// sequential consumers pass their running document count.
    fn next_document(&mut self, index: u64) -> Option<Result<XmlTree, StreamError>> {
        match self.next_item()? {
            Ok(item) => Some(item.into_tree().map_err(|error| StreamError::Parse {
                document: index,
                error,
            })),
            Err(err) => Some(Err(err)),
        }
    }

    /// Pull up to `max` items into `out` (clearing it first). Returns the
    /// number of items pulled; fewer than `max` means end of stream. Used by
    /// chunked builders to fill one batch.
    fn next_batch(&mut self, max: usize, out: &mut Vec<StreamItem>) -> Result<usize, StreamError> {
        out.clear();
        while out.len() < max {
            match self.next_item() {
                None => break,
                Some(Ok(item)) => out.push(item),
                Some(Err(err)) => return Err(err),
            }
        }
        Ok(out.len())
    }
}

impl<S: DocumentStream + ?Sized> DocumentStream for &mut S {
    fn next_item(&mut self) -> Option<Result<StreamItem, StreamError>> {
        (**self).next_item()
    }
}

/// A stream over an owned batch of parsed trees.
#[derive(Debug)]
pub struct TreeStream {
    trees: std::vec::IntoIter<XmlTree>,
}

impl TreeStream {
    /// Stream the given trees in order.
    pub fn new(trees: Vec<XmlTree>) -> Self {
        Self {
            trees: trees.into_iter(),
        }
    }
}

impl DocumentStream for TreeStream {
    fn next_item(&mut self) -> Option<Result<StreamItem, StreamError>> {
        self.trees.next().map(|t| Ok(StreamItem::Tree(t)))
    }
}

/// A stream over a borrowed slice of trees; each document is cloned only
/// as it is pulled, so no second copy of the corpus ever exists at once.
#[derive(Debug)]
pub struct BorrowedTrees<'a> {
    trees: std::slice::Iter<'a, XmlTree>,
}

impl DocumentStream for BorrowedTrees<'_> {
    fn next_item(&mut self) -> Option<Result<StreamItem, StreamError>> {
        self.trees.next().map(|t| Ok(StreamItem::Tree(t.clone())))
    }
}

/// Stream a borrowed slice of trees (cloning each document lazily as it is
/// pulled). Useful for feeding an existing in-memory corpus through the
/// streaming build path.
pub fn cloned_trees(trees: &[XmlTree]) -> BorrowedTrees<'_> {
    BorrowedTrees {
        trees: trees.iter(),
    }
}

/// Line-delimited XML documents from a [`BufRead`] source: every non-empty
/// line is the raw text of one document (the format `tps generate` writes).
///
/// Lines are yielded as [`StreamItem::RawBytes`] — the reader never
/// allocates a `String` or validates UTF-8 per document — so parsing (or
/// byte-level synopsis ingest) happens wherever the consumer chooses:
/// inline for [`DocumentStream::next_document`], on worker threads for
/// sharded builds.
#[derive(Debug)]
pub struct LineStream<R: BufRead> {
    reader: R,
    done: bool,
}

impl<R: BufRead> LineStream<R> {
    /// Stream documents from `reader`.
    pub fn new(reader: R) -> Self {
        Self {
            reader,
            done: false,
        }
    }
}

impl LineStream<BufReader<File>> {
    /// Stream documents from a file of line-delimited XML.
    pub fn from_path(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(BufReader::new(File::open(path)?)))
    }
}

impl LineStream<BufReader<io::Stdin>> {
    /// Stream documents from standard input.
    pub fn from_stdin() -> Self {
        Self::new(BufReader::new(io::stdin()))
    }
}

impl<R: BufRead> DocumentStream for LineStream<R> {
    fn next_item(&mut self) -> Option<Result<StreamItem, StreamError>> {
        if self.done {
            return None;
        }
        loop {
            let mut line = Vec::new();
            match self.reader.read_until(b'\n', &mut line) {
                Err(err) => {
                    self.done = true;
                    return Some(Err(StreamError::Io(err)));
                }
                Ok(0) => {
                    self.done = true;
                    return None;
                }
                Ok(_) => {
                    // Trim ASCII whitespace in place (multi-byte characters
                    // never match, so this cannot split a UTF-8 sequence).
                    while line.last().is_some_and(|b| b.is_ascii_whitespace()) {
                        line.pop();
                    }
                    let lead = line.iter().take_while(|b| b.is_ascii_whitespace()).count();
                    if lead > 0 {
                        line.drain(..lead);
                    }
                    if line.is_empty() {
                        continue;
                    }
                    return Some(Ok(StreamItem::RawBytes(line)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> XmlTree {
        XmlTree::parse(text).unwrap()
    }

    #[test]
    fn tree_stream_yields_every_tree_in_order() {
        let trees = vec![parse("<a/>"), parse("<b><c/></b>")];
        let mut stream = TreeStream::new(trees.clone());
        for (i, expected) in trees.iter().enumerate() {
            let doc = stream.next_document(i as u64).unwrap().unwrap();
            assert_eq!(&doc, expected);
        }
        assert!(stream.next_item().is_none());
    }

    #[test]
    fn cloned_trees_leaves_the_source_untouched() {
        let trees = vec![parse("<a/>")];
        let mut stream = cloned_trees(&trees);
        assert!(stream.next_item().is_some());
        assert_eq!(trees.len(), 1);
    }

    #[test]
    fn line_stream_skips_blank_lines_and_parses_lazily() {
        let text = "<a><b/></a>\n\n  \n<c/>\n";
        let mut stream = LineStream::new(text.as_bytes());
        let first = stream.next_item().unwrap().unwrap();
        assert!(matches!(first, StreamItem::RawBytes(ref b) if b == b"<a><b/></a>"));
        let second = stream.next_document(1).unwrap().unwrap();
        assert_eq!(second.label(second.root()), "c");
        assert!(stream.next_item().is_none());
        assert!(stream.next_item().is_none(), "stays exhausted");
    }

    #[test]
    fn raw_bytes_items_parse_losslessly() {
        let item = StreamItem::RawBytes(b"<a><b/></a>".to_vec());
        let tree = item.into_tree().unwrap();
        assert_eq!(tree, parse("<a><b/></a>"));
        let bad = StreamItem::RawBytes(vec![b'<', 0xFF]);
        let err = bad.into_tree().unwrap_err();
        assert_eq!(*err.kind(), crate::error::XmlErrorKind::InvalidUtf8);
        assert_eq!(err.offset(), 1);
    }

    #[test]
    fn parse_errors_carry_the_document_index() {
        let mut stream = LineStream::new("<a/>\n<not xml\n".as_bytes());
        assert!(stream.next_document(0).unwrap().is_ok());
        let err = stream.next_document(1).unwrap().unwrap_err();
        match err {
            StreamError::Parse { document, .. } => assert_eq!(document, 1),
            other => panic!("expected a parse error, got {other}"),
        }
    }

    #[test]
    fn next_batch_fills_up_to_max_and_reports_the_end() {
        let docs: Vec<XmlTree> = (0..5).map(|i| parse(&format!("<d{i}/>"))).collect();
        let mut stream = TreeStream::new(docs);
        let mut batch = Vec::new();
        assert_eq!(stream.next_batch(2, &mut batch).unwrap(), 2);
        assert_eq!(stream.next_batch(2, &mut batch).unwrap(), 2);
        assert_eq!(stream.next_batch(2, &mut batch).unwrap(), 1);
        assert_eq!(stream.next_batch(2, &mut batch).unwrap(), 0);
    }

    #[test]
    fn stream_error_display_mentions_the_cause() {
        let err = StreamError::Parse {
            document: 7,
            error: XmlTree::parse("<a").unwrap_err(),
        };
        let text = err.to_string();
        assert!(text.contains("document 7"), "{text}");
        let io_err = StreamError::from(io::Error::other("boom"));
        assert!(io_err.to_string().contains("boom"));
    }

    #[test]
    fn mut_reference_is_a_stream_too() {
        let mut inner = TreeStream::new(vec![parse("<a/>")]);
        let stream: &mut dyn DocumentStream = &mut inner;
        assert!(stream.next_item().is_some());
        assert!(stream.next_item().is_none());
    }
}
