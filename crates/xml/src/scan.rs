//! Byte-level streaming skeleton scanner (zero-copy ingest).
//!
//! The synopsis of the paper is maintained from *skeleton events* — which
//! element labels open, close and carry text along each root-to-node path —
//! not from document trees. [`scan_document`] walks raw document bytes with
//! a hand-rolled byte classification table and a cursor,
//! emitting exactly those events into a [`SkeletonSink`]:
//!
//! * [`SkeletonSink::open`]`(label)` — a start tag was consumed,
//! * [`SkeletonSink::text`]`(label)` — a non-empty trimmed character-data
//!   run became a text leaf (entities decoded, CDATA inlined),
//! * [`SkeletonSink::close`] — the matching end tag (or the `/>` of a
//!   self-closing tag) was consumed.
//!
//! Labels are handed over as [`Cow`]: element names and entity-free text
//! runs borrow straight from the input, only entity decoding or
//! CDATA-spliced runs allocate. No tree is ever materialised — a sink can
//! fold a document into a synopsis in one pass over the bytes.
//!
//! The scanner accepts and rejects **exactly** the same inputs as the tree
//! parser ([`crate::parser`]), with the same [`XmlError`] kinds and byte
//! offsets: both are exercised differentially by the conformance harness
//! (`tests/conformance.rs`) and the `ingest` fuzz target. Resource limits
//! (nesting depth, attribute count) are explicit via [`ScanLimits`] and
//! default to the tree parser's constants.

use std::borrow::Cow;

use crate::error::{XmlError, XmlErrorKind};
use crate::parser::{decode_entities, MAX_ATTRIBUTES, MAX_DEPTH};

/// Explicit resource limits for one scan.
///
/// The defaults match the tree parser's hard limits, so the two ingest
/// paths accept the same documents. Tightened limits are useful for corpus
/// linting (`tps lint --corpus`) and for bounding adversarial input in
/// fuzzing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanLimits {
    /// Maximum element nesting depth (root = depth 1). A non-self-closing
    /// element *at* this depth is rejected, mirroring the tree parser.
    pub max_depth: usize,
    /// Maximum number of attributes on a single start tag.
    pub max_attributes: usize,
}

impl Default for ScanLimits {
    fn default() -> Self {
        Self {
            max_depth: MAX_DEPTH,
            max_attributes: MAX_ATTRIBUTES,
        }
    }
}

/// Receiver of skeleton events from [`scan_document`].
///
/// Events arrive in document order and are properly nested: every `open` is
/// eventually matched by a `close` (self-closing tags emit the pair
/// back-to-back), `text` only fires between the events of its parent
/// element, and the label borrows from the scanned input whenever the bytes
/// allow it.
pub trait SkeletonSink {
    /// A start tag `<label ...>` (or `<label ... />`) was consumed.
    fn open(&mut self, label: Cow<'_, str>);
    /// A non-empty, trimmed character-data run under the current element.
    fn text(&mut self, label: Cow<'_, str>);
    /// The current element closed.
    fn close(&mut self);
}

/// A sink that discards every event — useful for validating documents
/// against [`ScanLimits`] (e.g. corpus linting) without building anything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl SkeletonSink for NullSink {
    fn open(&mut self, _label: Cow<'_, str>) {}
    fn text(&mut self, _label: Cow<'_, str>) {}
    fn close(&mut self) {}
}

// Byte classification table: one lookup replaces the chains of range and
// equality tests in the hot loops (name runs, character-data runs,
// whitespace). Non-ASCII bytes classify as name bytes, exactly like the
// tree parser's `is_name_byte` (UTF-8 continuation bytes are all >= 0x80,
// so multi-byte names stay intact).
const CLASS_WS: u8 = 1 << 0;
const CLASS_NAME_START: u8 = 1 << 1;
const CLASS_NAME: u8 = 1 << 2;
const CLASS_LT: u8 = 1 << 3;
const CLASS_AMP: u8 = 1 << 4;

const fn build_class_table() -> [u8; 256] {
    let mut table = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        let b = i as u8;
        let mut class = 0u8;
        if matches!(b, b' ' | b'\t' | b'\r' | b'\n') {
            class |= CLASS_WS;
        }
        if b.is_ascii_alphabetic() || b == b'_' || b == b':' || !b.is_ascii() {
            class |= CLASS_NAME_START | CLASS_NAME;
        }
        if b.is_ascii_digit() || b == b'-' || b == b'.' {
            class |= CLASS_NAME;
        }
        if b == b'<' {
            class |= CLASS_LT;
        }
        if b == b'&' {
            class |= CLASS_AMP;
        }
        table[i] = class;
        i += 1;
    }
    table
}

static CLASS: [u8; 256] = build_class_table();

/// Scan one document given as raw bytes, emitting skeleton events into
/// `sink`.
///
/// The bytes are validated as UTF-8 up front (zero-copy —
/// [`XmlErrorKind::InvalidUtf8`] on failure, with the offset at the end of
/// the longest valid prefix); everything after that borrows from the input.
pub fn scan_document<S: SkeletonSink>(
    bytes: &[u8],
    limits: &ScanLimits,
    sink: &mut S,
) -> Result<(), XmlError> {
    let input = std::str::from_utf8(bytes)
        .map_err(|e| XmlError::new(XmlErrorKind::InvalidUtf8, e.valid_up_to()))?;
    scan_str(input, limits, sink)
}

/// [`scan_document`] for input that is already known to be valid UTF-8.
pub fn scan_str<S: SkeletonSink>(
    input: &str,
    limits: &ScanLimits,
    sink: &mut S,
) -> Result<(), XmlError> {
    let mut cursor = Cursor::new(input);
    cursor.skip_prolog()?;
    cursor.skip_whitespace();
    if cursor.peek() != Some(b'<') || cursor.starts_with("</") {
        return Err(cursor.err(XmlErrorKind::NoRootElement));
    }
    let (root, self_closing) = cursor.parse_start_tag(limits.max_attributes)?;
    sink.open(Cow::Borrowed(root));
    if self_closing {
        sink.close();
    } else {
        scan_content(&mut cursor, limits, sink, root)?;
    }
    // After the root element, only misc (whitespace, comments, PIs) remains.
    loop {
        cursor.skip_whitespace();
        if cursor.at_end() {
            return Ok(());
        }
        if cursor.starts_with("<!--") {
            cursor.skip_comment()?;
        } else if cursor.starts_with("<?") {
            cursor.skip_pi()?;
        } else {
            return Err(cursor.err(XmlErrorKind::TrailingContent));
        }
    }
}

/// Scan the content of the (non-self-closing) root element to its end tag.
///
/// Unlike the tree parser this is iterative: the open-element stack is an
/// explicit `Vec` of borrowed names, with one pending text buffer per open
/// element (text is flushed to the sink when markup interrupts it, exactly
/// where the parser attaches text leaves).
fn scan_content<'a, S: SkeletonSink>(
    cursor: &mut Cursor<'a>,
    limits: &ScanLimits,
    sink: &mut S,
    root: &'a str,
) -> Result<(), XmlError> {
    let mut stack: Vec<&'a str> = vec![root];
    let mut texts: Vec<TextBuf<'a>> = vec![TextBuf::Empty];
    let depth_error = |cursor: &Cursor<'a>| {
        cursor.err(XmlErrorKind::LimitExceeded {
            what: "element nesting depth",
            limit: limits.max_depth,
        })
    };
    if stack.len() >= limits.max_depth {
        return Err(depth_error(cursor));
    }
    loop {
        if cursor.at_end() {
            return Err(cursor.err(XmlErrorKind::UnexpectedEof));
        }
        if cursor.starts_with("<!--") {
            flush_text(&mut texts, sink);
            cursor.skip_comment()?;
        } else if cursor.starts_with("<![CDATA[") {
            // CDATA splices into the running text buffer without a flush,
            // mirroring the parser (`<a>x<![CDATA[y]]>z</a>` is one leaf).
            let start = cursor.pos + 9;
            match cursor.input[start..].find("]]>") {
                Some(rel) => {
                    push_borrowed(&mut texts, &cursor.input[start..start + rel]);
                    cursor.pos = start + rel + 3;
                }
                None => {
                    cursor.pos = cursor.bytes.len();
                    return Err(cursor.err(XmlErrorKind::UnexpectedEof));
                }
            }
        } else if cursor.starts_with("<?") {
            flush_text(&mut texts, sink);
            cursor.skip_pi()?;
        } else if cursor.starts_with("</") {
            flush_text(&mut texts, sink);
            let close = cursor.parse_end_tag()?;
            // invariant: the loop returns when the stack empties, so it is
            // non-empty on every iteration
            let expected = stack.pop().expect("open-element stack is non-empty");
            texts.pop();
            if close != expected {
                return Err(cursor.err(XmlErrorKind::MismatchedClosingTag {
                    expected: expected.to_string(),
                    found: close.to_string(),
                }));
            }
            sink.close();
            if stack.is_empty() {
                return Ok(());
            }
        } else if cursor.peek() == Some(b'<') {
            flush_text(&mut texts, sink);
            let (name, self_closing) = cursor.parse_start_tag(limits.max_attributes)?;
            sink.open(Cow::Borrowed(name));
            if self_closing {
                sink.close();
            } else {
                stack.push(name);
                texts.push(TextBuf::Empty);
                if stack.len() >= limits.max_depth {
                    return Err(depth_error(cursor));
                }
            }
        } else {
            // Character data: run to the next '<' with the classification
            // table, decoding entities only when the run contains '&'.
            let start = cursor.pos;
            let mut saw_amp = false;
            while let Some(&b) = cursor.bytes.get(cursor.pos) {
                let class = CLASS[b as usize];
                if class & CLASS_LT != 0 {
                    break;
                }
                saw_amp |= class & CLASS_AMP != 0;
                cursor.pos += 1;
            }
            let raw = &cursor.input[start..cursor.pos];
            if saw_amp {
                push_owned(&mut texts, decode_entities(raw, start)?);
            } else {
                push_borrowed(&mut texts, raw);
            }
        }
    }
}

/// Pending character data of one open element: borrowed from the input for
/// a single entity-free run, owned only once decoding or splicing forces a
/// copy.
enum TextBuf<'a> {
    Empty,
    Borrowed(&'a str),
    Owned(String),
}

fn push_borrowed<'a>(texts: &mut [TextBuf<'a>], run: &'a str) {
    if run.is_empty() {
        return;
    }
    // invariant: `texts` parallels the open-element stack, non-empty in content
    let buf = texts.last_mut().expect("one text buffer per open element");
    match buf {
        TextBuf::Empty => *buf = TextBuf::Borrowed(run),
        TextBuf::Borrowed(prev) => {
            let mut owned = String::with_capacity(prev.len() + run.len());
            owned.push_str(prev);
            owned.push_str(run);
            *buf = TextBuf::Owned(owned);
        }
        TextBuf::Owned(owned) => owned.push_str(run),
    }
}

fn push_owned(texts: &mut [TextBuf<'_>], run: String) {
    if run.is_empty() {
        return;
    }
    // invariant: `texts` parallels the open-element stack, non-empty in content
    let buf = texts.last_mut().expect("one text buffer per open element");
    match buf {
        TextBuf::Empty => *buf = TextBuf::Owned(run),
        TextBuf::Borrowed(prev) => {
            let mut owned = String::with_capacity(prev.len() + run.len());
            owned.push_str(prev);
            owned.push_str(&run);
            *buf = TextBuf::Owned(owned);
        }
        TextBuf::Owned(owned) => owned.push_str(&run),
    }
}

/// Flush the innermost pending text buffer: trim it and, when non-empty,
/// emit it as a text event (the parser's `flush_text` equivalent).
fn flush_text<S: SkeletonSink>(texts: &mut [TextBuf<'_>], sink: &mut S) {
    // invariant: `texts` parallels the open-element stack, non-empty in content
    let buf = texts.last_mut().expect("one text buffer per open element");
    match std::mem::replace(buf, TextBuf::Empty) {
        TextBuf::Empty => {}
        TextBuf::Borrowed(s) => {
            let trimmed = s.trim();
            if !trimmed.is_empty() {
                sink.text(Cow::Borrowed(trimmed));
            }
        }
        TextBuf::Owned(s) => {
            let trimmed = s.trim();
            if trimmed.is_empty() {
                return;
            }
            if trimmed.len() == s.len() {
                sink.text(Cow::Owned(s));
            } else {
                sink.text(Cow::Owned(trimmed.to_string()));
            }
        }
    }
}

/// Byte cursor over the (UTF-8 validated) input; the low-level vocabulary
/// is a deliberate mirror of `parser::Parser` so that offsets and error
/// kinds stay in lock-step between the two ingest paths.
struct Cursor<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, kind: XmlErrorKind) -> XmlError {
        XmlError::new(kind, self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if CLASS[b as usize] & CLASS_WS == 0 {
                break;
            }
            self.pos += 1;
        }
    }

    /// Skip the XML declaration, comments, PIs and DOCTYPE before the root.
    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_whitespace();
            if self.starts_with("<?") {
                self.skip_pi()?;
            } else if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<!DOCTYPE") || self.starts_with("<!doctype") {
                self.skip_doctype()?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_pi(&mut self) -> Result<(), XmlError> {
        debug_assert!(self.starts_with("<?"));
        match self.input[self.pos..].find("?>") {
            Some(rel) => {
                self.pos += rel + 2;
                Ok(())
            }
            None => {
                self.pos = self.bytes.len();
                Err(self.err(XmlErrorKind::UnexpectedEof))
            }
        }
    }

    fn skip_comment(&mut self) -> Result<(), XmlError> {
        debug_assert!(self.starts_with("<!--"));
        match self.input[self.pos + 4..].find("-->") {
            Some(rel) => {
                self.pos += 4 + rel + 3;
                Ok(())
            }
            None => {
                self.pos = self.bytes.len();
                Err(self.err(XmlErrorKind::UnexpectedEof))
            }
        }
    }

    fn skip_doctype(&mut self) -> Result<(), XmlError> {
        let mut depth = 0usize;
        while let Some(c) = self.peek() {
            self.pos += 1;
            match c {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'>' if depth == 0 => return Ok(()),
                _ => {}
            }
        }
        Err(self.err(XmlErrorKind::UnexpectedEof))
    }

    /// Parse `<name attr="v" ...>` or `<name ... />`. Returns the borrowed
    /// element name and whether the tag was self-closing.
    fn parse_start_tag(&mut self, max_attributes: usize) -> Result<(&'a str, bool), XmlError> {
        debug_assert_eq!(self.peek(), Some(b'<'));
        self.pos += 1;
        let name = self.parse_name()?;
        let mut attributes = 0usize;
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    return Ok((name, false));
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() == Some(b'>') {
                        self.pos += 1;
                        return Ok((name, true));
                    }
                    return Err(self.err(XmlErrorKind::Malformed(
                        "expected '>' after '/' in tag".to_string(),
                    )));
                }
                Some(_) => {
                    attributes += 1;
                    if attributes > max_attributes {
                        return Err(self.err(XmlErrorKind::LimitExceeded {
                            what: "attribute count",
                            limit: max_attributes,
                        }));
                    }
                    self.parse_attribute()?;
                }
                None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
            }
        }
    }

    fn parse_end_tag(&mut self) -> Result<&'a str, XmlError> {
        debug_assert!(self.starts_with("</"));
        self.pos += 2;
        let name = self.parse_name()?;
        self.skip_whitespace();
        match self.peek() {
            Some(b'>') => {
                self.pos += 1;
                Ok(name)
            }
            Some(_) => Err(self.err(XmlErrorKind::Malformed(
                "expected '>' in closing tag".to_string(),
            ))),
            None => Err(self.err(XmlErrorKind::UnexpectedEof)),
        }
    }

    fn parse_attribute(&mut self) -> Result<(), XmlError> {
        let _name = self.parse_name()?;
        self.skip_whitespace();
        if self.peek() != Some(b'=') {
            return Err(self.err(XmlErrorKind::Malformed(
                "attribute without '=' value".to_string(),
            )));
        }
        self.pos += 1;
        self.skip_whitespace();
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            Some(_) => {
                return Err(self.err(XmlErrorKind::Malformed(
                    "attribute value must be quoted".to_string(),
                )))
            }
            None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
        };
        self.pos += 1;
        while let Some(c) = self.peek() {
            self.pos += 1;
            if c == quote {
                return Ok(());
            }
        }
        Err(self.err(XmlErrorKind::UnexpectedEof))
    }

    fn parse_name(&mut self) -> Result<&'a str, XmlError> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            let class = CLASS[b as usize];
            let wanted = if self.pos == start {
                CLASS_NAME_START
            } else {
                CLASS_NAME
            };
            if class & wanted == 0 {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            let ctx: String = self.input[self.pos..].chars().take(8).collect();
            return Err(self.err(XmlErrorKind::InvalidName(ctx)));
        }
        Ok(&self.input[start..self.pos])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records every event, tagging whether its label was borrowed.
    #[derive(Default)]
    struct Recorder {
        events: Vec<String>,
        owned_labels: usize,
    }

    impl SkeletonSink for Recorder {
        fn open(&mut self, label: Cow<'_, str>) {
            if matches!(label, Cow::Owned(_)) {
                self.owned_labels += 1;
            }
            self.events.push(format!("open {label}"));
        }
        fn text(&mut self, label: Cow<'_, str>) {
            if matches!(label, Cow::Owned(_)) {
                self.owned_labels += 1;
            }
            self.events.push(format!("text {label}"));
        }
        fn close(&mut self) {
            self.events.push("close".to_string());
        }
    }

    fn events(input: &str) -> Vec<String> {
        let mut sink = Recorder::default();
        scan_document(input.as_bytes(), &ScanLimits::default(), &mut sink).unwrap();
        sink.events
    }

    #[test]
    fn emits_open_text_close_in_document_order() {
        assert_eq!(
            events("<p>hello <b>world</b> bye</p>"),
            vec![
                "open p",
                "text hello",
                "open b",
                "text world",
                "close",
                "text bye",
                "close",
            ]
        );
    }

    #[test]
    fn self_closing_tags_emit_an_open_close_pair() {
        assert_eq!(
            events("<a><b/></a>"),
            vec!["open a", "open b", "close", "close"]
        );
    }

    #[test]
    fn names_and_plain_text_borrow_from_the_input() {
        let mut sink = Recorder::default();
        scan_document(
            "<a attr='v'>plain <b/> runs</a>".as_bytes(),
            &ScanLimits::default(),
            &mut sink,
        )
        .unwrap();
        assert_eq!(sink.owned_labels, 0, "no allocation for entity-free input");
    }

    #[test]
    fn entity_decoding_and_cdata_splicing_allocate() {
        assert_eq!(
            events("<a>x&amp;y</a>"),
            vec!["open a", "text x&y", "close"]
        );
        assert_eq!(
            events("<a>x<![CDATA[<raw>]]>y</a>"),
            vec!["open a", "text x<raw>y", "close"]
        );
        let mut sink = Recorder::default();
        scan_document(
            "<a>x&amp;y</a>".as_bytes(),
            &ScanLimits::default(),
            &mut sink,
        )
        .unwrap();
        assert_eq!(sink.owned_labels, 1);
    }

    #[test]
    fn comments_and_pis_flush_text_like_the_parser() {
        assert_eq!(
            events("<a>x<!-- c -->y<?pi?>z</a>"),
            vec!["open a", "text x", "text y", "text z", "close"]
        );
    }

    #[test]
    fn invalid_utf8_is_reported_with_the_valid_prefix_length() {
        let mut bytes = b"<a>ok".to_vec();
        bytes.push(0xFF);
        let err = scan_document(&bytes, &ScanLimits::default(), &mut NullSink).unwrap_err();
        assert_eq!(*err.kind(), XmlErrorKind::InvalidUtf8);
        assert_eq!(err.offset(), 5);
    }

    #[test]
    fn depth_limit_matches_the_tree_parser() {
        let limits = ScanLimits::default();
        let input = "<a>".repeat(MAX_DEPTH * 2);
        let scan_err = scan_document(input.as_bytes(), &limits, &mut NullSink).unwrap_err();
        let parse_err = crate::parser::parse_document(&input).unwrap_err();
        assert_eq!(scan_err, parse_err);
        // Custom limits bite earlier.
        let tight = ScanLimits {
            max_depth: 4,
            ..ScanLimits::default()
        };
        let err = scan_document(
            "<a><b><c><d/></c></b></a>".as_bytes(),
            &tight,
            &mut NullSink,
        );
        assert!(err.is_ok(), "self-closing at the limit is fine");
        let err = scan_document(
            "<a><b><c><d></d></c></b></a>".as_bytes(),
            &tight,
            &mut NullSink,
        )
        .unwrap_err();
        assert!(matches!(
            err.kind(),
            XmlErrorKind::LimitExceeded { what, limit }
                if *what == "element nesting depth" && *limit == 4
        ));
    }

    #[test]
    fn attribute_limit_is_configurable() {
        let tight = ScanLimits {
            max_attributes: 2,
            ..ScanLimits::default()
        };
        assert!(scan_document(r#"<a x="1" y="2"/>"#.as_bytes(), &tight, &mut NullSink).is_ok());
        let err = scan_document(
            r#"<a x="1" y="2" z="3"/>"#.as_bytes(),
            &tight,
            &mut NullSink,
        )
        .unwrap_err();
        assert!(matches!(
            err.kind(),
            XmlErrorKind::LimitExceeded { what, limit }
                if *what == "attribute count" && *limit == 2
        ));
    }

    #[test]
    fn prolog_epilog_and_errors_mirror_the_parser() {
        for input in [
            r#"<?xml version="1.0"?><!DOCTYPE a []><a><!-- c --><b/></a><!-- t -->"#,
            "<a>&lt;x&gt;</a>",
            "<données><été>chaud</été></données>",
            "<a/><b/>",
            "</a>",
            "<a><b></c></a>",
            "<a attr></a>",
            "<a attr=1></a>",
            "<a>&nope;</a>",
            "<a><b>",
            "   ",
            "<a><![CDATA[never closed",
        ] {
            let scanned = scan_document(input.as_bytes(), &ScanLimits::default(), &mut NullSink);
            let parsed = crate::parser::parse_document(input).map(|_| ());
            assert_eq!(scanned, parsed, "input: {input:?}");
        }
    }
}
