//! Root-to-leaf path enumeration.
//!
//! The synopsis is updated one root-to-leaf path at a time (Section 3.1):
//! for each path of the document skeleton, the document identifier is added
//! to the matching set of the last node of the corresponding synopsis path.

use crate::tree::{NodeId, XmlTree};

/// Iterator over the root-to-leaf label paths of a tree, created by
/// [`XmlTree::root_to_leaf_paths`].
///
/// Each item is the sequence of labels from the root down to one leaf,
/// including both endpoints.
#[derive(Debug)]
pub struct RootToLeafPaths<'a> {
    tree: &'a XmlTree,
    /// Leaves not yet yielded, in pre-order.
    leaves: Vec<NodeId>,
    next: usize,
}

impl<'a> RootToLeafPaths<'a> {
    pub(crate) fn new(tree: &'a XmlTree) -> Self {
        let leaves: Vec<NodeId> = tree
            .preorder()
            .filter(|&n| tree.node(n).is_leaf())
            .collect();
        Self {
            tree,
            leaves,
            next: 0,
        }
    }

    /// Number of root-to-leaf paths (= number of leaves).
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// Whether the document has no leaves (never true: the root counts as a
    /// leaf when it has no children).
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }
}

impl<'a> Iterator for RootToLeafPaths<'a> {
    type Item = Vec<&'a str>;

    fn next(&mut self) -> Option<Self::Item> {
        let leaf = *self.leaves.get(self.next)?;
        self.next += 1;
        Some(self.tree.path_labels(leaf))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.leaves.len() - self.next;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for RootToLeafPaths<'_> {}

/// Collect all root-to-leaf paths of a tree as joined strings (`a/b/c`),
/// mainly useful in tests and diagnostics.
pub fn path_strings(tree: &XmlTree) -> Vec<String> {
    tree.root_to_leaf_paths().map(|p| p.join("/")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::XmlTree;

    #[test]
    fn single_node_tree_has_one_path() {
        let t = XmlTree::new("a");
        let paths = path_strings(&t);
        assert_eq!(paths, vec!["a"]);
    }

    #[test]
    fn enumerates_all_leaves_in_preorder() {
        let t = XmlTree::parse("<a><b><c/><d/></b><e>txt</e></a>").unwrap();
        let paths = path_strings(&t);
        assert_eq!(paths, vec!["a/b/c", "a/b/d", "a/e/txt"]);
    }

    #[test]
    fn exact_size_iterator_reports_len() {
        let t = XmlTree::parse("<a><b/><c/><d/></a>").unwrap();
        let iter = t.root_to_leaf_paths();
        assert_eq!(iter.len(), 3);
        assert_eq!(iter.count(), 3);
    }

    #[test]
    fn skeleton_paths_are_unique() {
        let t = XmlTree::parse("<a><b><c/></b><b><c/></b></a>").unwrap();
        let s = t.skeleton();
        let mut paths = path_strings(&s);
        let before = paths.len();
        paths.sort();
        paths.dedup();
        assert_eq!(paths.len(), before);
        assert_eq!(paths, vec!["a/b/c"]);
    }
}
