//! Skeleton tree construction (Section 3.1 of the paper).
//!
//! The skeleton tree `Ts` of a document `T` is obtained by coalescing, at
//! every node, children that share the same tag, so that each node has *at
//! most one child per label*. Coalescing proceeds top-down: when two children
//! are merged, their own children become siblings and are merged recursively.
//!
//! The synopsis is maintained from skeleton trees: each root-to-leaf path of
//! the skeleton maps to a unique synopsis path.

use std::collections::HashMap;

use crate::tree::{NodeId, XmlTree};

/// Build the skeleton tree of `tree`.
///
/// The result contains the same set of root-to-node *label paths* as the
/// input, but each such path appears exactly once.
pub fn skeleton_of(tree: &XmlTree) -> XmlTree {
    let mut skeleton = XmlTree::new(tree.label(tree.root()));
    let root_group = vec![tree.root()];
    let skeleton_root = skeleton.root();
    coalesce_children(tree, &root_group, &mut skeleton, skeleton_root);
    skeleton
}

/// Coalesce the children of a *group* of source nodes that were merged into
/// the single skeleton node `target`.
fn coalesce_children(tree: &XmlTree, group: &[NodeId], skeleton: &mut XmlTree, target: NodeId) {
    // Group all children of all nodes in `group` by label, preserving the
    // order of first appearance so that the skeleton is deterministic.
    let mut order: Vec<&str> = Vec::new();
    let mut by_label: HashMap<&str, Vec<NodeId>> = HashMap::new();
    for &node in group {
        for &child in tree.children(node) {
            let label = tree.label(child);
            let entry = by_label.entry(label).or_default();
            if entry.is_empty() {
                order.push(label);
            }
            entry.push(child);
        }
    }
    for label in order {
        let members = &by_label[label];
        // A merged node is a text node only if every member was text; in
        // practice text leaves never have children so this is stable.
        let is_text = members.iter().all(|&m| tree.node(m).is_text());
        let new_node = if is_text {
            skeleton.add_text_child(target, label)
        } else {
            skeleton.add_child(target, label)
        };
        coalesce_children(tree, members, skeleton, new_node);
    }
}

/// Check whether `tree` already is a skeleton: no node has two children with
/// the same label.
pub fn is_skeleton(tree: &XmlTree) -> bool {
    for node in tree.preorder() {
        let children = tree.children(node);
        for (i, &a) in children.iter().enumerate() {
            for &b in &children[i + 1..] {
                if tree.label(a) == tree.label(b) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn label_paths(tree: &XmlTree) -> BTreeSet<String> {
        let mut paths = BTreeSet::new();
        for node in tree.preorder() {
            paths.insert(tree.path_labels(node).join("/"));
        }
        paths
    }

    #[test]
    fn coalesces_same_tag_siblings() {
        // a -> b, b  becomes a -> b
        let mut t = XmlTree::new("a");
        t.add_child(t.root(), "b");
        t.add_child(t.root(), "b");
        let s = t.skeleton();
        assert_eq!(s.node_count(), 2);
        assert!(is_skeleton(&s));
    }

    #[test]
    fn merged_children_are_recursively_coalesced() {
        // Paper Figure 2, document T1:
        // a -> b -> {e->k, e->m, g->m}  and another b -> ...
        // Build: a with two b children, each with overlapping grandchildren.
        let mut t = XmlTree::new("a");
        let b1 = t.add_child(t.root(), "b");
        let e1 = t.add_child(b1, "e");
        t.add_child(e1, "k");
        let b2 = t.add_child(t.root(), "b");
        let e2 = t.add_child(b2, "e");
        t.add_child(e2, "m");
        let g = t.add_child(b2, "g");
        t.add_child(g, "m");

        let s = t.skeleton();
        assert!(is_skeleton(&s));
        // skeleton: a -> b -> { e -> {k, m}, g -> m }
        assert_eq!(s.node_count(), 7);
        let paths = label_paths(&s);
        assert!(paths.contains("a/b/e/k"));
        assert!(paths.contains("a/b/e/m"));
        assert!(paths.contains("a/b/g/m"));
    }

    #[test]
    fn skeleton_preserves_label_path_set() {
        let t =
            XmlTree::parse("<a><b><e>k</e><g>m</g></b><b><e>m</e></b><c><f>n</f><f>k</f></c></a>")
                .unwrap();
        let s = t.skeleton();
        assert!(is_skeleton(&s));
        assert_eq!(label_paths(&t), label_paths(&s));
    }

    #[test]
    fn skeleton_of_skeleton_is_identity() {
        let t = XmlTree::parse("<a><b><c/><c/></b><b><d/></b></a>").unwrap();
        let s = t.skeleton();
        let s2 = s.skeleton();
        assert_eq!(s, s2);
    }

    #[test]
    fn paper_figure2_t1_skeleton() {
        // T1 in Figure 2: a(b(e(k), e(m), g(m)), b(e(k)))  -- approximated from
        // the figure: skeleton of T1 is a -> b -> {e -> {k, m}, g -> {k, n}}?
        // We use the printed skeleton: a / b / {e -> k, m? ...}. The exact
        // figure is hard to read; this test checks the defining property
        // instead: same label paths, at most one child per label.
        let t = XmlTree::parse("<a><b><e><k/></e><e><m/></e><g><k/><n/></g></b></a>").unwrap();
        let s = t.skeleton();
        assert!(is_skeleton(&s));
        assert_eq!(label_paths(&t), label_paths(&s));
        // e appears once in the skeleton even though T has two e children.
        assert_eq!(s.count_label("e"), 1);
    }

    #[test]
    fn is_skeleton_detects_duplicates() {
        let mut t = XmlTree::new("a");
        t.add_child(t.root(), "b");
        t.add_child(t.root(), "b");
        assert!(!is_skeleton(&t));
        assert!(is_skeleton(&t.skeleton()));
    }

    #[test]
    fn text_leaves_survive_coalescing() {
        let t = XmlTree::parse("<a><b>x</b><b>x</b></a>").unwrap();
        let s = t.skeleton();
        assert_eq!(s.node_count(), 3);
        let leaf = s
            .preorder()
            .find(|&id| s.label(id) == "x")
            .expect("text leaf");
        assert!(s.node(leaf).is_text());
    }
}
