//! A minimal, dependency-free XML parser.
//!
//! The evaluation of the paper only needs element structure and leaf text
//! values, so this parser supports:
//!
//! * elements with arbitrary nesting and self-closing tags,
//! * attributes (parsed for well-formedness and then ignored — the paper's
//!   tree patterns do not address attributes),
//! * text content, which is attached as a *text leaf node* labelled with the
//!   trimmed text,
//! * XML declarations (`<?xml ...?>`), processing instructions, comments,
//!   `DOCTYPE` declarations and CDATA sections (CDATA text is inlined),
//! * the five predefined entity references plus decimal/hex character
//!   references.
//!
//! Anything outside this subset is reported as an [`XmlError`].

use crate::error::{XmlError, XmlErrorKind};
use crate::tree::{NodeId, XmlTree};

/// Maximum element nesting depth (root = depth 1). Recursion over element
/// content is proportional to this, so the bound keeps arbitrary input from
/// exhausting the stack; real documents stay far below it.
pub const MAX_DEPTH: usize = 512;

/// Maximum number of attributes on a single start tag.
pub const MAX_ATTRIBUTES: usize = 1024;

/// Parse a complete XML document into an [`XmlTree`].
pub fn parse_document(input: &str) -> Result<XmlTree, XmlError> {
    Parser::new(input).parse()
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, kind: XmlErrorKind) -> XmlError {
        XmlError::new(kind, self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn parse(mut self) -> Result<XmlTree, XmlError> {
        self.skip_prolog()?;
        self.skip_whitespace();
        if self.peek() != Some(b'<') || self.starts_with("</") {
            return Err(self.err(XmlErrorKind::NoRootElement));
        }
        let mut tree = self.parse_root_element()?;
        // After the root element, only misc (whitespace, comments, PIs) is allowed.
        loop {
            self.skip_whitespace();
            if self.pos >= self.bytes.len() {
                break;
            }
            if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<?") {
                self.skip_pi()?;
            } else {
                return Err(self.err(XmlErrorKind::TrailingContent));
            }
        }
        normalize_text_merges(&mut tree);
        Ok(tree)
    }

    /// Skip the XML declaration, comments, PIs and DOCTYPE before the root.
    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_whitespace();
            if self.starts_with("<?") {
                self.skip_pi()?;
            } else if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<!DOCTYPE") || self.starts_with("<!doctype") {
                self.skip_doctype()?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_pi(&mut self) -> Result<(), XmlError> {
        debug_assert!(self.starts_with("<?"));
        match self.input[self.pos..].find("?>") {
            Some(rel) => {
                self.pos += rel + 2;
                Ok(())
            }
            None => {
                self.pos = self.bytes.len();
                Err(self.err(XmlErrorKind::UnexpectedEof))
            }
        }
    }

    fn skip_comment(&mut self) -> Result<(), XmlError> {
        debug_assert!(self.starts_with("<!--"));
        match self.input[self.pos + 4..].find("-->") {
            Some(rel) => {
                self.pos += 4 + rel + 3;
                Ok(())
            }
            None => {
                self.pos = self.bytes.len();
                Err(self.err(XmlErrorKind::UnexpectedEof))
            }
        }
    }

    fn skip_doctype(&mut self) -> Result<(), XmlError> {
        // Skip until the matching '>', accounting for an optional internal
        // subset delimited by brackets.
        let mut depth = 0usize;
        while let Some(c) = self.peek() {
            self.pos += 1;
            match c {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'>' if depth == 0 => return Ok(()),
                _ => {}
            }
        }
        Err(self.err(XmlErrorKind::UnexpectedEof))
    }

    fn parse_root_element(&mut self) -> Result<XmlTree, XmlError> {
        // We are positioned at '<' of the root start tag.
        let (name, self_closing) = self.parse_start_tag()?;
        let mut tree = XmlTree::new(&name);
        let root = tree.root();
        if !self_closing {
            self.parse_content(&mut tree, root, &name, 1)?;
        }
        Ok(tree)
    }

    /// Parse the content of an open element until its end tag is consumed.
    /// `depth` is the nesting depth of the open element (root = 1); it bounds
    /// the recursion so adversarial nesting cannot overflow the stack.
    fn parse_content(
        &mut self,
        tree: &mut XmlTree,
        parent: NodeId,
        parent_name: &str,
        depth: usize,
    ) -> Result<(), XmlError> {
        if depth >= MAX_DEPTH {
            return Err(self.err(XmlErrorKind::LimitExceeded {
                what: "element nesting depth",
                limit: MAX_DEPTH,
            }));
        }
        let mut text = String::new();
        loop {
            if self.pos >= self.bytes.len() {
                return Err(self.err(XmlErrorKind::UnexpectedEof));
            }
            if self.starts_with("<!--") {
                self.flush_text(tree, parent, &mut text);
                self.skip_comment()?;
            } else if self.starts_with("<![CDATA[") {
                let start = self.pos + 9;
                match self.input[start..].find("]]>") {
                    Some(rel) => {
                        text.push_str(&self.input[start..start + rel]);
                        self.pos = start + rel + 3;
                    }
                    None => {
                        self.pos = self.bytes.len();
                        return Err(self.err(XmlErrorKind::UnexpectedEof));
                    }
                }
            } else if self.starts_with("<?") {
                self.flush_text(tree, parent, &mut text);
                self.skip_pi()?;
            } else if self.starts_with("</") {
                self.flush_text(tree, parent, &mut text);
                let close = self.parse_end_tag()?;
                if close != parent_name {
                    return Err(self.err(XmlErrorKind::MismatchedClosingTag {
                        expected: parent_name.to_string(),
                        found: close,
                    }));
                }
                return Ok(());
            } else if self.peek() == Some(b'<') {
                self.flush_text(tree, parent, &mut text);
                let (name, self_closing) = self.parse_start_tag()?;
                let child = tree.add_child(parent, &name);
                if !self_closing {
                    self.parse_content(tree, child, &name, depth + 1)?;
                }
            } else {
                // Character data.
                let start = self.pos;
                while self.pos < self.bytes.len() && self.peek() != Some(b'<') {
                    self.pos += 1;
                }
                let raw = &self.input[start..self.pos];
                text.push_str(&decode_entities(raw, start)?);
            }
        }
    }

    fn flush_text(&mut self, tree: &mut XmlTree, parent: NodeId, text: &mut String) {
        let trimmed = text.trim();
        if !trimmed.is_empty() {
            tree.add_text_child(parent, trimmed);
        }
        text.clear();
    }

    /// Parse `<name attr="v" ...>` or `<name ... />`. Returns the element
    /// name and whether the tag was self-closing.
    fn parse_start_tag(&mut self) -> Result<(String, bool), XmlError> {
        debug_assert_eq!(self.peek(), Some(b'<'));
        self.pos += 1;
        let name = self.parse_name()?;
        let mut attributes = 0usize;
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    return Ok((name, false));
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() == Some(b'>') {
                        self.pos += 1;
                        return Ok((name, true));
                    }
                    return Err(self.err(XmlErrorKind::Malformed(
                        "expected '>' after '/' in tag".to_string(),
                    )));
                }
                Some(_) => {
                    attributes += 1;
                    if attributes > MAX_ATTRIBUTES {
                        return Err(self.err(XmlErrorKind::LimitExceeded {
                            what: "attribute count",
                            limit: MAX_ATTRIBUTES,
                        }));
                    }
                    self.parse_attribute()?;
                }
                None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
            }
        }
    }

    fn parse_end_tag(&mut self) -> Result<String, XmlError> {
        debug_assert!(self.starts_with("</"));
        self.pos += 2;
        let name = self.parse_name()?;
        self.skip_whitespace();
        match self.peek() {
            Some(b'>') => {
                self.pos += 1;
                Ok(name)
            }
            Some(_) => Err(self.err(XmlErrorKind::Malformed(
                "expected '>' in closing tag".to_string(),
            ))),
            None => Err(self.err(XmlErrorKind::UnexpectedEof)),
        }
    }

    fn parse_attribute(&mut self) -> Result<(), XmlError> {
        let _name = self.parse_name()?;
        self.skip_whitespace();
        if self.peek() != Some(b'=') {
            // Attribute without a value is not well-formed XML.
            return Err(self.err(XmlErrorKind::Malformed(
                "attribute without '=' value".to_string(),
            )));
        }
        self.pos += 1;
        self.skip_whitespace();
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            Some(_) => {
                return Err(self.err(XmlErrorKind::Malformed(
                    "attribute value must be quoted".to_string(),
                )))
            }
            None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
        };
        self.pos += 1;
        while let Some(c) = self.peek() {
            self.pos += 1;
            if c == quote {
                return Ok(());
            }
        }
        Err(self.err(XmlErrorKind::UnexpectedEof))
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if is_name_byte(c, self.pos == start) {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            let ctx: String = self.input[self.pos..].chars().take(8).collect();
            return Err(self.err(XmlErrorKind::InvalidName(ctx)));
        }
        Ok(self.input[start..self.pos].to_string())
    }
}

fn is_name_byte(c: u8, first: bool) -> bool {
    let alpha = c.is_ascii_alphabetic() || c == b'_' || c == b':' || !c.is_ascii();
    if first {
        alpha
    } else {
        alpha || c.is_ascii_digit() || c == b'-' || c == b'.'
    }
}

/// Decode the predefined entities and numeric character references of `raw`.
/// Shared with the streaming scanner (`crate::scan`) so both ingest paths
/// agree byte-for-byte on entity handling.
pub(crate) fn decode_entities(raw: &str, offset: usize) -> Result<String, XmlError> {
    if !raw.contains('&') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.char_indices().peekable();
    while let Some((i, c)) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        // Collect up to ';'
        let mut entity = String::new();
        let mut closed = false;
        for (_, e) in chars.by_ref() {
            if e == ';' {
                closed = true;
                break;
            }
            entity.push(e);
            if entity.len() > 10 {
                break;
            }
        }
        if !closed {
            return Err(XmlError::new(
                XmlErrorKind::InvalidEntity(entity),
                offset + i,
            ));
        }
        match entity.as_str() {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "apos" => out.push('\''),
            "quot" => out.push('"'),
            _ => {
                if let Some(num) = entity
                    .strip_prefix("#x")
                    .or_else(|| entity.strip_prefix("#X"))
                {
                    let code = u32::from_str_radix(num, 16).ok();
                    match code.and_then(char::from_u32) {
                        Some(ch) => out.push(ch),
                        None => {
                            return Err(XmlError::new(
                                XmlErrorKind::InvalidEntity(entity),
                                offset + i,
                            ))
                        }
                    }
                } else if let Some(num) = entity.strip_prefix('#') {
                    let code = num.parse::<u32>().ok();
                    match code.and_then(char::from_u32) {
                        Some(ch) => out.push(ch),
                        None => {
                            return Err(XmlError::new(
                                XmlErrorKind::InvalidEntity(entity),
                                offset + i,
                            ))
                        }
                    }
                } else {
                    return Err(XmlError::new(
                        XmlErrorKind::InvalidEntity(entity),
                        offset + i,
                    ));
                }
            }
        }
    }
    Ok(out)
}

/// Merge adjacent text leaves that ended up as siblings (e.g. text split by a
/// comment); keeps the tree deterministic regardless of how text was chunked.
fn normalize_text_merges(tree: &mut XmlTree) {
    // The streaming construction already trims and concatenates text within a
    // single flush, so sibling text leaves only occur when interleaved with
    // markup. Merging them is not semantically required for pattern matching
    // (each text leaf is a label), so we leave the structure as parsed. This
    // function exists as a hook and documents the decision.
    let _ = tree;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_elements() {
        let t = parse_document("<a><b><c/></b><d></d></a>").unwrap();
        assert_eq!(t.label(t.root()), "a");
        let labels: Vec<&str> = t.preorder().map(|id| t.label(id)).collect();
        assert_eq!(labels, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn text_becomes_leaf_node() {
        let t = parse_document("<last>Mozart</last>").unwrap();
        assert_eq!(t.node_count(), 2);
        let leaf = t.children(t.root())[0];
        assert_eq!(t.label(leaf), "Mozart");
        assert!(t.node(leaf).is_text());
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let t = parse_document("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        assert_eq!(t.node_count(), 3);
    }

    #[test]
    fn attributes_are_accepted_and_ignored() {
        let t = parse_document(r#"<a id="1" name='x'><b class="y"/></a>"#).unwrap();
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.label(t.children(t.root())[0]), "b");
    }

    #[test]
    fn xml_declaration_comments_and_doctype_are_skipped() {
        let input = r#"<?xml version="1.0"?>
            <!DOCTYPE media [ <!ELEMENT media (CD)> ]>
            <!-- a comment -->
            <media><!-- inner --><CD/></media>
            <!-- trailing -->"#;
        let t = parse_document(input).unwrap();
        assert_eq!(t.label(t.root()), "media");
        assert_eq!(t.node_count(), 2);
    }

    #[test]
    fn cdata_is_inlined_as_text() {
        let t = parse_document("<a><![CDATA[raw <text> & stuff]]></a>").unwrap();
        let leaf = t.children(t.root())[0];
        assert_eq!(t.label(leaf), "raw <text> & stuff");
    }

    #[test]
    fn entities_are_decoded() {
        let t = parse_document("<a>&lt;x&gt; &amp; &#65;&#x42;</a>").unwrap();
        let leaf = t.children(t.root())[0];
        assert_eq!(t.label(leaf), "<x> & AB");
    }

    #[test]
    fn invalid_entity_is_an_error() {
        let err = parse_document("<a>&nope;</a>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::InvalidEntity(_)));
    }

    #[test]
    fn mismatched_closing_tag_is_an_error() {
        let err = parse_document("<a><b></c></a>").unwrap_err();
        assert!(matches!(
            err.kind(),
            XmlErrorKind::MismatchedClosingTag { .. }
        ));
    }

    #[test]
    fn unexpected_eof_is_an_error() {
        let err = parse_document("<a><b>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::UnexpectedEof));
    }

    #[test]
    fn trailing_content_is_an_error() {
        let err = parse_document("<a/><b/>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::TrailingContent));
    }

    #[test]
    fn empty_input_has_no_root() {
        let err = parse_document("   ").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::NoRootElement));
    }

    #[test]
    fn missing_attribute_value_is_malformed() {
        let err = parse_document("<a attr></a>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::Malformed(_)));
    }

    #[test]
    fn unquoted_attribute_value_is_malformed() {
        let err = parse_document("<a attr=1></a>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::Malformed(_)));
    }

    #[test]
    fn mixed_content_keeps_text_and_elements() {
        let t = parse_document("<p>hello <b>world</b> bye</p>").unwrap();
        let labels: Vec<&str> = t.children(t.root()).iter().map(|&c| t.label(c)).collect();
        assert_eq!(labels, vec!["hello", "b", "bye"]);
    }

    #[test]
    fn paper_figure1_document_parses() {
        let doc = "<media>\
            <book><author><first>William</first><last>Shakespeare</last></author>\
            <title>Hamlet</title></book>\
            <CD><composer><first>Wolfgang</first><last>Mozart</last></composer>\
            <title>Requiem</title>\
            <interpreter><ensemble>Berliner Phil.</ensemble></interpreter></CD>\
            </media>";
        let t = parse_document(doc).unwrap();
        assert_eq!(t.label(t.root()), "media");
        assert_eq!(t.count_label("title"), 2);
        assert_eq!(t.count_label("Mozart"), 1);
        assert_eq!(t.depth(), 5);
    }

    #[test]
    fn unicode_tag_names_are_accepted() {
        let t = parse_document("<données><été>chaud</été></données>").unwrap();
        assert_eq!(t.label(t.root()), "données");
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        // Twice the limit in open tags: must come back as a typed error
        // (recursion is bounded by MAX_DEPTH, so no stack overflow).
        let input = "<a>".repeat(MAX_DEPTH * 2);
        let err = parse_document(&input).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                XmlErrorKind::LimitExceeded { what, limit }
                    if *what == "element nesting depth" && *limit == MAX_DEPTH
            ),
            "{err}"
        );
        // A document just under the limit still parses.
        let n = MAX_DEPTH - 1;
        let ok = format!("{}{}", "<a>".repeat(n), "</a>".repeat(n));
        assert!(parse_document(&ok).is_ok());
    }

    #[test]
    fn huge_attribute_lists_are_rejected() {
        let mut input = String::from("<a");
        for i in 0..(MAX_ATTRIBUTES + 1) {
            input.push_str(&format!(" x{i}=\"v\""));
        }
        input.push_str("/>");
        let err = parse_document(&input).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                XmlErrorKind::LimitExceeded { what, .. } if *what == "attribute count"
            ),
            "{err}"
        );
    }

    #[test]
    fn unexpected_closing_tag_variant_exists() {
        // A document that starts with a closing tag has no root element.
        let err = parse_document("</a>").unwrap_err();
        assert!(matches!(
            err.kind(),
            XmlErrorKind::NoRootElement | XmlErrorKind::UnexpectedClosingTag(_)
        ));
    }
}
