//! Serialisation of [`XmlTree`] back to XML text.
//!
//! The writer produces a canonical, attribute-free form: element nodes become
//! tags and text leaves become escaped character data. Round-tripping a tree
//! through [`write_document`] and [`crate::parser::parse_document`] yields an
//! equal tree (this is covered by property tests).

use crate::tree::{NodeId, XmlTree};

/// Serialise a tree to XML text.
pub fn write_document(tree: &XmlTree) -> String {
    let mut out = String::new();
    write_node(tree, tree.root(), &mut out);
    out
}

fn write_node(tree: &XmlTree, id: NodeId, out: &mut String) {
    let node = tree.node(id);
    if node.is_text() {
        out.push_str(&escape_text(node.label()));
        return;
    }
    out.push('<');
    out.push_str(node.label());
    if node.is_leaf() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for &child in node.children() {
        write_node(tree, child, out);
    }
    out.push_str("</");
    out.push_str(node.label());
    out.push('>');
}

/// Escape the characters that are significant in XML character data.
pub fn escape_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::XmlTree;

    #[test]
    fn writes_empty_element_self_closed() {
        let t = XmlTree::new("a");
        assert_eq!(write_document(&t), "<a/>");
    }

    #[test]
    fn writes_nested_elements() {
        let mut t = XmlTree::new("a");
        let b = t.add_child(t.root(), "b");
        t.add_child(b, "c");
        t.add_child(t.root(), "d");
        assert_eq!(write_document(&t), "<a><b><c/></b><d/></a>");
    }

    #[test]
    fn writes_text_leaves_escaped() {
        let mut t = XmlTree::new("x");
        t.add_text_child(t.root(), "a < b & c");
        assert_eq!(write_document(&t), "<x>a &lt; b &amp; c</x>");
    }

    #[test]
    fn round_trip_simple_document() {
        let original = "<media><CD><last>Mozart</last></CD></media>";
        let t = XmlTree::parse(original).unwrap();
        let written = t.to_xml();
        let reparsed = XmlTree::parse(&written).unwrap();
        assert_eq!(t, reparsed);
    }

    #[test]
    fn escape_text_handles_all_special_characters() {
        assert_eq!(escape_text("<>&\"'"), "&lt;&gt;&amp;&quot;&apos;");
        assert_eq!(escape_text("plain"), "plain");
    }
}
