//! Label interning.
//!
//! Tag names appear very frequently in documents, synopses and patterns.
//! Downstream crates (notably the synopsis) intern labels so that label
//! comparisons and hash-map lookups operate on small integer ids instead of
//! strings.

use std::collections::HashMap;
use std::fmt;

/// An interned label identifier.
///
/// Ids are dense (`0..table.len()`) and stable for the lifetime of the
/// [`LabelTable`] that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LabelId(u32);

impl LabelId {
    /// The id as a `usize`, suitable for indexing dense per-label tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct a `LabelId` from a raw index.
    ///
    /// Intended for dense-table iteration (`0..table.len()`); passing an
    /// index that was never produced by the owning table simply yields an id
    /// unknown to that table.
    pub fn from_index(index: usize) -> Self {
        LabelId(index as u32)
    }
}

impl fmt::Display for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A simple string interner for element labels.
///
/// # Example
///
/// ```
/// use tps_xml::LabelTable;
///
/// let mut table = LabelTable::new();
/// let a = table.intern("media");
/// let b = table.intern("CD");
/// assert_ne!(a, b);
/// assert_eq!(table.intern("media"), a);
/// assert_eq!(table.resolve(a), "media");
/// assert_eq!(table.len(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct LabelTable {
    names: Vec<Box<str>>,
    ids: HashMap<Box<str>, LabelId>,
}

impl LabelTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its id. Repeated calls with the same string
    /// return the same id.
    pub fn intern(&mut self, name: &str) -> LabelId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = LabelId(self.names.len() as u32);
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.ids.insert(boxed, id);
        id
    }

    /// Look up an already interned label without inserting it.
    pub fn get(&self, name: &str) -> Option<LabelId> {
        self.ids.get(name).copied()
    }

    /// Resolve an id back to its string.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn resolve(&self, id: LabelId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct labels interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over `(id, name)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (LabelId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (LabelId(i as u32), n.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = LabelTable::new();
        let a = t.intern("a");
        let a2 = t.intern("a");
        assert_eq!(a, a2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_labels_get_distinct_dense_ids() {
        let mut t = LabelTable::new();
        let ids: Vec<LabelId> = (0..100).map(|i| t.intern(&format!("tag{i}"))).collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), i);
            assert_eq!(t.resolve(*id), format!("tag{i}"));
        }
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn get_does_not_insert() {
        let mut t = LabelTable::new();
        assert!(t.get("missing").is_none());
        assert!(t.is_empty());
        t.intern("present");
        assert!(t.get("present").is_some());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn iter_yields_insertion_order() {
        let mut t = LabelTable::new();
        t.intern("x");
        t.intern("y");
        t.intern("z");
        let names: Vec<&str> = t.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["x", "y", "z"]);
    }

    #[test]
    fn display_and_from_index_round_trip() {
        let id = LabelId::from_index(5);
        assert_eq!(id.index(), 5);
        assert_eq!(id.to_string(), "#5");
    }
}
