//! Integration tests for synopsis pruning under a space budget: the
//! compressed synopsis must shrink as requested, keep its structural
//! invariants, and continue to produce sane (if less accurate) estimates.

use tree_pattern_similarity::core::{ExactEvaluator, SelectivityEstimator};
use tree_pattern_similarity::prelude::*;
use tree_pattern_similarity::synopsis::PruneConfig;

fn workload() -> Dataset {
    // NITF-scale keeps the synopsis small enough for debug-build test runs;
    // the xCBL-scale pruning behaviour is covered by the experiment harness.
    let config = DatasetConfig::small()
        .with_scale(120, 25, 10)
        .with_seed(777);
    Dataset::generate(Dtd::nitf_like(), &config)
}

#[test]
fn pruning_reaches_decreasing_size_targets() {
    let dataset = workload();
    let base = Synopsis::from_documents(SynopsisConfig::hashes(64), &dataset.documents);
    let original = base.size().total();
    let mut previous = original;
    for alpha in [0.7, 0.4] {
        let mut synopsis = base.clone();
        let report = synopsis.prune_to_ratio(alpha, PruneConfig::default());
        assert_eq!(report.original_size, original);
        assert!(
            report.final_size as f64 <= alpha * original as f64 * 1.05 + 64.0,
            "α={alpha}: final {} vs original {}",
            report.final_size,
            original
        );
        assert!(report.final_size <= previous);
        previous = report.final_size;
    }
}

#[test]
fn pruned_synopsis_keeps_estimates_in_range_and_root_paths_intact() {
    let dataset = workload();
    let exact = ExactEvaluator::new(dataset.documents.clone());
    let mut synopsis = Synopsis::from_documents(SynopsisConfig::hashes(64), &dataset.documents);
    synopsis.prune_to_ratio(0.3, PruneConfig::default());
    synopsis.prepare();
    let estimator = SelectivityEstimator::new(&synopsis);
    for pattern in dataset.positive.iter() {
        let estimate = estimator.selectivity(pattern);
        assert!(
            (0.0..=1.0).contains(&estimate),
            "estimate out of range for {pattern}: {estimate}"
        );
    }
    // The root element path is so frequent that pruning must not lose it.
    let root_pattern = TreePattern::parse("/root").unwrap();
    assert!(estimator.selectivity(&root_pattern) > 0.9);
    assert_eq!(exact.selectivity(&root_pattern), 1.0);
}

#[test]
fn lossless_folding_preserves_positive_estimates() {
    let dataset = workload();
    let mut synopsis = Synopsis::from_documents(SynopsisConfig::sets(1_000), &dataset.documents);
    let exact = ExactEvaluator::new(dataset.documents.clone());
    let before: Vec<f64> = {
        let estimator = SelectivityEstimator::new(&synopsis);
        dataset
            .positive
            .iter()
            .map(|p| estimator.selectivity(p))
            .collect()
    };
    let folds = synopsis.fold_identical_leaves(0.999_999);
    synopsis.prepare();
    let estimator = SelectivityEstimator::new(&synopsis);
    for ((pattern, &old), truth) in dataset
        .positive
        .iter()
        .zip(&before)
        .zip(dataset.positive.iter().map(|p| exact.selectivity(p)))
    {
        let new = estimator.selectivity(pattern);
        assert!(
            new + 1e-9 >= old.min(truth),
            "lossless folding must not lose documents for {pattern}: {new} < {old}"
        );
    }
    // The workload is DTD-driven, so mandatory children exist and folding
    // finds work to do.
    assert!(folds > 0, "expected at least one lossless fold");
}

#[test]
fn merging_preserves_structural_invariants() {
    let dataset = workload();
    let mut synopsis = Synopsis::from_documents(SynopsisConfig::hashes(32), &dataset.documents);
    let target = synopsis.size().total() * 2 / 3;
    synopsis.merge_same_label_until(32, target);
    // Invariants: every live child's parents point back at it and vice versa.
    for id in synopsis.live_nodes() {
        for &child in synopsis.children(id) {
            assert!(synopsis.is_alive(child), "dead child reachable from {id:?}");
            assert!(
                synopsis.parents(child).contains(&id),
                "child {child:?} does not list {id:?} as parent"
            );
        }
        for &parent in synopsis.parents(id) {
            assert!(
                synopsis.children(parent).contains(&id),
                "parent {parent:?} does not list {id:?} as child"
            );
        }
    }
}

#[test]
fn deleting_rare_leaves_mostly_affects_rare_patterns() {
    let dataset = workload();
    let mut synopsis = Synopsis::from_documents(SynopsisConfig::counters(), &dataset.documents);
    let exact = ExactEvaluator::new(dataset.documents.clone());
    // Delete aggressively.
    let target = synopsis.size().total() / 2;
    synopsis.delete_smallest_leaves_until(target);
    synopsis.prepare();
    let estimator = SelectivityEstimator::new(&synopsis);
    // Frequent patterns (selectivity >= 0.5) should still be estimated > 0.
    for pattern in &dataset.positive {
        if exact.selectivity(pattern) >= 0.5 {
            assert!(
                estimator.selectivity(pattern) > 0.0,
                "frequent pattern {pattern} was lost by low-cardinality deletion"
            );
        }
    }
}
