//! End-to-end integration tests across all crates: generate a workload,
//! build synopses under every representation, and compare estimated
//! selectivities and similarities with the exact evaluator.

use tree_pattern_similarity::core::{ExactEvaluator, ProximityMetric, SelectivityEstimator};
use tree_pattern_similarity::prelude::*;
use tree_pattern_similarity::synopsis::MatchingSetKind;

fn small_dataset() -> Dataset {
    let config = DatasetConfig::small()
        .with_scale(150, 40, 20)
        .with_seed(424_242);
    Dataset::generate(Dtd::nitf_like(), &config)
}

fn build(dataset: &Dataset, kind: MatchingSetKind) -> Synopsis {
    let mut synopsis = Synopsis::from_documents(
        SynopsisConfig {
            kind,
            ..SynopsisConfig::counters()
        },
        &dataset.documents,
    );
    synopsis.prepare();
    synopsis
}

#[test]
fn lossless_synopses_reproduce_exact_selectivities() {
    let dataset = small_dataset();
    let exact = ExactEvaluator::new(dataset.documents.clone());
    for kind in [
        MatchingSetKind::Sets { capacity: 100_000 },
        MatchingSetKind::Hashes { capacity: 100_000 },
    ] {
        let synopsis = build(&dataset, kind);
        let estimator = SelectivityEstimator::new(&synopsis);
        for pattern in dataset.positive.iter().chain(dataset.negative.iter()) {
            let estimated = estimator.selectivity(pattern);
            let truth = exact.selectivity(pattern);
            assert!(
                (estimated - truth).abs() < 1e-9,
                "{kind:?} mis-estimated {pattern}: {estimated} vs {truth}"
            );
        }
    }
}

#[test]
fn negative_patterns_have_small_estimation_error() {
    // Negative patterns cannot always be recognised exactly: a pattern whose
    // individual paths all occur (in different documents, or under sibling
    // elements that the skeleton coalesces) receives a small positive
    // estimate — this is exactly the error Figure 5 measures. The RMSE must
    // nevertheless stay small, and sampled representations must be far more
    // accurate than counters (whose independence assumption inflates it).
    let dataset = small_dataset();
    let rmse_of = |kind: MatchingSetKind| -> f64 {
        let synopsis = build(&dataset, kind);
        let estimator = SelectivityEstimator::new(&synopsis);
        let sum: f64 = dataset
            .negative
            .iter()
            .map(|p| estimator.selectivity(p).powi(2))
            .sum();
        (sum / dataset.negative.len() as f64).sqrt()
    };
    let counters = rmse_of(MatchingSetKind::Counters);
    let sets = rmse_of(MatchingSetKind::Sets { capacity: 100_000 });
    let hashes = rmse_of(MatchingSetKind::Hashes { capacity: 100_000 });
    assert!(counters < 0.4, "counters Esqr too large: {counters}");
    assert!(sets < 0.1, "sets Esqr too large: {sets}");
    assert!(hashes < 0.1, "hashes Esqr too large: {hashes}");
    assert!(hashes <= counters + 1e-12);
}

#[test]
fn hash_samples_beat_counters_on_positive_workload_error() {
    let dataset = small_dataset();
    let exact = ExactEvaluator::new(dataset.documents.clone());
    let error_of = |kind: MatchingSetKind| -> f64 {
        let synopsis = build(&dataset, kind);
        let estimator = SelectivityEstimator::new(&synopsis);
        let mut total = 0.0;
        let mut count = 0;
        for pattern in &dataset.positive {
            let truth = exact.selectivity(pattern);
            if truth > 0.0 {
                total += (estimator.selectivity(pattern) - truth).abs() / truth;
                count += 1;
            }
        }
        total / count as f64
    };
    let counters = error_of(MatchingSetKind::Counters);
    let hashes = error_of(MatchingSetKind::Hashes { capacity: 1_000 });
    assert!(
        hashes <= counters + 1e-9,
        "hashes ({hashes}) should not be worse than counters ({counters})"
    );
    assert!(
        hashes < 0.05,
        "large hash samples should be nearly exact: {hashes}"
    );
}

#[test]
fn similarity_estimates_track_exact_similarities() {
    let dataset = small_dataset();
    let exact = ExactEvaluator::new(dataset.documents.clone());
    let mut engine = SimilarityEngine::new(SynopsisConfig::hashes(100_000));
    engine.ingest(ingest::trees(&dataset.documents)).unwrap();
    let ids = engine.register_all(&dataset.positive);
    for metric in ProximityMetric::all() {
        for (window, handles) in dataset.positive.windows(2).zip(ids.windows(2)).take(20) {
            let (p, q) = (&window[0], &window[1]);
            let estimated = engine.similarity(handles[0], handles[1], metric);
            let truth = exact.similarity(p, q, metric);
            assert!(
                (estimated - truth).abs() < 1e-9,
                "{metric} mismatch for {p} vs {q}: {estimated} vs {truth}"
            );
        }
    }
}

#[test]
fn streaming_and_batch_construction_agree() {
    let dataset = small_dataset();
    let batch = Synopsis::from_documents(SynopsisConfig::hashes(128), &dataset.documents);
    let mut streaming = SimilarityEngine::new(SynopsisConfig::hashes(128));
    for doc in &dataset.documents {
        streaming.ingest(ingest::tree(doc)).unwrap();
    }
    assert_eq!(batch.document_count(), streaming.document_count());
    assert_eq!(batch.node_count(), streaming.synopsis().node_count());
    let estimator = SelectivityEstimator::new(&batch);
    for pattern in dataset.positive.iter().take(10) {
        assert!((estimator.selectivity(pattern) - streaming.selectivity_of(pattern)).abs() < 1e-9);
    }
}

#[test]
fn reservoir_sets_stay_within_capacity_and_remain_usable() {
    let dataset = small_dataset();
    let synopsis = build(&dataset, MatchingSetKind::Sets { capacity: 32 });
    assert!(synopsis.universe_value().count_units() <= 32.0);
    let estimator = SelectivityEstimator::new(&synopsis);
    for pattern in dataset.positive.iter().take(20) {
        let s = estimator.selectivity(pattern);
        assert!((0.0..=1.0).contains(&s));
    }
}

#[test]
fn skeleton_reduction_is_transparent_to_selectivity() {
    // Inserting documents or their skeletons produces the same synopsis and
    // the same estimates.
    let dataset = small_dataset();
    let from_docs = Synopsis::from_documents(SynopsisConfig::counters(), &dataset.documents);
    let skeletons: Vec<XmlTree> = dataset.documents.iter().map(|d| d.skeleton()).collect();
    let from_skeletons = Synopsis::from_documents(SynopsisConfig::counters(), &skeletons);
    assert_eq!(from_docs.node_count(), from_skeletons.node_count());
    let a = SelectivityEstimator::new(&from_docs);
    let b = SelectivityEstimator::new(&from_skeletons);
    for pattern in dataset.positive.iter().take(20) {
        assert!((a.selectivity(pattern) - b.selectivity(pattern)).abs() < 1e-9);
    }
}
