//! Integration tests for the routing application: communities built from
//! *estimated* similarities should behave like communities built from exact
//! similarities, and community routing should trade a bounded amount of
//! accuracy for a large reduction in filtering cost.
//!
//! The workload is deliberately modest (120 documents, 24 subscriptions):
//! combined with the batch-first `SimilarityEngine` — which evaluates each
//! marginal once and each unordered joint once across a whole clustering
//! pass — it keeps this suite far below its previous ~40 s debug wall-clock
//! while preserving every end-to-end assertion.

use tree_pattern_similarity::core::ExactEvaluator;
use tree_pattern_similarity::prelude::*;
use tree_pattern_similarity::routing::{Broker, Consumer, RoutingStrategy};

fn workload() -> Dataset {
    let config = DatasetConfig::small()
        .with_scale(120, 24, 0)
        .with_seed(31_337);
    Dataset::generate(Dtd::nitf_like(), &config)
}

/// An engine over the workload's documents with every subscription
/// registered, using the given matching-set representation.
fn engine_over(dataset: &Dataset, config: SynopsisConfig) -> (SimilarityEngine, Vec<PatternId>) {
    let mut engine = SimilarityEngine::new(config);
    engine.ingest(ingest::trees(&dataset.documents)).unwrap();
    let ids = engine.register_all(&dataset.positive);
    (engine, ids)
}

#[test]
fn estimated_and_exact_similarities_produce_similar_community_counts() {
    let dataset = workload();
    let exact = ExactEvaluator::new(dataset.documents.clone());

    // Estimated similarities from a hash-sample synopsis.
    let (estimated, estimated_ids) = engine_over(&dataset, SynopsisConfig::hashes(512));

    // Exact similarities via a lossless synopsis (reservoir larger than the
    // stream).
    let (exact_engine, exact_ids) = engine_over(&dataset, SynopsisConfig::sets(10_000));

    let config = CommunityConfig {
        metric: ProximityMetric::M3,
        threshold: 0.6,
        max_community_size: 0,
    };
    let estimated_clusters = CommunityClustering::cluster(&estimated, &estimated_ids, config);
    let exact_clusters = CommunityClustering::cluster(&exact_engine, &exact_ids, config);

    // The community structure should be close: within a factor of two in
    // count, and most co-membership decisions should agree.
    let a = estimated_clusters.len() as f64;
    let b = exact_clusters.len() as f64;
    assert!(
        a <= 2.0 * b && b <= 2.0 * a,
        "community counts diverge: {a} vs {b}"
    );

    let assign_est = estimated_clusters.assignment(dataset.positive.len());
    let assign_exact = exact_clusters.assignment(dataset.positive.len());
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..dataset.positive.len() {
        for j in (i + 1)..dataset.positive.len() {
            let same_est = assign_est[i] == assign_est[j];
            let same_exact = assign_exact[i] == assign_exact[j];
            if same_est == same_exact {
                agree += 1;
            }
            total += 1;
        }
    }
    let agreement = agree as f64 / total as f64;
    assert!(
        agreement > 0.8,
        "co-membership agreement too low: {agreement}"
    );
    drop(exact);
}

#[test]
fn community_routing_cuts_filtering_cost_with_bounded_accuracy_loss() {
    let dataset = workload();
    let (engine, subscription_ids) = engine_over(&dataset, SynopsisConfig::hashes(512));

    let mut broker = Broker::new();
    for (i, p) in dataset.positive.iter().enumerate() {
        broker.subscribe(Consumer::new(format!("c{i}"), p.clone()));
    }
    let clustering = CommunityClustering::cluster(
        &engine,
        &subscription_ids,
        CommunityConfig {
            metric: ProximityMetric::M3,
            threshold: 0.5,
            max_community_size: 0,
        },
    );
    assert!(clustering.len() < dataset.positive.len());

    let stream = &dataset.documents[..100];
    let exact_stats = broker.route_stream(stream, &RoutingStrategy::PerSubscription);
    let community_stats = broker.route_stream(stream, &RoutingStrategy::Community(clustering));

    assert!(community_stats.match_operations < exact_stats.match_operations);
    assert!(
        community_stats.recall() >= 0.75,
        "recall {}",
        community_stats.recall()
    );
    assert!(
        community_stats.precision() >= 0.4,
        "precision {}",
        community_stats.precision()
    );

    // Flooding is the other extreme: perfect recall, no broker-side matches.
    let flooding = broker.route_stream(stream, &RoutingStrategy::Flooding);
    assert_eq!(flooding.match_operations, 0);
    assert_eq!(flooding.recall(), 1.0);
    assert!(flooding.precision() <= community_stats.precision() + 1e-9);
}

#[test]
fn similarity_relates_pairs_that_containment_cannot() {
    // The paper's motivating observation (patterns pa and pd of Figure 1):
    // containment is a boolean, asymmetric relation that leaves most related
    // subscription pairs incomparable, while the similarity metrics assign
    // them a graded, high score. Verify both halves on a generated workload:
    // containment relates only a minority of pairs, and there exists at
    // least one pair with no containment relationship in either direction
    // but a substantial estimated similarity.
    let dataset = workload();
    let (engine, ids) = engine_over(&dataset, SynopsisConfig::hashes(512));

    // One batched call evaluates the whole pairwise structure.
    let matrix = engine.similarity_matrix(&ids, ProximityMetric::M3);

    let patterns = &dataset.positive;
    let mut contained_pairs = 0usize;
    let mut total = 0usize;
    let mut best_incomparable_similarity: f64 = 0.0;
    for i in 0..patterns.len() {
        for j in (i + 1)..patterns.len() {
            total += 1;
            let p = &patterns[i];
            let q = &patterns[j];
            let related = tree_pattern_similarity::pattern::containment::contains(p, q)
                || tree_pattern_similarity::pattern::containment::contains(q, p);
            if related {
                contained_pairs += 1;
            } else {
                best_incomparable_similarity = best_incomparable_similarity.max(matrix.get(i, j));
            }
        }
    }
    assert!(total > 0);
    assert!(
        contained_pairs * 2 < total,
        "containment should leave most pairs incomparable ({contained_pairs}/{total})"
    );
    assert!(
        best_incomparable_similarity > 0.3,
        "some incomparable pair should still be similar (best = {best_incomparable_similarity})"
    );
}
