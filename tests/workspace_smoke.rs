//! Fast, deterministic end-to-end canary for the whole workspace.
//!
//! One fixed-seed run: generate a small media-DTD dataset, build a synopsis
//! under each of the three `MatchingSetKind` representations, and check the
//! `SEL` estimates against the `ExactEvaluator` ground truth. This is the
//! tier-1 smoke test — it exercises the workload, xml, synopsis, core and
//! pattern crates in a couple of seconds; the deeper suites live in the
//! other integration tests and the per-crate property tests.

use tree_pattern_similarity::prelude::*;

fn smoke_dataset() -> Dataset {
    let config = DatasetConfig {
        document_count: 120,
        positive_count: 15,
        negative_count: 15,
        docgen: DocGenConfig::default().with_seed(0xC0FFEE),
        xpathgen: XPathGenConfig::default().with_seed(0xBEEF),
        max_candidates: 50_000,
    };
    Dataset::generate(Dtd::media(), &config)
}

#[test]
fn sel_estimates_track_exact_selectivity_under_all_representations() {
    let dataset = smoke_dataset();
    assert_eq!(dataset.documents.len(), 120);
    assert_eq!(dataset.positive.len(), 15);
    assert_eq!(dataset.negative.len(), 15);

    let exact = ExactEvaluator::new(dataset.documents.clone());

    for (name, config) in [
        ("counters", SynopsisConfig::counters()),
        ("sets", SynopsisConfig::sets(1_000)),
        ("hashes", SynopsisConfig::hashes(1_000)),
    ] {
        let mut engine = SimilarityEngine::new(config);
        engine.ingest(ingest::trees(&dataset.documents)).unwrap();
        let ids = engine.register_all(dataset.positive.iter().chain(&dataset.negative));
        let estimates = engine.selectivities(&ids);

        let mut total_error = 0.0;
        for (pattern, &estimated) in dataset
            .positive
            .iter()
            .chain(&dataset.negative)
            .zip(&estimates)
        {
            let truth = exact.selectivity(pattern);
            assert!(
                (0.0..=1.0).contains(&estimated),
                "{name}: estimate {estimated} for {pattern} is not a probability"
            );
            total_error += (estimated - truth).abs();
        }
        let mean_error = total_error / (dataset.positive.len() + dataset.negative.len()) as f64;
        // Counters are the coarsest summary (independence assumptions);
        // sets/hashes at capacity 1000 cover the whole 120-document stream.
        let tolerance = if name == "counters" { 0.25 } else { 0.05 };
        assert!(
            mean_error <= tolerance,
            "{name}: mean |SEL - exact| = {mean_error} exceeds {tolerance}"
        );
    }
}

#[test]
fn exact_set_estimates_never_underestimate_and_hashes_stay_close() {
    let dataset = smoke_dataset();
    let exact = ExactEvaluator::new(dataset.documents.clone());

    let mut engine = SimilarityEngine::new(SynopsisConfig::sets(100_000));
    engine.ingest(ingest::trees(&dataset.documents)).unwrap();
    let ids = engine.register_all(&dataset.positive);
    let estimates = engine.selectivities(&ids);
    for (pattern, &estimated) in dataset.positive.iter().zip(&estimates) {
        let truth = exact.selectivity(pattern);
        assert!(
            estimated >= truth - 1e-9,
            "sets: estimate {estimated} under-estimates exact {truth} for {pattern}"
        );
    }

    // Negative patterns match nothing; exact sets must agree exactly.
    for pattern in &dataset.negative {
        assert_eq!(
            exact.selectivity(pattern),
            0.0,
            "negative pattern {pattern}"
        );
    }
}

#[test]
fn similarity_metrics_are_sane_on_the_smoke_dataset() {
    let dataset = smoke_dataset();
    let mut engine = SimilarityEngine::new(SynopsisConfig::hashes(256));
    engine.ingest(ingest::trees(&dataset.documents)).unwrap();

    let p = engine.register(&dataset.positive[0]);
    let q = engine.register(&dataset.positive[1]);
    for metric in ProximityMetric::all() {
        let s = engine.similarity(p, q, metric);
        assert!((0.0..=1.0).contains(&s), "{metric}: similarity {s}");
    }
    let self_sim = engine.similarity(p, p, ProximityMetric::M3);
    assert!(
        (self_sim - 1.0).abs() < 1e-9 || engine.selectivity(p) == 0.0,
        "self-similarity {self_sim}"
    );
}
