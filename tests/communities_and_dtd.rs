//! Cross-crate integration tests for the community-discovery and DTD
//! substrates: workload generation → similarity estimation → clustering →
//! routing, and DTD round trips against the same workload.

use tree_pattern_similarity::dtd::{samples, writer};
use tree_pattern_similarity::prelude::*;

fn dataset() -> Dataset {
    Dataset::generate(
        Dtd::media(),
        &DatasetConfig::small()
            .with_scale(200, 24, 0)
            .with_seed(2026),
    )
}

#[test]
fn estimated_communities_agree_with_exact_communities() {
    let dataset = dataset();
    let subscriptions = dataset.positive.clone();
    let exact = ExactEvaluator::new(dataset.documents.clone());
    let mut engine = SimilarityEngine::new(SynopsisConfig::hashes(512));
    engine.ingest(ingest::trees(&dataset.documents)).unwrap();
    let subscription_ids = engine.register_all(&subscriptions);

    let exact_matrix = SimilarityMatrix::from_exact(&exact, &subscriptions, ProximityMetric::M3);
    let estimated_matrix =
        SimilarityMatrix::from_engine(&engine, &subscription_ids, ProximityMetric::M3);

    let config = AgglomerativeConfig {
        similarity_threshold: 0.55,
        ..AgglomerativeConfig::default()
    };
    let exact_clusters = agglomerative(&exact_matrix, config).clustering;
    let estimated_clusters = agglomerative(&estimated_matrix, config).clustering;

    // The two clusterings should agree on most pairs (Rand-index style
    // agreement): the synopsis is accurate enough to recover communities.
    let n = subscriptions.len();
    let mut agreeing = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            total += 1;
            if exact_clusters.same_cluster(i, j) == estimated_clusters.same_cluster(i, j) {
                agreeing += 1;
            }
        }
    }
    let agreement = agreeing as f64 / total as f64;
    assert!(
        agreement > 0.8,
        "clusterings from estimated vs exact similarities agree on only {agreement:.2} of pairs"
    );
}

#[test]
fn clustering_quality_beats_random_assignment() {
    let dataset = dataset();
    let subscriptions = dataset.positive.clone();
    let exact = ExactEvaluator::new(dataset.documents.clone());
    let matrix = SimilarityMatrix::from_exact(&exact, &subscriptions, ProximityMetric::M3);
    let clustered = agglomerative(
        &matrix,
        AgglomerativeConfig {
            similarity_threshold: 0.5,
            ..AgglomerativeConfig::default()
        },
    )
    .clustering;
    // A deliberately shuffled clustering with the same sizes.
    let mut shuffled_assignment = clustered.assignment().to_vec();
    shuffled_assignment.rotate_left(subscriptions.len() / 3);
    let shuffled = Clustering::from_assignment(shuffled_assignment);

    let good = tree_pattern_similarity::cluster::quality::evaluate(&matrix, &clustered);
    let bad = tree_pattern_similarity::cluster::quality::evaluate(&matrix, &shuffled);
    assert!(
        good.intra_similarity >= bad.intra_similarity,
        "clustered intra-similarity {} should beat shuffled {}",
        good.intra_similarity,
        bad.intra_similarity
    );
    assert!(good.silhouette >= bad.silhouette);
}

#[test]
fn semantic_overlay_reduces_filtering_cost_on_a_generated_workload() {
    let dataset = dataset();
    let subscriptions = dataset.positive.clone();
    let exact = ExactEvaluator::new(dataset.documents.clone());
    let matrix = SimilarityMatrix::from_exact(&exact, &subscriptions, ProximityMetric::M3);
    let clustering = leader(
        &matrix,
        LeaderConfig {
            similarity_threshold: 0.5,
            ..LeaderConfig::default()
        },
    )
    .clustering;
    let overlay =
        SemanticOverlay::from_clustering(subscriptions.clone(), &clustering, Some(&matrix));
    let stats = overlay.route_stream(&dataset.documents);
    assert!(overlay.community_count() <= subscriptions.len());
    assert!(stats.matches_per_document() <= subscriptions.len() as f64);
    assert!(stats.recall() > 0.5, "recall {}", stats.recall());
    assert!(stats.precision() > 0.5, "precision {}", stats.precision());
}

#[test]
fn broker_network_routing_is_exact_for_every_table_mode() {
    let dataset = dataset();
    let subscriptions = &dataset.positive;
    let mut network = BrokerNetwork::new(BrokerTopology::balanced_tree(9, 2));
    for (index, subscription) in subscriptions.iter().enumerate() {
        network.attach(index % 9, format!("c{index}"), subscription.clone());
    }
    let exact = network.route_stream(
        0,
        &dataset.documents,
        ForwardingMode::Table(TableMode::Exact),
    );
    for mode in ForwardingMode::all() {
        let stats = network.route_stream(0, &dataset.documents, mode);
        assert_eq!(
            stats.missed_deliveries,
            0,
            "{} missed deliveries",
            mode.name()
        );
        assert_eq!(stats.deliveries, exact.deliveries, "{}", mode.name());
    }
    let flooding = network.route_stream(0, &dataset.documents, ForwardingMode::Flooding);
    assert!(exact.link_messages <= flooding.link_messages);
}

#[test]
fn workload_dtds_round_trip_and_validate_their_own_documents() {
    for dtd in [Dtd::media(), Dtd::nitf_like()] {
        let schema = writer::schema_from_workload(&dtd);
        let text = writer::write_dtd(&schema);
        let reparsed = tree_pattern_similarity::dtd::parser::parse_named(dtd.name(), &text)
            .expect("exported DTD parses");
        assert_eq!(reparsed.element_count(), dtd.element_count());

        let dataset = Dataset::generate(
            dtd,
            &DatasetConfig::small().with_scale(30, 5, 0).with_seed(11),
        );
        let validator = Validator::new(&schema, ValidationMode::Lenient);
        for document in &dataset.documents {
            assert!(
                validator.is_valid(document),
                "generated document failed lenient validation"
            );
        }
    }
}

#[test]
fn dtd_equivalent_patterns_have_high_estimated_similarity() {
    let schema = samples::media_schema();
    let analyzer = PatternAnalyzer::new(&schema);
    let pa = TreePattern::parse("/media/CD/*/last/Mozart").unwrap();
    let pd = TreePattern::parse("//composer/last/Mozart").unwrap();
    assert!(analyzer.dtd_equivalent(&pa, &pd));

    // Over documents generated from that DTD, the estimator agrees: the two
    // patterns match exactly the same documents, so M3 is high whenever
    // either matches anything at all.
    let dataset = Dataset::generate(
        Dtd::media(),
        &DatasetConfig::small().with_scale(500, 5, 0).with_seed(3),
    );
    let exact = ExactEvaluator::new(dataset.documents.clone());
    let exact_m3 = exact.similarity(&pa, &pd, ProximityMetric::M3);
    // pa/pd constrain a leaf text value ("Mozart") that the generator rarely
    // produces; equivalence shows up as identical match sets.
    let sel_pa = exact.selectivity(&pa);
    let sel_pd = exact.selectivity(&pd);
    assert!(
        (sel_pa - sel_pd).abs() < 1e-9,
        "DTD-equivalent patterns must have equal exact selectivity"
    );
    if sel_pa > 0.0 {
        assert!(exact_m3 > 0.99);
    }
}
